#include "cluster/placement.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace optshare::cluster {

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis.
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime.
  }
  return hash;
}

namespace {

/// 64-bit avalanche finalizer (MurmurHash3's fmix64). FNV-1a alone
/// diffuses trailing-byte changes weakly — sequential names such as
/// "tenancy-17"/"tenancy-18" differ by only ~delta*prime, a hair's width
/// against ring arcs of ~2^64/(nodes*vnodes) — so without this, runs of
/// similarly-named tenancies clump onto one node.
uint64_t MixBits(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// The position of `key` on the ring (vnode labels and tenancy names
/// alike). Deterministic across processes, like Fnv1a64 itself.
uint64_t RingPoint(std::string_view key) { return MixBits(Fnv1a64(key)); }

}  // namespace

Result<PlacementMap> PlacementMap::Create(std::vector<NodeInfo> nodes,
                                          int vnodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("placement needs at least one node");
  }
  if (vnodes < 1) {
    return Status::InvalidArgument("placement vnodes must be >= 1");
  }
  std::set<std::string> ids;
  for (const NodeInfo& node : nodes) {
    if (node.id.empty()) {
      return Status::InvalidArgument("placement node id must be non-empty");
    }
    if (!ids.insert(node.id).second) {
      return Status::InvalidArgument("duplicate placement node id \"" +
                                     node.id + "\"");
    }
  }
  PlacementMap map;
  map.nodes_ = std::move(nodes);
  map.vnodes_ = vnodes;
  map.RebuildRing();
  return map;
}

void PlacementMap::RebuildRing() {
  ring_.clear();
  ring_.reserve(nodes_.size() * static_cast<size_t>(vnodes_));
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int k = 0; k < vnodes_; ++k) {
      ring_.emplace_back(
          RingPoint(nodes_[i].id + "#" + std::to_string(k)), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::optional<NodeInfo> PlacementMap::OwnerOf(
    const std::string& tenancy) const {
  const auto it = overrides_.find(tenancy);
  if (it != overrides_.end()) {
    std::optional<NodeInfo> pinned = NodeById(it->second);
    // A dead override is ignored, not honored: failover falls back to the
    // ring, which lands on the node holding the warm replica.
    if (pinned.has_value() && !pinned->dead) return pinned;
  }
  return ReplicaFor(tenancy, std::string());
}

std::optional<NodeInfo> PlacementMap::ReplicaFor(
    const std::string& tenancy, const std::string& exclude_id) const {
  if (ring_.empty()) return std::nullopt;
  const uint64_t point = RingPoint(tenancy);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, size_t{0}));
  for (size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const NodeInfo& node = nodes_[it->second];
    if (node.dead || node.id == exclude_id) continue;
    return node;
  }
  return std::nullopt;
}

bool PlacementMap::MarkDead(const std::string& id) {
  for (NodeInfo& node : nodes_) {
    if (node.id == id) {
      if (!node.dead) {
        node.dead = true;
        ++version_;
      }
      return true;
    }
  }
  return false;
}

bool PlacementMap::SetOverride(const std::string& tenancy,
                               const std::string& id) {
  if (!NodeById(id).has_value()) return false;
  overrides_[tenancy] = id;
  ++version_;
  return true;
}

std::optional<NodeInfo> PlacementMap::NodeById(const std::string& id) const {
  for (const NodeInfo& node : nodes_) {
    if (node.id == id) return node;
  }
  return std::nullopt;
}

std::vector<NodeInfo> PlacementMap::LiveNodes() const {
  std::vector<NodeInfo> live;
  for (const NodeInfo& node : nodes_) {
    if (!node.dead) live.push_back(node);
  }
  return live;
}

JsonValue PlacementMap::ToJson() const {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("v", JsonValue::Number(static_cast<double>(version_)));
  obj.Set("vnodes", JsonValue::Number(vnodes_));
  JsonValue nodes = JsonValue::MakeArray();
  nodes.Reserve(nodes_.size());
  for (const NodeInfo& node : nodes_) {
    JsonValue n = JsonValue::MakeObject();
    n.Set("id", JsonValue::Str(node.id));
    n.Set("host", JsonValue::Str(node.host));
    n.Set("port", JsonValue::Number(node.port));
    n.Set("dead", JsonValue::Bool(node.dead));
    nodes.Append(std::move(n));
  }
  obj.Set("nodes", std::move(nodes));
  JsonValue overrides = JsonValue::MakeObject();
  for (const auto& [tenancy, id] : overrides_) {
    overrides.Set(tenancy, JsonValue::Str(id));
  }
  obj.Set("overrides", std::move(overrides));
  return obj;
}

Result<PlacementMap> PlacementMap::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("placement must be an object");
  }
  for (const auto& [key, value] : v.AsObject()) {
    (void)value;
    if (key != "v" && key != "vnodes" && key != "nodes" &&
        key != "overrides") {
      return Status::InvalidArgument("placement: unknown field \"" + key +
                                     "\"");
    }
  }
  Result<int64_t> version = JsonIntField(v, "v", "placement");
  if (!version.ok()) return version.status();
  Result<int64_t> vnodes = JsonIntField(v, "vnodes", "placement");
  if (!vnodes.ok()) return vnodes.status();
  if (*vnodes < 1 || *vnodes > 4096) {
    return Status::InvalidArgument("placement: \"vnodes\" out of range");
  }
  const JsonValue* nodes = v.Find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return Status::InvalidArgument(
        "placement: field \"nodes\" must be an array");
  }
  std::vector<NodeInfo> parsed_nodes;
  for (const JsonValue& node_v : nodes->AsArray()) {
    if (!node_v.is_object()) {
      return Status::InvalidArgument("placement node must be an object");
    }
    for (const auto& [key, value] : node_v.AsObject()) {
      (void)value;
      if (key != "id" && key != "host" && key != "port" && key != "dead") {
        return Status::InvalidArgument(
            "placement node: unknown field \"" + key + "\"");
      }
    }
    NodeInfo node;
    Result<std::string> id = JsonStringField(node_v, "id", "placement node");
    if (!id.ok()) return id.status();
    node.id = std::move(*id);
    Result<std::string> host =
        JsonStringField(node_v, "host", "placement node");
    if (!host.ok()) return host.status();
    node.host = std::move(*host);
    Result<int64_t> port = JsonIntField(node_v, "port", "placement node");
    if (!port.ok()) return port.status();
    if (*port < 0 || *port > 65535) {
      return Status::InvalidArgument("placement node: \"port\" out of range");
    }
    node.port = static_cast<uint16_t>(*port);
    Result<bool> dead = JsonBoolField(node_v, "dead", "placement node");
    if (!dead.ok()) return dead.status();
    node.dead = *dead;
    parsed_nodes.push_back(std::move(node));
  }
  Result<PlacementMap> map =
      Create(std::move(parsed_nodes), static_cast<int>(*vnodes));
  if (!map.ok()) return map.status();
  map->version_ = *version;
  const JsonValue* overrides = v.Find("overrides");
  if (overrides != nullptr) {
    if (!overrides->is_object()) {
      return Status::InvalidArgument(
          "placement: field \"overrides\" must be an object");
    }
    for (const auto& [tenancy, id] : overrides->AsObject()) {
      if (!id.is_string()) {
        return Status::InvalidArgument(
            "placement override values must be node ids");
      }
      if (!map->NodeById(id.AsString()).has_value()) {
        return Status::InvalidArgument("placement override targets unknown "
                                       "node \"" + id.AsString() + "\"");
      }
      map->overrides_.emplace(tenancy, id.AsString());
    }
  }
  return map;
}

}  // namespace optshare::cluster
