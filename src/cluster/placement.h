// PlacementMap: the cluster's tenancy→node assignment, shared by the
// router front end and every node so both sides agree on who owns what.
//
// Assignment is a consistent-hash ring: each node contributes `vnodes`
// virtual points hashed from "<id>#<k>", and a tenancy belongs to the
// first *live* node clockwise from hash(tenancy). Hashing is an explicit
// FNV-1a 64 run through a 64-bit avalanche finalizer — std::hash is not
// guaranteed stable across processes (and the router and nodes are
// different processes that must compute identical owners from identical
// serialized maps), and bare FNV-1a clumps sequentially-named tenancies
// onto one arc.
//
// Two deliberate properties fall out of the ring walk:
//  - Killing a node re-homes only its tenancies (classic consistent
//    hashing), each to the next live node clockwise.
//  - ReplicaFor(t, owner) — the node a tenancy's journal streams to — is
//    that same next-live-node-clockwise. So when the owner dies, the new
//    owner IS the node already holding the warm replica, and failover is
//    a local `restore`.
//
// Per-tenancy overrides layer elasticity on top: a rebalance pins a
// tenancy to an explicit node (ignored while that node is dead, so
// failover still falls back to the ring). Every mutation bumps `version`;
// nodes install a pushed map only when its version is newer, which makes
// cluster_update propagation idempotent and unordered-delivery safe.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace optshare::cluster {

/// One node endpoint in the cluster.
struct NodeInfo {
  std::string id;    ///< Unique, stable name ("node-0").
  std::string host;  ///< Connect address for router + peer replication.
  uint16_t port = 0;
  bool dead = false;  ///< Marked by the router on transport failure.
};

/// Deterministic 64-bit FNV-1a (the ring's hash; exposed for tests).
uint64_t Fnv1a64(std::string_view bytes);

class PlacementMap {
 public:
  PlacementMap() = default;
  /// Builds the ring over `nodes` (ids must be unique and non-empty).
  static Result<PlacementMap> Create(std::vector<NodeInfo> nodes,
                                     int vnodes = 64);

  /// The node owning `tenancy`: its live override if pinned, else the
  /// first live node clockwise from hash(tenancy). nullopt when no node
  /// is live.
  std::optional<NodeInfo> OwnerOf(const std::string& tenancy) const;

  /// The replication target for `tenancy` relative to `exclude_id`
  /// (normally the owner): the first live node clockwise from
  /// hash(tenancy) whose id differs. nullopt when no such node exists
  /// (single-node cluster, or everything else is dead).
  std::optional<NodeInfo> ReplicaFor(const std::string& tenancy,
                                     const std::string& exclude_id) const;

  /// Marks a node dead and bumps the version. false if unknown id.
  bool MarkDead(const std::string& id);
  /// Pins `tenancy` to node `id` (the rebalance re-route) and bumps the
  /// version. false if unknown id.
  bool SetOverride(const std::string& tenancy, const std::string& id);

  std::optional<NodeInfo> NodeById(const std::string& id) const;
  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  std::vector<NodeInfo> LiveNodes() const;
  const std::map<std::string, std::string>& overrides() const {
    return overrides_;
  }
  int64_t version() const { return version_; }
  /// Stamps an explicit version. Cluster bootstrap uses it to publish the
  /// post-bind map (real ports filled in) as newer than the provisional
  /// one the nodes started with.
  void SetVersion(int64_t version) { version_ = version; }
  int vnodes() const { return vnodes_; }

  /// Wire form: {"v": version, "vnodes": N,
  ///             "nodes": [{"id","host","port","dead"}...],
  ///             "overrides": {tenancy: id}}. Round-trips exactly.
  JsonValue ToJson() const;
  static Result<PlacementMap> FromJson(const JsonValue& v);

 private:
  void RebuildRing();

  std::vector<NodeInfo> nodes_;
  std::map<std::string, std::string> overrides_;  ///< tenancy -> node id.
  int vnodes_ = 64;
  int64_t version_ = 1;
  /// (point, index into nodes_), sorted by point.
  std::vector<std::pair<uint64_t, size_t>> ring_;
};

}  // namespace optshare::cluster
