#include "cluster/node.h"

#include <utility>

namespace optshare::cluster {

ClusterNode::ClusterNode(ClusterNodeOptions options)
    : options_(std::move(options)) {}

ClusterNode::~ClusterNode() { Stop(); }

Status ClusterNode::Start() {
  if (started_) return Status::FailedPrecondition("node already started");
  if (!options_.placement.NodeById(options_.node_id).has_value()) {
    return Status::InvalidArgument("node id \"" + options_.node_id +
                                   "\" is not in the placement map");
  }
  std::shared_ptr<service::StateStore> base;
  if (options_.data_dir.empty()) {
    base = std::make_shared<service::MemoryStateStore>();
  } else {
    Result<std::unique_ptr<service::FileStateStore>> file =
        service::FileStateStore::Open(options_.data_dir);
    if (!file.ok()) return file.status();
    base = std::move(*file);
  }
  replication_ = std::make_shared<ReplicationManager>(
      options_.placement, options_.node_id, options_.connect,
      options_.strict_replication);

  service::ServerOptions server_options;
  server_options.num_workers = options_.num_workers;
  server_options.store =
      std::make_shared<ReplicatedStateStore>(std::move(base), replication_);
  server_ = std::make_unique<service::MarketplaceServer>(
      std::move(server_options));

  // cluster_update: install the pushed map if newer; answer the version the
  // node now runs (so pushes are idempotent and unordered-delivery safe).
  std::shared_ptr<ReplicationManager> replication = replication_;
  server_->SetClusterUpdateHandler(
      [replication](const JsonValue& doc) -> Result<JsonValue> {
        Result<PlacementMap> map = PlacementMap::FromJson(doc);
        if (!map.ok()) return map.status();
        const bool installed = replication->UpdatePlacement(*map);
        JsonValue payload = JsonValue::MakeObject();
        payload.Set("installed", JsonValue::Bool(installed));
        payload.Set("version",
                    JsonValue::Number(static_cast<double>(
                        replication->CurrentPlacement().version())));
        return payload;
      });

  // Boot recovery, owner-filtered: resurrect only the tenancies this node
  // owns. Replica state for peers stays warm in the store — a failover
  // restore{tenancy} activates it later.
  const PlacementMap& placement = options_.placement;
  const std::string self = options_.node_id;
  Result<service::RecoveryStats> recovered = server_->RecoverMatching(
      [&placement, &self](const std::string& tenancy) {
        std::optional<NodeInfo> owner = placement.OwnerOf(tenancy);
        return owner.has_value() && owner->id == self;
      });
  if (!recovered.ok()) return recovered.status();

  service::NetServerOptions net_options;
  net_options.host = options_.host;
  net_options.port = options_.port;
  net_ = std::make_unique<service::NetServer>(server_.get(), net_options);
  OPTSHARE_RETURN_NOT_OK(net_->Start());
  started_ = true;
  return Status::OK();
}

void ClusterNode::Wait() {
  if (net_ != nullptr) net_->Wait();
}

void ClusterNode::Stop() {
  if (net_ != nullptr) net_->Stop();
  started_ = false;
}

Status ClusterNode::Shutdown() {
  if (net_ != nullptr) net_->Stop();
  started_ = false;
  if (server_ != nullptr) return server_->Shutdown();
  return Status::OK();
}

uint16_t ClusterNode::port() const {
  return net_ != nullptr ? net_->port() : 0;
}

}  // namespace optshare::cluster
