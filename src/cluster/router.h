// ClusterRouter: the cluster's front door. Speaks the ordinary wire
// protocol (v3 included) to clients — a client cannot tell a router from a
// single node — and forwards each request to the node that owns its
// tenancy under the shared PlacementMap:
//
//   tenancy ops      → OwnerOf(tenancy), with failover (below)
//   report-style     → retried transparently on a dead node
//   batch            → split into one sub-batch per owning node, forwarded,
//                      reassembled into one ordered response batch
//   list_mechanisms  → any live node
//   restore          → broadcast (summed) or owner-targeted when it names
//                      a tenancy
//   server_info      → answered by the router itself (role, placement,
//                      routing counters)
//   cluster_update   → installed if newer, then pushed to every live node
//   shutdown         → broadcast to the nodes, then the router drains
//
// Failover: when a forward fails at the transport level, the router marks
// the node dead (version bump), pushes the new placement to the surviving
// nodes, and re-resolves the owner — which, by the PlacementMap invariant,
// is the node already holding the tenancy's warm replica. The router
// issues a targeted `restore` there (single-node recovery from the
// replica's snapshot + journal) and then transparently retries reads.
// Mutations are NOT silently retried — the dead node may or may not have
// executed the request — so the client gets a typed Unavailable error
// carrying the post-failover placement version, and resends only requests
// that are safe to re-apply (idempotent at request boundaries); the resend
// routes to the recovered owner. Unavailable is the retryable signal:
// every other error code means "resending won't help".
//
// When even that live retry is impossible for a `report` — no live node
// owns the tenancy, or the restore/retry itself fails — the router
// degrades instead of failing: it sweeps the nodes (marked-dead ones too;
// "dead" is one connection's suspicion, and a cheap read is the right
// probe for a suspect) for persisted tenancy state, and serves the last
// replicated period boundary as a report marked `"stale": true`. Only
// when a reachable node positively answers "no persisted state" does the
// client get NotFound — a dead node with a replicated snapshot and a
// genuinely unknown tenancy are different failures and answer differently.
//
// The router also re-homes lazily: it remembers which node last served
// each tenancy, and when the placement's answer changes (failover seen by
// another connection, rebalance), it issues the targeted restore before
// forwarding.
//
// Rebalance(tenancy, target) is the elasticity primitive: evict the
// tenancy from its owner (period boundaries only), export its snapshot +
// journal tail, replay them into the target's store over the repl_* ops,
// restore it there, then pin it with a placement override and push the new
// map — the hand-off IS the replication path, exercised on demand.
//
// Concurrency: each transport connection gets its own Channel (private
// NetClient per node), so connections forward in parallel with no shared
// connection locks; the placement map and owner cache sit under one brief
// mutex that is never held across a network call.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/placement.h"
#include "common/net.h"
#include "service/net_client.h"
#include "service/protocol.h"

namespace optshare::cluster {

struct RouterOptions {
  PlacementMap placement;
  /// Node-connect policy. The default fails a dead-but-routable node in
  /// 500ms instead of the OS connect timeout.
  service::NetClient::ConnectOptions connect{/*timeout_ms=*/500,
                                            /*retries=*/0,
                                            /*backoff_ms=*/50};
  /// Request-line cap, mirroring MarketplaceServer's.
  size_t max_request_bytes = service::protocol::kDefaultMaxRequestBytes;
  /// Line cap for v3 batch frames, mirroring MarketplaceServer's: batch
  /// lines frame under max(max_request_bytes, max_batch_request_bytes);
  /// everything else still answers the plain-cap rejection.
  size_t max_batch_request_bytes =
      service::protocol::kDefaultMaxBatchRequestBytes;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(RouterOptions options);

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// One transport connection's private state: its own connections to the
  /// nodes, so concurrent client connections never share a socket.
  struct Channel {
    std::map<std::string, service::NetClient> clients;  ///< node id → conn.
  };

  /// The router's HandleLine: parse one request line, route it, return the
  /// serialized response line. Parse errors answer locally, like a node.
  std::string RouteLine(const std::string& line, Channel* channel);

  /// Typed form of RouteLine (the in-process test surface).
  service::protocol::Response Route(
      const service::protocol::Request& request, Channel* channel);

  /// Moves `tenancy` to node `target_id`: evict from the current owner
  /// (FailedPrecondition while its period is open), hand off snapshot +
  /// journal tail over the repl_* ops, restore on the target, pin with a
  /// placement override and push the new map. Serialized internally.
  Status Rebalance(const std::string& tenancy, const std::string& target_id,
                   Channel* channel);

  PlacementMap CurrentPlacement() const;
  /// The router's own server_info payload.
  JsonValue InfoJson() const;
  bool shutdown_requested() const { return shutdown_requested_.load(); }
  size_t max_request_bytes() const { return options_.max_request_bytes; }
  /// Effective framing cap for one line: 0 (uncapped) when the plain cap
  /// is 0, else at least the plain cap — same rule as MarketplaceServer.
  size_t max_batch_request_bytes() const {
    if (options_.max_request_bytes == 0) return 0;
    return options_.max_batch_request_bytes > options_.max_request_bytes
               ? options_.max_batch_request_bytes
               : options_.max_request_bytes;
  }

 private:
  using Request = service::protocol::Request;
  using Response = service::protocol::Response;

  /// One typed round trip to `node` over the channel's cached connection,
  /// reconnecting once on a stale socket. A failed Result is a transport
  /// failure (protocol errors ride inside the Response).
  Result<Response> ChannelCall(Channel* channel, const NodeInfo& node,
                               const Request& request);

  Response RouteTenancyOp(const Request& request, Channel* channel);
  /// v3 batch frame: split members by owning node (preserving order),
  /// forward one sub-batch per node, reassemble the ordered response
  /// array. A sub-batch transport failure marks its node dead and answers
  /// those members Unavailable — batches may carry mutations, so the
  /// router never silently re-forwards one.
  Response RouteBatch(const Request& request, Channel* channel);
  Response RouteRestore(const Request& request, Channel* channel);
  Response RouteAnyNode(const Request& request, Channel* channel);
  Response RouteShutdown(const Request& request, Channel* channel);
  Response RouteClusterUpdate(const Request& request, Channel* channel);

  /// Marks `node_id` dead (if not already), pushes the bumped placement to
  /// the surviving nodes. Returns true if this call did the marking.
  bool HandleNodeFailure(const std::string& node_id, Channel* channel);
  /// Best-effort cluster_update of `placement` to every live node.
  void PushPlacement(const PlacementMap& placement, Channel* channel);
  /// Targeted restore of `tenancy` on `node` (the failover/re-home step).
  Status RestoreOn(const NodeInfo& node, const std::string& tenancy,
                   Channel* channel);
  /// The degraded tail of a failed report retry: sweep every node (live
  /// first, then marked-dead) for persisted tenancy state and serve the
  /// replicated period boundary with `"stale": true`; NotFound when a
  /// reachable node confirms the tenancy has no state; `live_failure`
  /// verbatim when nothing answered at all.
  Response StaleReportFallback(const Request& request, Channel* channel,
                               const Status& live_failure);

  RouterOptions options_;

  mutable std::mutex mu_;  ///< Guards placement_ + tenancy_owner_. Never
                           ///< held across a network call.
  PlacementMap placement_;
  std::map<std::string, std::string> tenancy_owner_;  ///< Last-served node.

  std::mutex rebalance_mu_;  ///< One rebalance at a time.
  std::atomic<bool> shutdown_requested_{false};

  std::atomic<uint64_t> requests_routed_{0};
  std::atomic<uint64_t> forward_failures_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> restores_issued_{0};
  std::atomic<uint64_t> placement_pushes_{0};
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> stale_reads_{0};  ///< Reports served degraded.
};

/// RouterServer: the TCP front end of a ClusterRouter. Thread-per-
/// connection with blocking I/O — the router's work is forwarding round
/// trips, so a poll loop would serialize them; threads keep each client's
/// pipeline independent, and each thread owns its Channel.
class RouterServer {
 public:
  /// `router` must outlive the RouterServer.
  RouterServer(ClusterRouter* router, std::string host = "127.0.0.1",
               uint16_t port = 0);
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  /// Binds + listens + starts the accept loop. port() is bound after.
  Status Start();
  /// Blocks until a wire shutdown drains the router (or Stop).
  void Wait();
  /// Abrupt stop: closes the listener and joins connection threads.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void Serve(net::Socket socket);

  ClusterRouter* router_;
  std::string host_;
  uint16_t requested_port_ = 0;
  uint16_t port_ = 0;
  net::Socket listener_;
  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::vector<std::thread> connection_threads_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
};

}  // namespace optshare::cluster
