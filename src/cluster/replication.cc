#include "cluster/replication.h"

#include <utility>

namespace optshare::cluster {

using service::NetClient;
using service::protocol::Request;
using service::protocol::RequestOp;
using service::protocol::Response;

ReplicationManager::ReplicationManager(
    PlacementMap placement, std::string self_id,
    service::NetClient::ConnectOptions connect_options, bool strict)
    : self_id_(std::move(self_id)),
      connect_options_(connect_options),
      strict_(strict),
      placement_(std::move(placement)) {}

bool ReplicationManager::UpdatePlacement(const PlacementMap& placement) {
  std::lock_guard<std::mutex> lock(placement_mu_);
  if (placement.version() <= placement_.version()) return false;
  placement_ = placement;
  return true;
}

PlacementMap ReplicationManager::CurrentPlacement() const {
  std::lock_guard<std::mutex> lock(placement_mu_);
  return placement_;
}

Status ReplicationManager::CallPeer(const NodeInfo& node, const Request& r) {
  Peer* peer = nullptr;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    std::unique_ptr<Peer>& slot = peers_[node.id];
    if (slot == nullptr) slot = std::make_unique<Peer>();
    peer = slot.get();
  }
  std::lock_guard<std::mutex> lock(peer->mu);
  // Two tries: the cached connection may be stale (peer restarted), so one
  // transport failure tears it down and reconnects before giving up.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!peer->client.has_value()) {
      if (attempt > 0) reconnects_.fetch_add(1, std::memory_order_relaxed);
      Result<NetClient> client =
          NetClient::Connect(node.host, node.port, connect_options_);
      if (!client.ok()) {
        if (attempt == 0) continue;  // Retry the connect once too.
        return client.status();
      }
      peer->client.emplace(std::move(*client));
    }
    Result<Response> response = peer->client->Call(r);
    if (response.ok()) {
      // Protocol-level errors are final: the bytes arrived, the replica
      // refused them; reconnecting would not change the answer.
      return response->status;
    }
    peer->client.reset();
    if (attempt > 0) return response.status();
  }
  return Status::Internal("replication: unreachable");
}

Status ReplicationManager::Forward(const Request& request) {
  std::optional<NodeInfo> replica;
  {
    std::lock_guard<std::mutex> lock(placement_mu_);
    replica = placement_.ReplicaFor(request.tenancy, self_id_);
  }
  if (!replica.has_value()) return Status::OK();  // Single live node.
  switch (request.op) {
    case RequestOp::kReplAppend:
      records_sent_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestOp::kReplCheckpoint:
      checkpoints_sent_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestOp::kReplSync:
      syncs_sent_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  Status status = CallPeer(*replica, request);
  if (status.ok()) {
    if (request.op == RequestOp::kReplAppend) {
      records_acked_.fetch_add(1, std::memory_order_relaxed);
    }
    return status;
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    last_error_ = "replica " + replica->id + ": " + status.message();
  }
  // Degrade, don't fail: the tenancy's next checkpoint ships the full
  // snapshot and heals the replica's gap. Strict deployments opt into
  // surfacing the failure instead.
  if (strict_) return status;
  return Status::OK();
}

ReplicationManager::Stats ReplicationManager::stats() const {
  Stats stats;
  stats.records_sent = records_sent_.load(std::memory_order_relaxed);
  stats.records_acked = records_acked_.load(std::memory_order_relaxed);
  stats.checkpoints_sent = checkpoints_sent_.load(std::memory_order_relaxed);
  stats.syncs_sent = syncs_sent_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  return stats;
}

JsonValue ReplicationManager::InfoJson() const {
  const Stats s = stats();
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("self", JsonValue::Str(self_id_));
  obj.Set("strict", JsonValue::Bool(strict_));
  obj.Set("records_sent", JsonValue::Number(static_cast<double>(s.records_sent)));
  obj.Set("records_acked",
          JsonValue::Number(static_cast<double>(s.records_acked)));
  obj.Set("lag", JsonValue::Number(
                     static_cast<double>(s.records_sent - s.records_acked)));
  obj.Set("checkpoints_sent",
          JsonValue::Number(static_cast<double>(s.checkpoints_sent)));
  obj.Set("syncs_sent", JsonValue::Number(static_cast<double>(s.syncs_sent)));
  obj.Set("failures", JsonValue::Number(static_cast<double>(s.failures)));
  obj.Set("reconnects",
          JsonValue::Number(static_cast<double>(s.reconnects)));
  {
    std::lock_guard<std::mutex> lock(placement_mu_);
    obj.Set("placement_version",
            JsonValue::Number(static_cast<double>(placement_.version())));
  }
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!last_error_.empty()) {
      obj.Set("last_error", JsonValue::Str(last_error_));
    }
  }
  return obj;
}

// -- ReplicatedStateStore ----------------------------------------------------

ReplicatedStateStore::ReplicatedStateStore(
    std::shared_ptr<service::StateStore> base,
    std::shared_ptr<ReplicationManager> replication)
    : base_(std::move(base)), replication_(std::move(replication)) {}

Status ReplicatedStateStore::Append(const std::string& tenancy,
                                    const std::string& record) {
  OPTSHARE_RETURN_NOT_OK(base_->Append(tenancy, record));
  Request repl;
  repl.op = RequestOp::kReplAppend;
  repl.version = 2;
  repl.tenancy = tenancy;
  repl.record = record;
  return replication_->Forward(repl);
}

Status ReplicatedStateStore::Checkpoint(const std::string& tenancy,
                                        const JsonValue& snapshot) {
  OPTSHARE_RETURN_NOT_OK(base_->Checkpoint(tenancy, snapshot));
  Request repl;
  repl.op = RequestOp::kReplCheckpoint;
  repl.version = 2;
  repl.tenancy = tenancy;
  repl.snapshot = snapshot;
  return replication_->Forward(repl);
}

Status ReplicatedStateStore::Sync(const std::string& tenancy) {
  OPTSHARE_RETURN_NOT_OK(base_->Sync(tenancy));
  Request repl;
  repl.op = RequestOp::kReplSync;
  repl.version = 2;
  repl.tenancy = tenancy;
  return replication_->Forward(repl);
}

Status ReplicatedStateStore::Remove(const std::string& tenancy) {
  // Deliberately not replicated: Remove is the operator-facing destructive
  // primitive, and a replica holding history is the safer failure mode.
  return base_->Remove(tenancy);
}

Result<std::vector<service::PersistedTenancy>> ReplicatedStateStore::Load() {
  return base_->Load();
}

Result<std::optional<service::PersistedTenancy>>
ReplicatedStateStore::LoadTenancy(const std::string& tenancy) {
  return base_->LoadTenancy(tenancy);
}

service::StateStoreStats ReplicatedStateStore::stats() const {
  return base_->stats();
}

}  // namespace optshare::cluster
