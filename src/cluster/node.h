// ClusterNode: one pricing node of the multi-node marketplace. Wires the
// whole stack for a node id in a PlacementMap:
//
//   base StateStore (memory or file)
//     └─ ReplicatedStateStore      — streams journal writes to the replica
//          └─ MarketplaceServer    — the tenancy engine, unchanged
//               └─ NetServer       — the TCP wire front end
//
// plus the cluster_update handler (install-if-newer placement maps) and an
// owner-filtered boot recovery: a node recovers only the tenancies the
// placement map assigns to it, so replica state held for a peer is NOT
// resurrected as live — it stays warm in the store until a failover
// `restore` names it.
//
//   ClusterNode node({.node_id = "node-0", .placement = map});
//   ASSERT_TRUE(node.Start().ok());      // node.port() is now bound
//   ...
//   node.Stop();       // crash model: abrupt close, no checkpoint
//   node.Shutdown();   // graceful: drain + checkpoint + close
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/placement.h"
#include "cluster/replication.h"
#include "service/marketplace_server.h"
#include "service/net_server.h"

namespace optshare::cluster {

struct ClusterNodeOptions {
  /// This node's id in `placement.nodes()` (must be present).
  std::string node_id;
  /// The cluster's shared placement map (the node streams replication to
  /// ReplicaFor(tenancy, node_id) and recovers OwnerOf(tenancy)==node_id).
  PlacementMap placement;
  /// Bind address. Port 0 = ephemeral; read it back with port().
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Durability directory; "" = in-memory store (tests, benches).
  std::string data_dir;
  /// MarketplaceServer worker threads.
  int num_workers = 4;
  /// Peer-connect policy for the replication stream.
  service::NetClient::ConnectOptions connect;
  /// Fail writes when the replica stream fails (default: degrade).
  bool strict_replication = false;
};

class ClusterNode {
 public:
  explicit ClusterNode(ClusterNodeOptions options);
  /// Stops abruptly (crash model) if still running.
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Opens the store, runs owner-filtered recovery, starts the TCP front
  /// end. After an OK return, port() is bound and peers may connect.
  Status Start();

  /// Blocks until the TCP front end exits — i.e. until a wire `shutdown`
  /// request drains it (the CLI node loop), or Stop() is called.
  void Wait();

  /// Crash model: kills the TCP front end mid-stream, no checkpoint. The
  /// failover suite uses this as its node-kill switch. Idempotent.
  void Stop();

  /// Graceful exit: stop accepting, drain, checkpoint every tenancy.
  Status Shutdown();

  uint16_t port() const;
  const std::string& id() const { return options_.node_id; }
  service::MarketplaceServer* server() { return server_.get(); }
  ReplicationManager* replication() { return replication_.get(); }

 private:
  ClusterNodeOptions options_;
  std::shared_ptr<ReplicationManager> replication_;
  std::unique_ptr<service::MarketplaceServer> server_;
  std::unique_ptr<service::NetServer> net_;
  bool started_ = false;
};

}  // namespace optshare::cluster
