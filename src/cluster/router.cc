#include "cluster/router.h"

#include <fcntl.h>
#include <poll.h>

#include <utility>

#include "service/state_store.h"

namespace optshare::cluster {

using service::NetClient;
using service::protocol::ErrorResponse;
using service::protocol::FormatResponseLine;
using service::protocol::OkResponse;
using service::protocol::ParseRequestLine;
using service::protocol::Request;
using service::protocol::RequestOp;
using service::protocol::Response;

ClusterRouter::ClusterRouter(RouterOptions options)
    : options_(std::move(options)), placement_(options_.placement) {}

PlacementMap ClusterRouter::CurrentPlacement() const {
  std::lock_guard<std::mutex> lock(mu_);
  return placement_;
}

Result<Response> ClusterRouter::ChannelCall(Channel* channel,
                                            const NodeInfo& node,
                                            const Request& request) {
  // Two tries: a cached connection may be stale (node restarted between
  // requests), so one transport failure reconnects before giving up.
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto it = channel->clients.find(node.id);
    if (it == channel->clients.end()) {
      Result<NetClient> client =
          NetClient::Connect(node.host, node.port, options_.connect);
      if (!client.ok()) {
        if (attempt == 0) continue;
        return client.status();
      }
      it = channel->clients.emplace(node.id, std::move(*client)).first;
    }
    Result<Response> response = it->second.Call(request);
    if (response.ok()) return response;
    channel->clients.erase(it);
    if (attempt > 0) return response.status();
  }
  return Status::Internal("router: unreachable");
}

std::string ClusterRouter::RouteLine(const std::string& line,
                                     Channel* channel) {
  // Parse under the batch cap so a legal v3 batch frame survives; a line
  // over the plain cap that is NOT a batch still answers the plain-cap
  // rejection (re-parsing under the plain cap reproduces those bytes).
  Result<Request> parsed =
      ParseRequestLine(line, max_batch_request_bytes());
  if (options_.max_request_bytes > 0 &&
      line.size() > options_.max_request_bytes &&
      !(parsed.ok() && parsed->op == RequestOp::kBatch)) {
    parsed = ParseRequestLine(line, options_.max_request_bytes);
  }
  if (!parsed.ok()) {
    return FormatResponseLine(ErrorResponse("", parsed.status()));
  }
  return FormatResponseLine(Route(*parsed, channel));
}

Response ClusterRouter::Route(const Request& request, Channel* channel) {
  requests_routed_.fetch_add(1, std::memory_order_relaxed);
  Response response;
  switch (request.op) {
    case RequestOp::kServerInfo:
      response = OkResponse(request.id, InfoJson());
      break;
    case RequestOp::kListMechanisms:
      response = RouteAnyNode(request, channel);
      break;
    case RequestOp::kShutdown:
      response = RouteShutdown(request, channel);
      break;
    case RequestOp::kClusterUpdate:
      response = RouteClusterUpdate(request, channel);
      break;
    case RequestOp::kRestore:
      response = RouteRestore(request, channel);
      break;
    case RequestOp::kBatch:
      response = RouteBatch(request, channel);
      break;
    default:
      response = RouteTenancyOp(request, channel);
      break;
  }
  response.version = request.version;
  return response;
}

Status ClusterRouter::RestoreOn(const NodeInfo& node,
                                const std::string& tenancy,
                                Channel* channel) {
  restores_issued_.fetch_add(1, std::memory_order_relaxed);
  Request restore;
  restore.op = RequestOp::kRestore;
  restore.version = 2;
  restore.tenancy = tenancy;
  Result<Response> response = ChannelCall(channel, node, restore);
  if (!response.ok()) return response.status();
  return response->status;
}

Response ClusterRouter::RouteTenancyOp(const Request& request,
                                       Channel* channel) {
  // The report op is the only one retried transparently after a failover:
  // it is a pure read, so re-executing it on the recovered owner cannot
  // double-apply anything. Mutations surface the failure — the dead node
  // may or may not have executed them — and the client resends.
  const bool idempotent_read = request.op == RequestOp::kReport;
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::optional<NodeInfo> owner;
    std::string recorded;
    {
      std::lock_guard<std::mutex> lock(mu_);
      owner = placement_.OwnerOf(request.tenancy);
      auto it = tenancy_owner_.find(request.tenancy);
      if (it != tenancy_owner_.end()) recorded = it->second;
    }
    if (!owner.has_value()) {
      const Status no_owner = Status::Internal(
          "no live node owns tenancy \"" + request.tenancy + "\"");
      if (idempotent_read) {
        return StaleReportFallback(request, channel, no_owner);
      }
      return ErrorResponse(request.id, no_owner);
    }
    // Re-home before forwarding when the owner changed under us (a failover
    // seen by another connection, a rebalance) or when we are retrying past
    // a node we just marked dead: the new owner holds the tenancy's warm
    // replica, and a targeted restore activates it. Restoring a tenancy the
    // node already serves is a no-op (restore skips live tenancies).
    if ((!recorded.empty() && recorded != owner->id) || attempt > 0) {
      Status restored = RestoreOn(*owner, request.tenancy, channel);
      if (!restored.ok()) {
        if (idempotent_read) {
          // The restore target is in trouble too: take it out of the
          // placement and degrade to the replicated boundary state.
          HandleNodeFailure(owner->id, channel);
          return StaleReportFallback(
              request, channel,
              Status::Unavailable(
                  "failover restore on node " + owner->id +
                  " failed: " + restored.message() + " (placement v" +
                  std::to_string(CurrentPlacement().version()) +
                  "); resend to retry"));
        }
        // Typed retryable signal: Unavailable + the placement version the
        // resend will route under. Only idempotent requests should resend.
        return ErrorResponse(
            request.id,
            Status::Unavailable("failover restore on node " + owner->id +
                                " failed: " + restored.message() +
                                " (placement v" +
                                std::to_string(CurrentPlacement().version()) +
                                "); resend to retry"));
      }
    }
    Result<Response> response = ChannelCall(channel, *owner, request);
    if (response.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      tenancy_owner_[request.tenancy] = owner->id;
      return std::move(*response);
    }
    forward_failures_.fetch_add(1, std::memory_order_relaxed);
    HandleNodeFailure(owner->id, channel);
    if (idempotent_read && attempt == 0) continue;
    const Status failure = Status::Unavailable(
        "node " + owner->id + " failed mid-request (" +
        response.status().message() + "); placement updated to v" +
        std::to_string(CurrentPlacement().version()) +
        " — resend to retry");
    if (idempotent_read) {
      return StaleReportFallback(request, channel, failure);
    }
    return ErrorResponse(request.id, failure);
  }
  return ErrorResponse(request.id, Status::Internal("router: unreachable"));
}

Response ClusterRouter::RouteBatch(const Request& request, Channel* channel) {
  const size_t n = request.requests.size();
  std::vector<JsonValue> docs(n);  // Response doc per member, in order.
  auto member_error = [&](size_t index, const Status& status) {
    Response error = ErrorResponse(request.requests[index].id, status);
    error.version = request.requests[index].version;
    docs[index] = service::protocol::ToJson(error);
  };

  // Split by owning node, preserving member order within each node's
  // sub-batch. Non-tenancy members route individually through the
  // ordinary paths — they are placement-independent, so there is nothing
  // to split.
  struct Group {
    NodeInfo node;
    std::vector<size_t> indices;
  };
  std::vector<Group> groups;
  std::map<std::string, size_t> group_of_node;
  std::map<std::string, Status> rehomed;  ///< Per-tenancy restore outcome.
  for (size_t i = 0; i < n; ++i) {
    const Request& member = request.requests[i];
    switch (member.op) {
      case RequestOp::kServerInfo:
      case RequestOp::kListMechanisms:
      case RequestOp::kRestore:
      case RequestOp::kClusterUpdate:
        docs[i] = service::protocol::ToJson(Route(member, channel));
        continue;
      default:
        break;
    }
    std::optional<NodeInfo> owner;
    std::string recorded;
    {
      std::lock_guard<std::mutex> lock(mu_);
      owner = placement_.OwnerOf(member.tenancy);
      auto it = tenancy_owner_.find(member.tenancy);
      if (it != tenancy_owner_.end()) recorded = it->second;
    }
    if (!owner.has_value()) {
      member_error(i, Status::Unavailable(
                          "no live node owns tenancy \"" + member.tenancy +
                          "\" (placement v" +
                          std::to_string(CurrentPlacement().version()) +
                          "); resend to retry"));
      continue;
    }
    // Same lazy re-home as the single-request path: the recorded server
    // changed under us, so activate the warm replica before forwarding.
    if (!recorded.empty() && recorded != owner->id) {
      auto [it, fresh] = rehomed.try_emplace(member.tenancy, Status::OK());
      if (fresh) it->second = RestoreOn(*owner, member.tenancy, channel);
      if (!it->second.ok()) {
        member_error(i, Status::Unavailable(
                            "failover restore on node " + owner->id +
                            " failed: " + it->second.message() +
                            " (placement v" +
                            std::to_string(CurrentPlacement().version()) +
                            "); resend to retry"));
        continue;
      }
    }
    auto [it, fresh] = group_of_node.try_emplace(owner->id, groups.size());
    if (fresh) groups.push_back(Group{*owner, {}});
    groups[it->second].indices.push_back(i);
  }

  // Forward one sub-batch per node and scatter its ordered responses back
  // to the members' original slots.
  for (const Group& group : groups) {
    Request sub;
    sub.op = RequestOp::kBatch;
    sub.version = 3;
    sub.id = request.id;
    sub.requests.reserve(group.indices.size());
    for (size_t index : group.indices) {
      sub.requests.push_back(request.requests[index]);
    }
    Result<Response> forwarded = ChannelCall(channel, group.node, sub);
    if (!forwarded.ok()) {
      // Transport failure mid-batch: the node may or may not have executed
      // any member, so — like a single mutation — the members answer the
      // typed retryable error and the client decides what is safe to
      // resend.
      forward_failures_.fetch_add(1, std::memory_order_relaxed);
      HandleNodeFailure(group.node.id, channel);
      const Status failure = Status::Unavailable(
          "node " + group.node.id + " failed mid-batch (" +
          forwarded.status().message() + "); placement updated to v" +
          std::to_string(CurrentPlacement().version()) +
          " — resend to retry");
      for (size_t index : group.indices) member_error(index, failure);
      continue;
    }
    if (!forwarded->status.ok()) {
      for (size_t index : group.indices) {
        member_error(index, forwarded->status);
      }
      continue;
    }
    const JsonValue* responses = forwarded->payload.Find("responses");
    if (responses == nullptr || !responses->is_array() ||
        responses->AsArray().size() != group.indices.size()) {
      const Status malformed = Status::Internal(
          "node " + group.node.id + " answered a malformed batch response");
      for (size_t index : group.indices) member_error(index, malformed);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t index : group.indices) {
        tenancy_owner_[request.requests[index].tenancy] = group.node.id;
      }
    }
    for (size_t k = 0; k < group.indices.size(); ++k) {
      docs[group.indices[k]] = responses->AsArray()[k];
    }
  }

  JsonValue array = JsonValue::MakeArray();
  array.Reserve(n);
  for (JsonValue& doc : docs) array.Append(std::move(doc));
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("responses", std::move(array));
  return OkResponse(request.id, std::move(payload));
}

Response ClusterRouter::StaleReportFallback(const Request& request,
                                            Channel* channel,
                                            const Status& live_failure) {
  Request state_request;
  state_request.op = RequestOp::kTenancyState;
  state_request.version = 2;
  state_request.tenancy = request.tenancy;
  // Live nodes first (freshest placement knowledge), then marked-dead ones:
  // a node this router failed to forward to may still answer a cheap
  // single-line read (partial partition, mid-restart), and its replicated
  // snapshot is exactly what a degraded read wants.
  const PlacementMap placement = CurrentPlacement();
  std::vector<NodeInfo> sweep = placement.LiveNodes();
  for (const NodeInfo& node : placement.nodes()) {
    if (node.dead) sweep.push_back(node);
  }
  bool known_missing = false;
  for (const NodeInfo& node : sweep) {
    Result<Response> state = ChannelCall(channel, node, state_request);
    if (!state.ok()) continue;  // Unreachable: no evidence either way.
    if (!state->status.ok()) {
      // A positive "no persisted state" answer is evidence the tenancy is
      // unknown (this node never owned or replicated it); keep sweeping in
      // case another node holds it.
      if (state->status.code() == StatusCode::kNotFound) known_missing = true;
      continue;
    }
    const JsonValue* snapshot = state->payload.Find("snapshot");
    if (snapshot == nullptr) continue;  // Journal-only: no boundary yet.
    Result<service::TenancySnapshot> parsed =
        service::TenancySnapshotFromJson(*snapshot);
    if (!parsed.ok()) continue;
    // The report payload shape of a period boundary (no open session), plus
    // the stale marker. periods_run versions the answer: a client can tell
    // exactly how far behind the live tenancy this view may be.
    JsonValue payload = JsonValue::MakeObject();
    payload.Set("tenancy", JsonValue::Str(parsed->name));
    payload.Set("periods_run", JsonValue::Number(parsed->periods_run));
    payload.Set("period_open", JsonValue::Bool(false));
    payload.Set("current_slot", JsonValue::Number(0));
    payload.Set("num_tenants", JsonValue::Number(0));
    JsonValue built = JsonValue::MakeArray();
    for (const std::string& name : parsed->built) {
      built.Append(JsonValue::Str(name));
    }
    payload.Set("built_structures", std::move(built));
    payload.Set("cumulative_balance",
                JsonValue::Number(parsed->cumulative_balance));
    payload.Set("cumulative_utility",
                JsonValue::Number(parsed->cumulative_utility));
    payload.Set("stale", JsonValue::Bool(true));
    payload.Set("served_by", JsonValue::Str(node.id));
    stale_reads_.fetch_add(1, std::memory_order_relaxed);
    return OkResponse(request.id, std::move(payload));
  }
  if (known_missing) {
    return ErrorResponse(request.id,
                         Status::NotFound("unknown tenancy \"" +
                                          request.tenancy + "\""));
  }
  return ErrorResponse(request.id, live_failure);
}

Response ClusterRouter::RouteRestore(const Request& request,
                                     Channel* channel) {
  if (!request.tenancy.empty()) {
    // Targeted restore: run it on the tenancy's owner.
    std::optional<NodeInfo> owner;
    {
      std::lock_guard<std::mutex> lock(mu_);
      owner = placement_.OwnerOf(request.tenancy);
    }
    if (!owner.has_value()) {
      return ErrorResponse(request.id,
                           Status::Internal("no live node owns tenancy \"" +
                                            request.tenancy + "\""));
    }
    Result<Response> response = ChannelCall(channel, *owner, request);
    if (!response.ok()) {
      HandleNodeFailure(owner->id, channel);
      return ErrorResponse(request.id, response.status());
    }
    return std::move(*response);
  }
  // Cluster-wide restore: broadcast and sum the per-node recovery stats.
  JsonValue total = JsonValue::MakeObject();
  int nodes_restored = 0;
  for (const NodeInfo& node : CurrentPlacement().LiveNodes()) {
    Result<Response> response = ChannelCall(channel, node, request);
    if (!response.ok()) {
      HandleNodeFailure(node.id, channel);
      continue;
    }
    if (!response->status.ok()) return std::move(*response);
    ++nodes_restored;
    if (response->payload.is_object()) {
      for (const auto& [key, value] : response->payload.AsObject()) {
        if (!value.is_number()) continue;
        const JsonValue* prior = total.Find(key);
        const double sum =
            (prior != nullptr && prior->is_number() ? prior->AsNumber() : 0) +
            value.AsNumber();
        total.Set(key, JsonValue::Number(sum));
      }
    }
  }
  if (nodes_restored == 0) {
    return ErrorResponse(request.id,
                         Status::Internal("restore: no live nodes"));
  }
  total.Set("nodes", JsonValue::Number(nodes_restored));
  return OkResponse(request.id, std::move(total));
}

Response ClusterRouter::RouteAnyNode(const Request& request,
                                     Channel* channel) {
  for (const NodeInfo& node : CurrentPlacement().LiveNodes()) {
    Result<Response> response = ChannelCall(channel, node, request);
    if (response.ok()) return std::move(*response);
    HandleNodeFailure(node.id, channel);
  }
  return ErrorResponse(request.id, Status::Internal("no live nodes"));
}

Response ClusterRouter::RouteShutdown(const Request& request,
                                      Channel* channel) {
  int notified = 0;
  for (const NodeInfo& node : CurrentPlacement().LiveNodes()) {
    Result<Response> response = ChannelCall(channel, node, request);
    if (response.ok() && response->ok()) ++notified;
  }
  shutdown_requested_.store(true);
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("shutting_down", JsonValue::Bool(true));
  payload.Set("nodes_notified", JsonValue::Number(notified));
  return OkResponse(request.id, payload);
}

Response ClusterRouter::RouteClusterUpdate(const Request& request,
                                           Channel* channel) {
  if (!request.placement.has_value()) {
    return ErrorResponse(
        request.id,
        Status::InvalidArgument("cluster_update: missing placement"));
  }
  Result<PlacementMap> map = PlacementMap::FromJson(*request.placement);
  if (!map.ok()) return ErrorResponse(request.id, map.status());
  bool installed = false;
  PlacementMap current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (map->version() > placement_.version()) {
      placement_ = *map;
      installed = true;
    }
    current = placement_;
  }
  PushPlacement(current, channel);
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("installed", JsonValue::Bool(installed));
  payload.Set("version",
              JsonValue::Number(static_cast<double>(current.version())));
  return OkResponse(request.id, payload);
}

bool ClusterRouter::HandleNodeFailure(const std::string& node_id,
                                      Channel* channel) {
  PlacementMap snapshot;
  bool marked = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::optional<NodeInfo> node = placement_.NodeById(node_id);
    if (node.has_value() && !node->dead) {
      placement_.MarkDead(node_id);
      marked = true;
    }
    snapshot = placement_;
  }
  if (marked) {
    failovers_.fetch_add(1, std::memory_order_relaxed);
    PushPlacement(snapshot, channel);
  }
  return marked;
}

void ClusterRouter::PushPlacement(const PlacementMap& placement,
                                  Channel* channel) {
  Request update;
  update.op = RequestOp::kClusterUpdate;
  update.version = 2;
  update.placement = placement.ToJson();
  for (const NodeInfo& node : placement.LiveNodes()) {
    Result<Response> response = ChannelCall(channel, node, update);
    if (response.ok() && response->ok()) {
      placement_pushes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status ClusterRouter::Rebalance(const std::string& tenancy,
                                const std::string& target_id,
                                Channel* channel) {
  std::lock_guard<std::mutex> rebalance_lock(rebalance_mu_);
  PlacementMap placement = CurrentPlacement();
  std::optional<NodeInfo> target = placement.NodeById(target_id);
  if (!target.has_value() || target->dead) {
    return Status::InvalidArgument("rebalance target \"" + target_id +
                                   "\" is not a live node");
  }
  std::optional<NodeInfo> owner = placement.OwnerOf(tenancy);
  if (!owner.has_value()) {
    return Status::Internal("no live node owns tenancy \"" + tenancy + "\"");
  }
  if (owner->id == target_id) return Status::OK();  // Already home.

  // 1. Evict at the owner: checkpoint, then drop the live tenancy. Fails
  //    with FailedPrecondition while the tenancy's period is open — a
  //    rebalance is a period-boundary operation by design.
  Request evict;
  evict.op = RequestOp::kEvict;
  evict.version = 2;
  evict.tenancy = tenancy;
  Result<Response> evicted = ChannelCall(channel, *owner, evict);
  if (!evicted.ok()) return evicted.status();
  if (!evicted->status.ok()) return evicted->status;

  // 2. Export the persisted state (post-checkpoint snapshot + any tail).
  Request export_req;
  export_req.op = RequestOp::kTenancyState;
  export_req.version = 2;
  export_req.tenancy = tenancy;
  Result<Response> exported = ChannelCall(channel, *owner, export_req);
  if (!exported.ok()) return exported.status();
  if (!exported->status.ok()) return exported->status;

  // 3. Replay it into the target's store over the replication ops — the
  //    hand-off is exactly the streaming path, exercised on demand.
  const JsonValue* snapshot = exported->payload.Find("snapshot");
  if (snapshot != nullptr) {
    Request checkpoint;
    checkpoint.op = RequestOp::kReplCheckpoint;
    checkpoint.version = 2;
    checkpoint.tenancy = tenancy;
    checkpoint.snapshot = *snapshot;
    Result<Response> applied = ChannelCall(channel, *target, checkpoint);
    if (!applied.ok()) return applied.status();
    if (!applied->status.ok()) return applied->status;
  }
  const JsonValue* journal = exported->payload.Find("journal");
  if (journal != nullptr && journal->is_array()) {
    for (const JsonValue& line : journal->AsArray()) {
      if (!line.is_string()) continue;
      Request append;
      append.op = RequestOp::kReplAppend;
      append.version = 2;
      append.tenancy = tenancy;
      append.record = line.AsString();
      Result<Response> applied = ChannelCall(channel, *target, append);
      if (!applied.ok()) return applied.status();
      if (!applied->status.ok()) return applied->status;
    }
  }

  // 4. Activate on the target (single-tenancy recovery from what we just
  //    handed off), then 5. pin the new home and publish it.
  OPTSHARE_RETURN_NOT_OK(RestoreOn(*target, tenancy, channel));
  PlacementMap updated;
  {
    std::lock_guard<std::mutex> lock(mu_);
    placement_.SetOverride(tenancy, target_id);
    tenancy_owner_[tenancy] = target_id;
    updated = placement_;
  }
  PushPlacement(updated, channel);
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

JsonValue ClusterRouter::InfoJson() const {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("role", JsonValue::Str("router"));
  {
    std::lock_guard<std::mutex> lock(mu_);
    obj.Set("placement", placement_.ToJson());
    obj.Set("tenancies_routed",
            JsonValue::Number(static_cast<double>(tenancy_owner_.size())));
  }
  JsonValue counters = JsonValue::MakeObject();
  counters.Set("requests_routed",
               JsonValue::Number(static_cast<double>(
                   requests_routed_.load(std::memory_order_relaxed))));
  counters.Set("forward_failures",
               JsonValue::Number(static_cast<double>(
                   forward_failures_.load(std::memory_order_relaxed))));
  counters.Set("failovers",
               JsonValue::Number(static_cast<double>(
                   failovers_.load(std::memory_order_relaxed))));
  counters.Set("restores_issued",
               JsonValue::Number(static_cast<double>(
                   restores_issued_.load(std::memory_order_relaxed))));
  counters.Set("placement_pushes",
               JsonValue::Number(static_cast<double>(
                   placement_pushes_.load(std::memory_order_relaxed))));
  counters.Set("rebalances",
               JsonValue::Number(static_cast<double>(
                   rebalances_.load(std::memory_order_relaxed))));
  counters.Set("stale_reads",
               JsonValue::Number(static_cast<double>(
                   stale_reads_.load(std::memory_order_relaxed))));
  obj.Set("routing", std::move(counters));
  return obj;
}

// -- RouterServer ------------------------------------------------------------

namespace {

/// Blocking write of the whole buffer (the fd is in blocking mode; a
/// would_block can only appear transiently).
Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    Result<net::IoChunk> chunk =
        net::WriteChunk(fd, data.data() + off, data.size() - off);
    if (!chunk.ok()) return chunk.status();
    if (chunk->eof) return Status::Internal("peer closed");
    if (chunk->would_block) {
      pollfd pfd{fd, POLLOUT, 0};
      (void)poll(&pfd, 1, 100);
      continue;
    }
    off += chunk->bytes;
  }
  return Status::OK();
}

}  // namespace

RouterServer::RouterServer(ClusterRouter* router, std::string host,
                           uint16_t port)
    : router_(router), host_(std::move(host)), requested_port_(port) {}

RouterServer::~RouterServer() { Stop(); }

Status RouterServer::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("router server already started");
  }
  Result<net::Socket> listener = net::ListenTcp(host_, requested_port_);
  if (!listener.ok()) return listener.status();
  Result<uint16_t> port = net::BoundPort(*listener);
  if (!port.ok()) return port.status();
  listener_ = std::move(*listener);
  port_ = *port;
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RouterServer::AcceptLoop() {
  while (!stop_.load() && !router_->shutdown_requested()) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int rc = poll(&pfd, 1, 100);
    if (rc <= 0) continue;
    Result<net::Socket> accepted = net::AcceptNonBlocking(listener_);
    if (!accepted.ok() || !accepted->valid()) continue;
    // Thread-per-connection with blocking I/O: flip the accepted socket
    // back to blocking mode.
    const int flags = fcntl(accepted->fd(), F_GETFL, 0);
    if (flags >= 0) {
      (void)fcntl(accepted->fd(), F_SETFL, flags & ~O_NONBLOCK);
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    connection_threads_.emplace_back(
        [this, socket = std::make_shared<net::Socket>(
                   std::move(*accepted))]() mutable {
          Serve(std::move(*socket));
        });
  }
}

void RouterServer::Serve(net::Socket socket) {
  ClusterRouter::Channel channel;
  // Frame under the batch cap so a legal v3 batch frame is never torn;
  // RouteLine enforces the plain cap on non-batch lines after parsing.
  net::LineBuffer lines(router_->max_batch_request_bytes());
  char buf[16384];
  std::string line;
  while (!stop_.load()) {
    pollfd pfd{socket.fd(), POLLIN, 0};
    const int rc = poll(&pfd, 1, 100);
    if (rc <= 0) {
      // Idle: exit once a shutdown has drained this connection's pipeline.
      if (router_->shutdown_requested()) return;
      continue;
    }
    Result<net::IoChunk> chunk = net::ReadChunk(socket.fd(), buf, sizeof(buf));
    if (!chunk.ok() || chunk->eof) return;
    lines.Append(buf, chunk->bytes);
    for (;;) {
      const net::LineBuffer::Next next = lines.NextLine(&line);
      if (next == net::LineBuffer::Next::kNeedMore) break;
      std::string response_line;
      if (next == net::LineBuffer::Next::kTooLong) {
        response_line = FormatResponseLine(ErrorResponse(
            "", Status::ResourceExhausted("request line exceeds limit")));
      } else {
        response_line = router_->RouteLine(line, &channel);
      }
      response_line.push_back('\n');
      if (!WriteAll(socket.fd(), response_line).ok()) return;
    }
  }
}

void RouterServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) t.join();
  }
  connection_threads_.clear();
}

void RouterServer::Stop() {
  if (!started_.load()) return;
  stop_.store(true);
  Wait();
  listener_.Close();
}

}  // namespace optshare::cluster
