// Journal-streaming replication: the cluster's warm-replica machinery.
//
// ReplicatedStateStore decorates a node's base StateStore so that every
// durability primitive — Append / Checkpoint / Sync — first lands in the
// base store (the node's own WAL semantics are untouched), then streams to
// the tenancy's replica node as a repl_* wire request carrying the exact
// same bytes (the journal line verbatim, the snapshot document verbatim).
// The replica applies them through ITS base store, so replica state is
// byte-identical `snapshot + journal` and failover recovery is literally
// single-node recovery on the replica.
//
// Replication is semi-synchronous: the stream happens on the tenancy's
// shard inside the store call, so by the time a client sees a response,
// its record has been offered to the replica. The default mode degrades
// rather than fails — a down replica costs a counter and a logged warning,
// not availability (the next checkpoint heals the gap, because
// repl_checkpoint ships the full snapshot and truncates the replica's
// journal). `strict` mode turns streaming failures into request failures
// for deployments that want synchronous-replica guarantees.
//
// Cascade safety: the replica applies repl_* writes through
// StateStore::ReplicationBase(), which this decorator overrides to return
// the base store — a replica-applied record is never re-streamed, so a
// two-node ring cannot bounce records A→B→A.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "cluster/placement.h"
#include "common/json.h"
#include "common/status.h"
#include "service/net_client.h"
#include "service/state_store.h"

namespace optshare::cluster {

/// Owns the placement view and the peer connections a node streams over.
/// Thread-safe: placement swaps under a mutex, each peer connection has
/// its own mutex (distinct tenancies stream to distinct replicas
/// concurrently), counters are atomics.
class ReplicationManager {
 public:
  ReplicationManager(PlacementMap placement, std::string self_id,
                     service::NetClient::ConnectOptions connect_options,
                     bool strict);

  /// Installs `placement` if its version is newer; returns whether it was
  /// installed (false = stale or same version, which is not an error).
  bool UpdatePlacement(const PlacementMap& placement);
  PlacementMap CurrentPlacement() const;
  const std::string& self_id() const { return self_id_; }

  /// Streams `request` (a repl_* op for request.tenancy) to the tenancy's
  /// replica — ReplicaFor(tenancy, self_id). No-op when no replica exists.
  /// Reconnects once on a transport failure; a still-failing stream
  /// degrades to OK unless strict mode is on.
  Status Forward(const service::protocol::Request& request);

  struct Stats {
    uint64_t records_sent = 0;    ///< repl_append offered.
    uint64_t records_acked = 0;   ///< repl_append acknowledged ok.
    uint64_t checkpoints_sent = 0;
    uint64_t syncs_sent = 0;
    uint64_t failures = 0;        ///< Streams that never got an ok.
    uint64_t reconnects = 0;
  };
  Stats stats() const;

  /// The server_info "replication" section: counters, lag (sent - acked),
  /// placement version, self id, strict flag, last error.
  JsonValue InfoJson() const;

 private:
  struct Peer {
    std::mutex mu;
    std::optional<service::NetClient> client;
  };

  /// One call over the peer's connection, connecting/reconnecting as
  /// needed. Returns the protocol-level status of the reply.
  Status CallPeer(const NodeInfo& node, const service::protocol::Request& r);

  const std::string self_id_;
  const service::NetClient::ConnectOptions connect_options_;
  const bool strict_;

  mutable std::mutex placement_mu_;
  PlacementMap placement_;

  mutable std::mutex peers_mu_;  ///< Guards the map shape, not the peers.
  std::map<std::string, std::unique_ptr<Peer>> peers_;

  std::atomic<uint64_t> records_sent_{0};
  std::atomic<uint64_t> records_acked_{0};
  std::atomic<uint64_t> checkpoints_sent_{0};
  std::atomic<uint64_t> syncs_sent_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> reconnects_{0};
  mutable std::mutex error_mu_;
  std::string last_error_;
};

/// The streaming decorator (see the file comment).
class ReplicatedStateStore : public service::StateStore {
 public:
  ReplicatedStateStore(std::shared_ptr<service::StateStore> base,
                       std::shared_ptr<ReplicationManager> replication);

  std::string_view kind() const override { return base_->kind(); }
  Status Append(const std::string& tenancy,
                const std::string& record) override;
  Status Checkpoint(const std::string& tenancy,
                    const JsonValue& snapshot) override;
  Status Sync(const std::string& tenancy) override;
  Status Remove(const std::string& tenancy) override;
  Result<std::vector<service::PersistedTenancy>> Load() override;
  Result<std::optional<service::PersistedTenancy>> LoadTenancy(
      const std::string& tenancy) override;
  service::StateStoreStats stats() const override;

  StateStore* ReplicationBase() override { return base_.get(); }
  std::optional<JsonValue> ReplicationInfo() const override {
    return replication_->InfoJson();
  }

 private:
  std::shared_ptr<service::StateStore> base_;
  std::shared_ptr<ReplicationManager> replication_;
};

}  // namespace optshare::cluster
