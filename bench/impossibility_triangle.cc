// The Moulin-Shenker impossibility triangle, measured (paper §3: "one
// cannot achieve cost-recovery, truthfulness and efficiency
// simultaneously"). Three mechanisms, each sacrificing one corner:
//
//   naive (pay-your-bid)  — cost-recovering + efficient-ish, NOT truthful
//   VCG                   — truthful + efficient, NOT cost-recovering
//   Shapley (AddOff)      — truthful + cost-recovering, NOT efficient
//
// For seeded random single-optimization games this bench reports, per
// mechanism: mean welfare relative to the optimum, mean cloud balance,
// fraction of games with a cloud loss, and mean per-user exploitability
// (the best utility gain any user can find over a deviation grid).
#include <algorithm>
#include <iostream>

#include "baseline/naive.h"
#include "baseline/vcg.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/add_off.h"
#include "core/strategy.h"

namespace optshare {
namespace {

struct TriangleRow {
  double welfare_ratio = 0.0;  // Achieved / optimal welfare.
  double balance = 0.0;        // Payments - cost.
  double loss_rate = 0.0;      // Fraction of games with balance < 0.
  double exploitability = 0.0; // Mean best deviation gain per game.
};

struct GameEval {
  double welfare = 0.0;
  double balance = 0.0;
  // Truthful utility per user, for the exploitability probe.
  std::vector<double> utility;
};

GameEval EvalNaive(const std::vector<double>& values, double cost) {
  GameEval e;
  NaiveResult r = RunNaive(cost, values);
  e.utility.assign(values.size(), 0.0);
  if (r.implemented) {
    for (size_t i = 0; i < values.size(); ++i) {
      e.welfare += values[i];
      e.utility[i] = values[i] - r.payments[i];  // Pays her own bid.
    }
    e.welfare -= cost;
    e.balance = r.TotalPayment() - cost;
  }
  return e;
}

double NaiveDeviationGain(const std::vector<double>& values, double cost,
                          size_t i, const std::vector<double>& grid) {
  const GameEval truthful = EvalNaive(values, cost);
  double best = 0.0;
  for (double bid : grid) {
    std::vector<double> bids = values;
    bids[i] = bid;
    NaiveResult r = RunNaive(cost, bids);
    const double utility = r.implemented ? values[i] - bid : 0.0;
    best = std::max(best, utility - truthful.utility[i]);
  }
  return best;
}

GameEval EvalVcg(const std::vector<double>& values, double cost) {
  GameEval e;
  AdditiveOfflineGame g;
  g.costs = {cost};
  for (double v : values) g.bids.push_back({v});
  VcgResult r = RunVcg(g);
  e.utility.assign(values.size(), 0.0);
  if (r.per_opt[0].implemented) {
    for (size_t i = 0; i < values.size(); ++i) {
      if (r.per_opt[0].serviced[i]) {
        e.welfare += values[i];
        e.utility[i] = values[i] - r.per_opt[0].payments[i];
      }
    }
    e.welfare -= cost;
    e.balance = r.per_opt[0].TotalPayment() - cost;
  }
  return e;
}

double VcgDeviationGain(const std::vector<double>& values, double cost,
                        size_t i, const std::vector<double>& grid) {
  const GameEval truthful = EvalVcg(values, cost);
  double best = 0.0;
  for (double bid : grid) {
    std::vector<double> bids = values;
    bids[i] = bid;
    AdditiveOfflineGame g;
    g.costs = {cost};
    for (double v : bids) g.bids.push_back({v});
    VcgResult r = RunVcg(g);
    // Utility against her *true* value, not the declared bid.
    double utility = 0.0;
    if (r.per_opt[0].implemented && r.per_opt[0].serviced[i]) {
      utility = values[i] - r.per_opt[0].payments[i];
    }
    best = std::max(best, utility - truthful.utility[i]);
  }
  return best;
}

GameEval EvalShapley(const std::vector<double>& values, double cost) {
  GameEval e;
  ShapleyResult r = RunShapley(cost, values);
  e.utility.assign(values.size(), 0.0);
  if (r.implemented) {
    for (size_t i = 0; i < values.size(); ++i) {
      if (r.serviced[i]) {
        e.welfare += values[i];
        e.utility[i] = values[i] - r.payments[i];
      }
    }
    e.welfare -= cost;
    e.balance = r.TotalPayment() - cost;
  }
  return e;
}

double ShapleyDeviationGain(const std::vector<double>& values, double cost,
                            size_t i, const std::vector<double>& grid) {
  const GameEval truthful = EvalShapley(values, cost);
  double best = 0.0;
  for (double bid : grid) {
    std::vector<double> bids = values;
    bids[i] = bid;
    ShapleyResult r = RunShapley(cost, bids);
    double utility = 0.0;
    if (r.implemented && r.serviced[i]) utility = values[i] - r.payments[i];
    best = std::max(best, utility - truthful.utility[i]);
  }
  return best;
}

}  // namespace
}  // namespace optshare

int main() {
  using namespace optshare;

  const int trials = 2000;
  const int m = 6;
  Rng rng(4242);

  TriangleRow naive, vcg, shapley;
  double optimal_sum = 0.0;
  double naive_w = 0, vcg_w = 0, shap_w = 0;

  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> values;
    for (int i = 0; i < m; ++i) values.push_back(rng.Uniform(0.0, 1.0));
    const double cost = rng.Uniform(0.2, 3.0);

    double total = 0.0;
    for (double v : values) total += v;
    optimal_sum += std::max(0.0, total - cost);

    const std::vector<double> grid =
        CandidateDeviationBids({cost}, values, m);

    const GameEval ne = EvalNaive(values, cost);
    naive_w += ne.welfare;
    naive.balance += ne.balance;
    naive.loss_rate += ne.balance < -1e-9 ? 1 : 0;
    const GameEval ve = EvalVcg(values, cost);
    vcg_w += ve.welfare;
    vcg.balance += ve.balance;
    vcg.loss_rate += ve.balance < -1e-9 ? 1 : 0;
    const GameEval se = EvalShapley(values, cost);
    shap_w += se.welfare;
    shapley.balance += se.balance;
    shapley.loss_rate += se.balance < -1e-9 ? 1 : 0;

    // Exploitability of user 0 only (grids are dense; one user suffices
    // for the mean gain statistic).
    naive.exploitability += NaiveDeviationGain(values, cost, 0, grid);
    vcg.exploitability += VcgDeviationGain(values, cost, 0, grid);
    shapley.exploitability += ShapleyDeviationGain(values, cost, 0, grid);
  }

  auto finalize = [&](TriangleRow& row, double welfare) {
    row.welfare_ratio = optimal_sum > 0 ? welfare / optimal_sum : 1.0;
    row.balance /= trials;
    row.loss_rate /= trials;
    row.exploitability /= trials;
  };
  finalize(naive, naive_w);
  finalize(vcg, vcg_w);
  finalize(shapley, shap_w);

  TextTable t({"mechanism", "welfare/optimal", "mean_balance", "loss_rate",
               "exploitability"});
  t.AddRow({"naive", FormatFixed(naive.welfare_ratio, 4),
            FormatFixed(naive.balance, 4), FormatFixed(naive.loss_rate, 4),
            FormatFixed(naive.exploitability, 4)});
  t.AddRow({"vcg", FormatFixed(vcg.welfare_ratio, 4),
            FormatFixed(vcg.balance, 4), FormatFixed(vcg.loss_rate, 4),
            FormatFixed(vcg.exploitability, 4)});
  t.AddRow({"shapley", FormatFixed(shapley.welfare_ratio, 4),
            FormatFixed(shapley.balance, 4), FormatFixed(shapley.loss_rate, 4),
            FormatFixed(shapley.exploitability, 4)});

  std::cout
      << "The impossibility triangle, measured (" << trials
      << " random 6-user games, cost U[0.2,3), values U[0,1))\n"
      << "Each mechanism gives up one property; no row can be clean in all "
         "three.\n\n"
      << t.Render()
      << "\nexploitability = mean best utility gain user 0 finds over a "
         "deviation grid\n";
  return 0;
}
