// Recovery throughput harness: how fast a crashed marketplace server comes
// back. Builds a FileStateStore data dir by driving tenancies mid-period
// (so every request stays in the journal — no checkpoint truncation), then
// measures a cold Recover(): snapshot loads plus journal replay through
// the regular dispatch path, in records/s. Also reports the journaling
// overhead of the live run (file store vs memory store wall time). Emits
// BENCH_recovery.json.
//
//   recovery_speed [--quick] [--out PATH] [--tenancies N] [--tenants N]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/json.h"
#include "common/rng.h"
#include "service/marketplace_server.h"
#include "service/state_store.h"
#include "simdb/scenarios.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;
using service::FileStateStore;
using service::MarketplaceServer;
using service::MemoryStateStore;
using service::RecoveryStats;
using service::ServerOptions;
using service::protocol::Request;
using service::protocol::RequestOp;
using service::protocol::Response;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct RunConfig {
  int tenancies = 8;
  int tenants = 1000;
  int slots = 12;
  int workers = 4;
};

/// Drives every tenancy through one closed period plus an open second
/// period whose tenants are submitted one by one — a long journal tail per
/// tenancy (1 open + N submits + slots advances past the checkpoint).
/// Returns wall ms.
double DriveProgram(MarketplaceServer& server, const RunConfig& config,
                    const std::vector<simdb::SimUser>& tenants) {
  const auto start = Clock::now();
  std::vector<std::future<Response>> lasts;
  for (int t = 0; t < config.tenancies; ++t) {
    const std::string name = "tenancy-" + std::to_string(t);
    Rng rng(4200 + static_cast<uint64_t>(t));
    const std::vector<simdb::SimUser> jittered =
        simdb::JitterTenants(tenants, config.slots, rng);
    for (int period = 0; period < 2; ++period) {
      Request open;
      open.op = RequestOp::kOpenPeriod;
      open.tenancy = name;
      if (period == 0) {
        service::protocol::CatalogSpec catalog;
        catalog.scenario = "telemetry";
        catalog.scenario_tenants = config.tenants;
        catalog.scenario_slots = config.slots;
        open.catalog = catalog;
        service::ServiceConfig service_config;
        service_config.slots_per_period = config.slots;
        open.config = service_config;
      }
      server.Dispatch(std::move(open));
      for (const simdb::SimUser& tenant : jittered) {
        Request submit;
        submit.op = RequestOp::kSubmit;
        submit.tenancy = name;
        submit.tenants = {tenant};
        server.Dispatch(std::move(submit));
      }
      for (int s = 0; s < config.slots; ++s) {
        Request advance;
        advance.op = RequestOp::kAdvanceSlot;
        advance.tenancy = name;
        if (period == 1 && s + 1 == config.slots) {
          lasts.push_back(server.Dispatch(std::move(advance)));
        } else {
          server.Dispatch(std::move(advance));
        }
      }
      if (period == 0) {
        Request close;
        close.op = RequestOp::kClosePeriod;
        close.tenancy = name;
        server.Dispatch(std::move(close));
      }
      // Period 1 stays open: its whole request tail lives in the journal.
    }
  }
  for (auto& last : lasts) {
    const Response response = last.get();
    if (!response.ok()) {
      std::cerr << "program failed: " << response.status.ToString() << "\n";
      std::exit(1);
    }
  }
  return ElapsedMs(start);
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  RunConfig config;
  std::string out_path = "BENCH_recovery.json";
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
      config.tenancies = 2;
      config.tenants = 150;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else if (arg == "--tenancies" && a + 1 < argc) {
      config.tenancies = std::stoi(argv[++a]);
    } else if (arg == "--tenants" && a + 1 < argc) {
      config.tenants = std::stoi(argv[++a]);
    } else {
      std::cerr << "usage: recovery_speed [--quick] [--out PATH] "
                   "[--tenancies N] [--tenants N]\n";
      return 2;
    }
  }

  auto scenario = simdb::TelemetryScenario(config.tenants, config.slots);
  if (!scenario.ok()) {
    std::cerr << "scenario failed: " << scenario.status().ToString() << "\n";
    return 1;
  }

  const std::string data_dir = "recovery_bench_data";
  if (!fs::RemoveAll(data_dir).ok()) return 1;

  // Baseline: the same program against the in-memory store (no disk).
  double memory_ms = 0.0;
  {
    MarketplaceServer server(ServerOptions{config.workers});
    memory_ms = DriveProgram(server, config, scenario->tenants);
  }

  // Journaled run: every mutating request appended to the data dir.
  double file_ms = 0.0;
  uint64_t records = 0;
  {
    auto store = FileStateStore::Open(data_dir);
    if (!store.ok()) {
      std::cerr << store.status().ToString() << "\n";
      return 1;
    }
    ServerOptions options;
    options.num_workers = config.workers;
    options.store = std::move(*store);
    MarketplaceServer server(std::move(options));
    file_ms = DriveProgram(server, config, scenario->tenants);
    records = server.store().stats().appends;
    // No Shutdown: the data dir is left exactly as a crash would.
  }

  // The measurement: cold recovery of the whole data dir.
  double recover_ms = 0.0;
  RecoveryStats stats;
  {
    auto store = FileStateStore::Open(data_dir);
    if (!store.ok()) {
      std::cerr << store.status().ToString() << "\n";
      return 1;
    }
    ServerOptions options;
    options.num_workers = config.workers;
    options.store = std::move(*store);
    MarketplaceServer server(std::move(options));
    const auto start = Clock::now();
    Result<RecoveryStats> recovered = server.Recover();
    recover_ms = ElapsedMs(start);
    if (!recovered.ok()) {
      std::cerr << "recover failed: " << recovered.status().ToString() << "\n";
      return 1;
    }
    stats = *recovered;
  }
  (void)fs::RemoveAll(data_dir);

  const double replay_per_sec =
      recover_ms > 0.0 ? stats.journal_records_replayed / (recover_ms / 1000.0)
                       : 0.0;
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("bench", JsonValue::Str("recovery_speed"));
  doc.Set("quick", JsonValue::Bool(quick));
  doc.Set("tenancies", JsonValue::Number(config.tenancies));
  doc.Set("tenants", JsonValue::Number(config.tenants));
  doc.Set("slots", JsonValue::Number(config.slots));
  doc.Set("workers", JsonValue::Number(config.workers));
  doc.Set("journal_records", JsonValue::Number(static_cast<double>(records)));
  doc.Set("live_ms_memory_store", JsonValue::Number(memory_ms));
  doc.Set("live_ms_file_store", JsonValue::Number(file_ms));
  doc.Set("journal_overhead",
          JsonValue::Number(memory_ms > 0.0 ? file_ms / memory_ms : 0.0));
  doc.Set("recover_ms", JsonValue::Number(recover_ms));
  doc.Set("snapshots_loaded", JsonValue::Number(stats.snapshots_loaded));
  doc.Set("records_replayed",
          JsonValue::Number(stats.journal_records_replayed));
  doc.Set("replay_records_per_sec", JsonValue::Number(replay_per_sec));

  std::ofstream out(out_path);
  out << doc.Dump(2) << "\n";
  std::cout << "journaled live run: " << file_ms << " ms (memory "
            << memory_ms << " ms, overhead x"
            << (memory_ms > 0.0 ? file_ms / memory_ms : 0.0) << ")\n"
            << "recovery: " << stats.snapshots_loaded << " snapshots + "
            << stats.journal_records_replayed << " records in " << recover_ms
            << " ms (" << replay_per_sec << " records/s)\n"
            << "wrote " << out_path << "\n";
  return 0;
}
