// Extension bench (not a paper figure): total utility vs collaboration
// size at a fixed optimization cost. Shows the funding threshold — the
// group size at which shared purchase becomes viable — for AddOn/SubstOn
// vs Regret.
#include <iostream>

#include "common/table.h"
#include "exp/scaling.h"

int main() {
  using namespace optshare;

  exp::ScalingConfig config;
  const auto points = exp::RunGroupScaling(config);

  TextTable t({"users", "addon_u", "regret_u", "regret_balance", "subston_u",
               "subst_regret_u"});
  for (const auto& p : points) {
    t.AddNumericRow({static_cast<double>(p.num_users), p.addon_utility,
                     p.regret_utility, p.regret_balance, p.subst_utility,
                     p.subst_regret_utility},
                    4);
  }
  std::cout << "Extension — collaboration scaling at fixed cost "
            << config.cost << " (" << config.trials << " trials/point)\n\n"
            << t.Render();
  return 0;
}
