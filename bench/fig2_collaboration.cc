// Figure 2 (§7.3): total utility vs optimization cost for small (6-user)
// and large (24-user) collaborations, additive (AddOn) and substitutable
// (SubstOn) optimizations, against the Regret baseline.
//
// Optionally writes fig2{a,b,c,d}.csv into the directory given as argv[1].
#include <fstream>
#include <iostream>

#include "exp/figures.h"
#include "exp/report.h"

namespace {

int ExportCsv(const std::string& dir, const std::string& name,
              const std::vector<optshare::exp::UtilityPoint>& points) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path);
  optshare::Status st = optshare::exp::WriteUtilityCurveCsv(&out, points);
  if (!st.ok()) {
    std::cerr << "CSV export failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace optshare;

  exp::Fig2Config config;
  const exp::Fig2Series series = exp::RunFig2(config);

  std::cout << "Figure 2 — Collaboration Size (" << config.trials
            << " trials/point)\n\n";
  std::cout << "(a) Additive optimization, small collaboration (6 users)\n"
            << exp::RenderUtilityCurve(series.additive_small, "AddOn") << "\n";
  std::cout << "(b) Additive optimization, large collaboration (24 users)\n"
            << exp::RenderUtilityCurve(series.additive_large, "AddOn") << "\n";
  std::cout << "(c) Substitutive optimization, small collaboration (6 users)\n"
            << exp::RenderUtilityCurve(series.subst_small, "SubstOn") << "\n";
  std::cout << "(d) Substitutive optimization, large collaboration (24 users)\n"
            << exp::RenderUtilityCurve(series.subst_large, "SubstOn") << "\n";

  if (argc > 1) {
    const std::string dir = argv[1];
    if (ExportCsv(dir, "fig2a.csv", series.additive_small) ||
        ExportCsv(dir, "fig2b.csv", series.additive_large) ||
        ExportCsv(dir, "fig2c.csv", series.subst_small) ||
        ExportCsv(dir, "fig2d.csv", series.subst_large)) {
      return 1;
    }
  }
  return 0;
}
