// Figure 1 (§7.2): astronomy use-case. Prints operating expense without
// optimizations and the total utility of AddOn vs Regret (plus Regret's
// cloud balance) as the per-user workload execution count grows, averaged
// over sampled quarter-interval bid alternatives.
//
// Optionally writes fig1.csv into the directory given as argv[1].
#include <fstream>
#include <iostream>

#include "exp/figures.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace optshare;

  const astro::AstroWorkloadModel model = astro::PaperWorkloadModel();
  exp::Fig1Config config;
  const std::vector<exp::Fig1Point> points = exp::RunFig1(model, config);

  std::cout << "Figure 1 — Performance on the Astronomy Use-Case\n"
            << "(6 users; 27 per-snapshot materialized views at $2.31 each;\n"
            << " 4 quarterly slots; " << config.sampled_alternatives
            << " sampled bid alternatives; amounts in $)\n\n"
            << exp::RenderFig1(points);

  if (argc > 1) {
    const std::string path = std::string(argv[1]) + "/fig1.csv";
    std::ofstream out(path);
    Status st = exp::WriteFig1Csv(&out, points);
    if (!st.ok()) {
      std::cerr << "CSV export failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}
