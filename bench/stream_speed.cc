// Streaming-session speed harness: measures the steady-state per-slot cost
// of the slot-incremental AddOn surface (core/online_mechanism.h) against
// what the old batch API forces — a full-game recompute whenever the
// period's state changes — and emits BENCH_streaming.json. The acceptance
// bar for the API redesign: at n = 100k tenants, the steady-state per-slot
// session cost must sit at or below the amortized batch-recompute cost
// (one full RunAddOnEngine pass per slot).
//
//   stream_speed [--quick] [--out PATH]
//
// --quick shrinks the tenant counts (CI smoke); the default sweep goes to
// n = 100k. No google-benchmark dependency: plain chrono, one JSON doc.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/online_mechanism.h"
#include "workload/event_stream.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Times fn adaptively: one warm-up, then enough repetitions to cover
/// ~0.25s (capped), returning milliseconds per run.
template <typename Fn>
double TimeMs(Fn&& fn) {
  fn();  // warm-up
  auto once = [&] {
    const auto start = Clock::now();
    fn();
    return ElapsedMs(start);
  };
  const double first = once();
  int reps = 1;
  if (first < 250.0) {
    reps = std::min(20, std::max(1, static_cast<int>(250.0 / (first + 0.01))));
  }
  double total = first;
  for (int r = 1; r < reps; ++r) total += once();
  return total / reps;
}

struct StreamTimings {
  double total_ms = 0.0;
  double per_slot_mean_ms = 0.0;
  double per_slot_median_ms = 0.0;  // The steady-state figure.
  double finalize_ms = 0.0;
};

/// Replays `log` through the native streaming mechanism, timing each
/// OnSlot; the median per-slot time is the steady-state cost.
Result<StreamTimings> TimeStream(const SlotEventLog& log) {
  Result<std::unique_ptr<OnlineMechanism>> mech =
      ResolveOnlineMechanism("addon", log.kind);
  if (!mech.ok()) return mech.status();

  StreamTimings t;
  std::vector<double> slot_ms;
  slot_ms.reserve(static_cast<size_t>(log.num_slots));

  OnlineGameMeta meta;
  meta.kind = log.kind;
  meta.num_slots = log.num_slots;
  meta.costs = log.costs;
  OPTSHARE_RETURN_NOT_OK((*mech)->Begin(meta));
  for (TimeSlot slot = 1; slot <= log.num_slots; ++slot) {
    const auto start = Clock::now();
    Result<OnlineSlotReport> report =
        (*mech)->OnSlot(slot, log.events[static_cast<size_t>(slot - 1)]);
    if (!report.ok()) return report.status();
    slot_ms.push_back(ElapsedMs(start));
  }
  const auto fin_start = Clock::now();
  Result<MechanismResult> result = (*mech)->Finalize();
  if (!result.ok()) return result.status();
  t.finalize_ms = ElapsedMs(fin_start);

  for (double ms : slot_ms) t.total_ms += ms;
  t.per_slot_mean_ms = t.total_ms / static_cast<double>(slot_ms.size());
  std::sort(slot_ms.begin(), slot_ms.end());
  t.per_slot_median_ms = slot_ms[slot_ms.size() / 2];
  return t;
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_streaming.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::cerr << "usage: stream_speed [--quick] [--out PATH]\n";
      return 2;
    }
  }

  JsonValue benchmarks = JsonValue::MakeArray();
  JsonValue comparisons = JsonValue::MakeObject();

  const std::vector<int> sizes =
      quick ? std::vector<int>{2000} : std::vector<int>{10000, 100000};
  for (int n : sizes) {
    AdditiveScenario scenario;
    scenario.num_users = n;
    scenario.num_slots = 50;
    scenario.duration = 25;
    const double cost = 0.1 * n;
    Rng rng(7);
    const AdditiveOnlineGame game = MakeAdditiveGame(scenario, cost, rng);
    const SlotEventLog log = EventLogFromGame(game);

    // Streaming: per-slot incremental cost of the live session surface.
    Result<StreamTimings> stream = TimeStream(log);
    if (!stream.ok()) {
      std::cerr << "error: " << stream.status().ToString() << "\n";
      return 1;
    }

    // Batch: the recompute the old API forces per state change — a full
    // engine pass over the whole period's game.
    const double batch_full_ms =
        TimeMs([&] { engine::RunAddOnEngine(game); });

    const double speedup = batch_full_ms / stream->per_slot_median_ms;
    std::printf(
        "n=%-7d z=%d  stream: %8.3f ms/slot steady (%8.3f mean, %9.3f "
        "total + %7.3f finalize)\n"
        "                 batch recompute: %9.3f ms/slot  ->  %8.1fx\n",
        n, scenario.num_slots, stream->per_slot_median_ms,
        stream->per_slot_mean_ms, stream->total_ms, stream->finalize_ms,
        batch_full_ms, speedup);
    std::fflush(stdout);

    JsonValue s = JsonValue::MakeObject();
    s.Set("layer", JsonValue::Str("addon_stream"));
    s.Set("n", JsonValue::Number(n));
    s.Set("slots", JsonValue::Number(scenario.num_slots));
    s.Set("ms_total", JsonValue::Number(stream->total_ms));
    s.Set("ms_per_slot_mean", JsonValue::Number(stream->per_slot_mean_ms));
    s.Set("ms_per_slot_steady",
          JsonValue::Number(stream->per_slot_median_ms));
    s.Set("ms_finalize", JsonValue::Number(stream->finalize_ms));
    benchmarks.Append(std::move(s));

    JsonValue b = JsonValue::MakeObject();
    b.Set("layer", JsonValue::Str("addon_batch_recompute"));
    b.Set("n", JsonValue::Number(n));
    b.Set("slots", JsonValue::Number(scenario.num_slots));
    b.Set("ms_per_slot", JsonValue::Number(batch_full_ms));
    benchmarks.Append(std::move(b));

    JsonValue c = JsonValue::MakeObject();
    c.Set("stream_steady_ms_per_slot",
          JsonValue::Number(stream->per_slot_median_ms));
    c.Set("batch_recompute_ms_per_slot", JsonValue::Number(batch_full_ms));
    c.Set("stream_at_or_below_batch",
          JsonValue::Bool(stream->per_slot_median_ms <= batch_full_ms));
    c.Set("speedup", JsonValue::Number(speedup));
    comparisons.Set("n" + std::to_string(n), std::move(c));
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("benchmarks", std::move(benchmarks));
  doc.Set("comparisons", std::move(comparisons));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace optshare

int main(int argc, char** argv) { return optshare::Main(argc, argv); }
