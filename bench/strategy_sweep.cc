// Strategy-lab sweep: benchmarks the trace-shaped workload engine and
// pins the incentive outcomes of the attack battery. Three sections, one
// BENCH_strategy.json:
//
//   trace_gen  how fast GenerateTrace expands a mixed diurnal/flash/
//              Pareto scenario into tenants (tenants/s), plus the shape
//              statistics the engine promises (flash spike, heavy tail).
//   wire       the same trace serialized to its wire program
//              (TraceRequestLines) and replayed through a real
//              MarketplaceServer via HandleLine, in requests/s.
//   attacks    StrategyHarness gains for the attack battery against the
//              paper mechanism ("addon") and the exploitable naive
//              baseline ("naive_online"). Every draw is seeded, so the
//              gains are bit-deterministic and machine-independent — the
//              perf gate bounds them absolutely: a truthful mechanism
//              must keep gains ~0 while the naive baseline pays the
//              delay and free-ride attackers.
//
//   strategy_sweep [--quick] [--out PATH]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "service/marketplace_server.h"
#include "strategy/harness.h"
#include "strategy/player.h"
#include "strategy/trace.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The generation-throughput scenario: a diurnal Pareto-tailed steady
/// class plus a flash crowd, the shapes the engine exists to produce.
strategy::TraceConfig GenScenario(int steady, int crowd, int periods) {
  strategy::TraceConfig config;
  config.name = "sweep-gen";
  config.seed = 11;
  config.periods = periods;
  config.slots_per_period = 24;

  simdb::TableDef telemetry;
  telemetry.name = "telemetry";
  telemetry.columns = {{"device", simdb::ColumnType::kInt64, 5'000'000}};
  telemetry.row_count = 1'000'000'000;
  config.catalog.tables.push_back(std::move(telemetry));

  simdb::Workload workload;
  simdb::Workload::Entry entry;
  entry.frequency = 1.0;
  entry.query.table = "telemetry";
  entry.query.aggregate = true;
  entry.query.predicates = {{"device", 2e-7}};
  workload.entries.push_back(std::move(entry));

  strategy::TenantClass steady_class;
  steady_class.name = "steady";
  steady_class.count = steady;
  steady_class.workloads.push_back(workload);
  steady_class.executions.kind = strategy::ExecutionsSpec::Kind::kPareto;
  steady_class.executions.scale = 150.0;
  steady_class.executions.alpha = 1.3;
  steady_class.executions.cap = 50'000.0;
  steady_class.interval.kind = strategy::IntervalSpec::Kind::kSampled;
  steady_class.interval.arrival.process =
      strategy::ArrivalSpec::Process::kDiurnal;
  steady_class.interval.arrival.amplitude = 0.8;
  steady_class.interval.arrival.wavelength = 24.0;
  config.classes.push_back(std::move(steady_class));

  strategy::TenantClass crowd_class;
  crowd_class.name = "crowd";
  crowd_class.count = crowd;
  crowd_class.workloads.push_back(std::move(workload));
  crowd_class.executions.kind = strategy::ExecutionsSpec::Kind::kFixed;
  crowd_class.executions.fixed = 400.0;
  crowd_class.interval.kind = strategy::IntervalSpec::Kind::kSampled;
  crowd_class.interval.arrival.process = strategy::ArrivalSpec::Process::kFlash;
  crowd_class.interval.arrival.peak_slot = 8;
  crowd_class.interval.arrival.width = 1;
  crowd_class.interval.arrival.multiplier = 25.0;
  crowd_class.interval.duration.kind = strategy::DurationSpec::Kind::kUniform;
  crowd_class.interval.duration.lo = 2;
  crowd_class.interval.duration.hi = 6;
  config.classes.push_back(std::move(crowd_class));

  strategy::DepartureSpec exodus;
  exodus.period = 0;  // Every period.
  exodus.slot = 16;
  exodus.fraction = 0.3;
  exodus.class_name = "steady";
  config.departures.push_back(exodus);
  return config;
}

/// The incentive scenario: the telemetry preset over three periods (so
/// periods 2+ carry funded structures), one strategist modeled on the
/// background class.
strategy::StrategyOptions AttackScenario(const std::string& mechanism) {
  Result<JsonValue> preset = strategy::PresetConfigDocument("telemetry", 6, 12);
  Result<strategy::TraceConfig> config =
      strategy::TraceConfigFromJson(*preset);
  strategy::StrategyOptions options;
  options.background = std::move(*config);
  options.background.name = "sweep-attack";
  options.background.periods = 3;
  options.background.mechanism = mechanism;

  simdb::SimUser strategist;
  simdb::Workload::Entry entry;
  entry.frequency = 1.0;
  entry.query.table = "telemetry";
  entry.query.aggregate = true;
  entry.query.predicates = {{"device", 2e-7}};
  strategist.workload.entries.push_back(std::move(entry));
  strategist.executions_per_slot = 150.0;
  strategist.start = 1;
  strategist.end = options.background.slots_per_period;
  options.strategist = strategist;
  options.num_workers = 2;
  return options;
}

int Die(const Status& status) {
  std::cerr << "strategy_sweep failed: " << status.ToString() << "\n";
  return 1;
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  bool quick = false;
  std::string out_path = "BENCH_strategy.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::cerr << "usage: strategy_sweep [--quick] [--out PATH]\n";
      return 2;
    }
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("bench", JsonValue::Str("strategy_sweep"));
  doc.Set("quick", JsonValue::Bool(quick));

  // -- trace_gen: expansion throughput + shape stats ----------------------
  {
    const int steady = quick ? 400 : 4000;
    const int crowd = quick ? 100 : 1000;
    const int periods = quick ? 3 : 5;
    const int reps = quick ? 3 : 10;
    const strategy::TraceConfig config = GenScenario(steady, crowd, periods);
    strategy::Trace trace;
    const auto start = Clock::now();
    for (int r = 0; r < reps; ++r) {
      Result<strategy::Trace> generated = strategy::GenerateTrace(config);
      if (!generated.ok()) return Die(generated.status());
      trace = std::move(*generated);
    }
    const double ms = ElapsedMs(start);
    size_t tenants = 0;
    for (const strategy::TracePeriod& period : trace.periods) {
      tenants += period.tenants.size();
    }
    const double total = static_cast<double>(tenants * reps);

    // Shape: the flash-crowd spike vs. the average off-peak slot, and the
    // heavy tail of the steady class (both must hold on any machine).
    const strategy::TracePeriod& first = trace.periods.front();
    const std::vector<int> histogram =
        strategy::ArrivalHistogram(first, config.slots_per_period);
    double off_peak = 0.0;
    int off_slots = 0;
    for (int s = 1; s <= config.slots_per_period; ++s) {
      if (s < 7 || s > 9) {
        off_peak += histogram[static_cast<size_t>(s - 1)];
        ++off_slots;
      }
    }
    off_peak /= off_slots;
    const double peak = histogram[7];  // peak_slot 8.

    JsonValue gen = JsonValue::MakeObject();
    gen.Set("tenants_generated", JsonValue::Number(total));
    gen.Set("ms_total", JsonValue::Number(ms));
    gen.Set("tenants_per_sec",
            JsonValue::Number(ms > 0.0 ? total / (ms / 1000.0) : 0.0));
    gen.Set("flash_peak_vs_off_peak",
            JsonValue::Number(off_peak > 0.0 ? peak / off_peak : 0.0));
    gen.Set("steady_tail_ratio", JsonValue::Number(strategy::TailRatio(first)));
    doc.Set("trace_gen", std::move(gen));
  }

  // -- wire: the trace's request program through a real server ------------
  {
    const strategy::TraceConfig config =
        GenScenario(quick ? 150 : 600, quick ? 50 : 200, quick ? 2 : 4);
    Result<strategy::Trace> trace = strategy::GenerateTrace(config);
    if (!trace.ok()) return Die(trace.status());
    Result<std::vector<std::string>> lines =
        strategy::TraceRequestLines(config, *trace, "sweep-wire");
    if (!lines.ok()) return Die(lines.status());

    service::ServerOptions options;
    options.num_workers = 2;
    service::MarketplaceServer server(std::move(options));
    const auto start = Clock::now();
    for (const std::string& line : *lines) {
      const std::string response = server.HandleLine(line);
      if (response.find("\"ok\":true") == std::string::npos &&
          response.find("\"ok\": true") == std::string::npos) {
        std::cerr << "wire replay failed: " << response << "\n";
        return 1;
      }
    }
    const double ms = ElapsedMs(start);
    JsonValue wire = JsonValue::MakeObject();
    wire.Set("requests", JsonValue::Number(static_cast<double>(lines->size())));
    wire.Set("ms_total", JsonValue::Number(ms));
    wire.Set("requests_per_sec",
             JsonValue::Number(
                 ms > 0.0 ? static_cast<double>(lines->size()) / (ms / 1000.0)
                          : 0.0));
    doc.Set("wire", std::move(wire));
  }

  // -- attacks: deterministic incentive gains -----------------------------
  {
    const std::vector<std::string> mechanisms = {"addon", "naive_online"};
    std::vector<std::string> players = {"freeride", "delay:3"};
    if (!quick) {
      players.push_back("misreport:0.25");
      players.push_back("sybil:3");
    }
    JsonValue attacks = JsonValue::MakeArray();
    for (const std::string& mechanism : mechanisms) {
      Result<strategy::StrategyHarness> harness =
          strategy::StrategyHarness::Make(AttackScenario(mechanism));
      if (!harness.ok()) return Die(harness.status());
      for (const std::string& spec : players) {
        Result<std::unique_ptr<strategy::StrategyPlayer>> player =
            strategy::MakePlayer(spec);
        if (!player.ok()) return Die(player.status());
        Result<strategy::AttackOutcome> outcome = harness->Run(**player);
        if (!outcome.ok()) return Die(outcome.status());
        JsonValue row = strategy::ToJson(*outcome);
        // Gate selectors match on the bare player kind.
        row.Set("player", JsonValue::Str(spec));
        attacks.Append(std::move(row));
        std::cout << mechanism << " vs " << spec << ": gain "
                  << outcome->gain << " (truthful " << outcome->truthful_utility
                  << " -> strategic " << outcome->strategic_utility << ")\n";
      }
    }
    doc.Set("attacks", std::move(attacks));
  }

  std::ofstream out(out_path);
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
