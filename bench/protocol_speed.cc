// Wire-protocol hot-path harness: parse + serialize throughput of the
// single-pass scanner (service/fast_wire.h) against the JsonValue-tree
// path it shadows, per request kind, plus heap allocations per line from
// the operator-new counting hook (common/alloc_count.h). Emits
// BENCH_protocol.json.
//
//   protocol_speed [--quick] [--out PATH]
//
// Three views per request kind (submit with 1 and 32 tenants,
// advance_slot, report):
//   - parse: ParseRequestLine (fast path) vs ParseRequestLineTree
//   - serialize: AppendResponseLine into a reused scratch vs
//     ToJson(response).Dump()
//   - roundtrip: parse + serialize pipelined, fast vs tree — the number
//     the CI gate holds at >= 2x for submit (bench/baselines/gates.json).
#include "common/alloc_count.h"  // Must be first: defines operator new.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "service/fast_wire.h"
#include "service/protocol.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;
namespace protocol = service::protocol;
using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

struct Workload {
  std::string name;
  std::string line;      ///< The request the parsers race on.
  Response response;     ///< The reply the serializers race on.
};

simdb::SimUser BenchTenant(int i) {
  simdb::SimUser tenant;
  tenant.start = 1 + (i % 4);
  tenant.end = 12;
  tenant.executions_per_slot = 100.0 + i;
  simdb::Workload::Entry entry;
  entry.frequency = 1.5;
  entry.query.table = "telemetry";
  entry.query.aggregate = true;
  entry.query.predicates = {{"device_id", 1e-6}, {"metric", 0.03125}};
  tenant.workload.entries.push_back(entry);
  return tenant;
}

Workload SubmitWorkload(int tenants) {
  Workload w;
  w.name = "submit_" + std::to_string(tenants);
  Request request;
  request.op = RequestOp::kSubmit;
  request.tenancy = "acme";
  request.id = "bench";
  for (int i = 0; i < tenants; ++i) request.tenants.push_back(BenchTenant(i));
  w.line = protocol::ToJson(request).Dump();
  JsonValue ids = JsonValue::MakeArray();
  ids.Reserve(static_cast<size_t>(tenants));
  for (int i = 0; i < tenants; ++i) ids.Append(JsonValue::Number(i));
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("tenant_ids", std::move(ids));
  w.response = protocol::OkResponse("bench", std::move(payload));
  return w;
}

Workload AdvanceSlotWorkload() {
  Workload w;
  w.name = "advance_slot";
  w.line = R"({"v":1,"op":"advance_slot","tenancy":"acme","slots":1})";
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("slot", JsonValue::Number(5));
  payload.Set("period", JsonValue::Number(2));
  w.response = protocol::OkResponse("", std::move(payload));
  return w;
}

Workload ReportWorkload() {
  Workload w;
  w.name = "report";
  w.line = R"({"v":1,"op":"report","tenancy":"acme","id":"r1"})";
  // A report-shaped payload: per-tenant values and payments.
  JsonValue values = JsonValue::MakeArray();
  JsonValue payments = JsonValue::MakeArray();
  values.Reserve(16);
  payments.Reserve(16);
  for (int i = 0; i < 16; ++i) {
    values.Append(JsonValue::Number(137.5 + i));
    payments.Append(JsonValue::Number(12.0625 * i));
  }
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("period", JsonValue::Number(2));
  payload.Set("values", std::move(values));
  payload.Set("payments", std::move(payments));
  w.response = protocol::OkResponse("r1", std::move(payload));
  return w;
}

/// Best-of-3 wall time for `iters` calls of `fn`, in seconds.
template <typename Fn>
double MeasureSeconds(long long iters, Fn&& fn) {
  double best = 1e300;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto start = Clock::now();
    for (long long i = 0; i < iters; ++i) fn();
    const double s =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (s < best) best = s;
  }
  return best;
}

/// Allocations per call of `fn`, averaged over `iters` (after warm-up).
template <typename Fn>
double MeasureAllocs(long long iters, Fn&& fn) {
  if (!alloc_count::AllocationCountingAvailable()) return -1.0;
  for (int i = 0; i < 8; ++i) fn();  // Warm any lazily-grown capacity.
  const uint64_t before = alloc_count::ThreadAllocations();
  for (long long i = 0; i < iters; ++i) fn();
  const uint64_t after = alloc_count::ThreadAllocations();
  return static_cast<double>(after - before) / static_cast<double>(iters);
}

/// Picks an iteration count that makes one repeat of `fn` run for roughly
/// `target_seconds` (so quick mode stays quick and full mode averages out
/// scheduler noise).
template <typename Fn>
long long Calibrate(double target_seconds, Fn&& fn) {
  long long iters = 64;
  for (;;) {
    const auto start = Clock::now();
    for (long long i = 0; i < iters; ++i) fn();
    const double s =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (s >= target_seconds || iters >= (1LL << 26)) return iters;
    const double scale = target_seconds / (s > 1e-9 ? s : 1e-9);
    iters = static_cast<long long>(iters * (scale > 8.0 ? 8.0 : scale)) + 1;
  }
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  double target_seconds = 0.2;
  std::string out_path = "BENCH_protocol.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      target_seconds = 0.05;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::cerr << "usage: protocol_speed [--quick] [--out PATH]\n";
      return 2;
    }
  }

  std::vector<Workload> workloads;
  workloads.push_back(SubmitWorkload(1));
  workloads.push_back(SubmitWorkload(32));
  workloads.push_back(AdvanceSlotWorkload());
  workloads.push_back(ReportWorkload());

  JsonValue kinds = JsonValue::MakeArray();
  for (const Workload& w : workloads) {
    // The fast scanner must actually engage on every benchmarked line;
    // a silent fallback would "win" by benchmarking the tree twice.
    {
      Request probe;
      if (!protocol::TryFastParseRequestLine(w.line, &probe)) {
        std::cerr << w.name << ": fast parser fell back; bench is void\n";
        return 1;
      }
      const auto tree = protocol::ParseRequestLineTree(w.line);
      if (!tree.ok() ||
          protocol::ToJson(*tree).Dump() != protocol::ToJson(probe).Dump()) {
        std::cerr << w.name << ": fast/tree parse mismatch\n";
        return 1;
      }
    }

    const auto parse_fast = [&w] {
      const auto parsed = protocol::ParseRequestLine(w.line);
      if (!parsed.ok()) std::exit(1);
    };
    const auto parse_tree = [&w] {
      const auto parsed = protocol::ParseRequestLineTree(w.line);
      if (!parsed.ok()) std::exit(1);
    };
    std::string scratch;
    const auto serialize_append = [&w, &scratch] {
      scratch.clear();
      protocol::AppendResponseLine(w.response, &scratch);
    };
    const auto serialize_dump = [&w, &scratch] {
      scratch = protocol::ToJson(w.response).Dump();
    };
    const auto roundtrip_fast = [&parse_fast, &serialize_append] {
      parse_fast();
      serialize_append();
    };
    const auto roundtrip_tree = [&parse_tree, &serialize_dump] {
      parse_tree();
      serialize_dump();
    };

    const long long iters = Calibrate(target_seconds, roundtrip_fast);
    const double parse_fast_s = MeasureSeconds(iters, parse_fast);
    const double parse_tree_s = MeasureSeconds(iters, parse_tree);
    const double ser_append_s = MeasureSeconds(iters, serialize_append);
    const double ser_dump_s = MeasureSeconds(iters, serialize_dump);
    const double rt_fast_s = MeasureSeconds(iters, roundtrip_fast);
    const double rt_tree_s = MeasureSeconds(iters, roundtrip_tree);
    const double it = static_cast<double>(iters);
    const double line_mb = static_cast<double>(w.line.size()) / 1e6;

    JsonValue entry = JsonValue::MakeObject();
    entry.Set("kind", JsonValue::Str(w.name));
    entry.Set("request_bytes",
              JsonValue::Number(static_cast<double>(w.line.size())));
    entry.Set("iters", JsonValue::Number(it));
    entry.Set("parse_fast_lines_per_sec", JsonValue::Number(it / parse_fast_s));
    entry.Set("parse_tree_lines_per_sec", JsonValue::Number(it / parse_tree_s));
    entry.Set("parse_fast_mb_per_sec",
              JsonValue::Number(it * line_mb / parse_fast_s));
    entry.Set("parse_speedup_fast_vs_tree",
              JsonValue::Number(parse_tree_s / parse_fast_s));
    entry.Set("serialize_append_lines_per_sec",
              JsonValue::Number(it / ser_append_s));
    entry.Set("serialize_dump_lines_per_sec",
              JsonValue::Number(it / ser_dump_s));
    entry.Set("serialize_speedup_append_vs_dump",
              JsonValue::Number(ser_dump_s / ser_append_s));
    entry.Set("roundtrip_fast_lines_per_sec", JsonValue::Number(it / rt_fast_s));
    entry.Set("roundtrip_tree_lines_per_sec", JsonValue::Number(it / rt_tree_s));
    entry.Set("roundtrip_speedup_fast_vs_tree",
              JsonValue::Number(rt_tree_s / rt_fast_s));
    entry.Set("parse_fast_allocs_per_line",
              JsonValue::Number(MeasureAllocs(iters / 4 + 1, parse_fast)));
    entry.Set("parse_tree_allocs_per_line",
              JsonValue::Number(MeasureAllocs(iters / 4 + 1, parse_tree)));
    entry.Set("roundtrip_fast_allocs_per_line",
              JsonValue::Number(MeasureAllocs(iters / 4 + 1, roundtrip_fast)));
    entry.Set("roundtrip_tree_allocs_per_line",
              JsonValue::Number(MeasureAllocs(iters / 4 + 1, roundtrip_tree)));
    kinds.Append(std::move(entry));

    std::cout << w.name << ": fast " << (it / rt_fast_s)
              << " lines/s, tree " << (it / rt_tree_s) << " lines/s ("
              << (rt_tree_s / rt_fast_s) << "x)\n";
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("benchmark", JsonValue::Str("protocol_speed"));
  doc.Set("alloc_counting",
          JsonValue::Bool(alloc_count::AllocationCountingAvailable()));
  doc.Set("kinds", std::move(kinds));

  std::ofstream out(out_path);
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
