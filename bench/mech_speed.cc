// Mechanism speed harness: times the unified engine (core/mechanism.h)
// against the seed's dense-scan implementations (core/reference.h) and
// emits BENCH_mechanisms.json — ops/sec per mechanism per user count — so
// every later PR has a perf trajectory to compare against.
//
//   mech_speed [--quick] [--out PATH]
//
// --quick caps the user counts (CI-friendly); the default sweep goes to
// n = 100k users on the Shapley/AddOn hot path. No google-benchmark
// dependency: plain chrono, adaptive repetition counts, one JSON document.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/mechanism.h"
#include "core/reference.h"
#include "workload/scenario.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchRow {
  std::string mechanism;  // "shapley", "shapley_cascade", "addon", ...
  std::string variant;    // "engine" or "dense"
  int n = 0;              // users
  double ms_per_run = 0.0;
  double ops_per_sec = 0.0;  // user-slots (online) or users (offline) / sec
};

/// Times fn adaptively: one warm-up, then enough repetitions to cover
/// ~0.25s (capped), returning milliseconds per run.
template <typename Fn>
double TimeMs(Fn&& fn) {
  fn();  // warm-up
  auto once = [&] {
    const auto start = Clock::now();
    fn();
    const auto stop = Clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
  };
  const double first = once();
  int reps = 1;
  if (first < 250.0) {
    reps = std::min(50, std::max(1, static_cast<int>(250.0 / (first + 0.01))));
  }
  double total = first;
  for (int r = 1; r < reps; ++r) total += once();
  return total / reps;
}

std::vector<double> UniformBids(int n, Rng& rng) {
  std::vector<double> bids;
  bids.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) bids.push_back(rng.Uniform(0.0, 1.0));
  return bids;
}

/// b_k = C/(k + 0.5): one eviction per dense round — the quadratic worst
/// case the sorted prefix scan reduces to O(n log n).
std::vector<double> CascadeBids(int n, double cost) {
  std::vector<double> bids;
  bids.reserve(static_cast<size_t>(n));
  for (int k = 1; k <= n; ++k) bids.push_back(cost / (k + 0.5));
  return bids;
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_mechanisms.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::cerr << "usage: mech_speed [--quick] [--out PATH]\n";
      return 2;
    }
  }

  std::vector<BenchRow> rows;
  auto record = [&](std::string mechanism, std::string variant, int n,
                    double ms, double ops) {
    std::printf("%-18s %-6s n=%-8d %10.3f ms/run  %12.0f ops/s\n",
                mechanism.c_str(), variant.c_str(), n, ms, ops);
    std::fflush(stdout);
    rows.push_back({std::move(mechanism), std::move(variant), n, ms, ops});
  };

  // --- Shapley, uniform bids ----------------------------------------------
  for (int n : std::vector<int>{1000, 10000, quick ? 0 : 100000}) {
    if (n == 0) continue;
    Rng rng(1);
    const std::vector<double> bids = UniformBids(n, rng);
    const double cost = 0.3 * n;
    double ms = TimeMs([&] { RunShapley(cost, bids); });
    record("shapley", "engine", n, ms, n / ms * 1000.0);
    ms = TimeMs([&] { reference::RunShapleyDense(cost, bids); });
    record("shapley", "dense", n, ms, n / ms * 1000.0);
  }

  // --- Shapley, eviction-cascade bids -------------------------------------
  for (int n : std::vector<int>{1000, 10000, quick ? 0 : 30000}) {
    if (n == 0) continue;
    const double cost = 100.0;
    const std::vector<double> bids = CascadeBids(n, cost);
    double ms = TimeMs([&] { RunShapley(cost, bids); });
    record("shapley_cascade", "engine", n, ms, n / ms * 1000.0);
    ms = TimeMs([&] { reference::RunShapleyDense(cost, bids); });
    record("shapley_cascade", "dense", n, ms, n / ms * 1000.0);
  }

  // --- AddOn over a full period (long subscriptions) ----------------------
  for (int n : std::vector<int>{10000, quick ? 0 : 100000}) {
    if (n == 0) continue;
    AdditiveScenario scenario;
    scenario.num_users = n;
    scenario.num_slots = 50;
    scenario.duration = 25;
    Rng rng(2);
    const AdditiveOnlineGame game =
        MakeAdditiveGame(scenario, 0.1 * n, rng);
    const double user_slots =
        static_cast<double>(n) * scenario.num_slots;
    double ms = TimeMs([&] { engine::RunAddOnEngine(game); });
    record("addon", "engine", n, ms, user_slots / ms * 1000.0);
    ms = TimeMs([&] { reference::RunAddOnDense(game); });
    record("addon", "dense", n, ms, user_slots / ms * 1000.0);
  }

  // --- SubstOff ------------------------------------------------------------
  for (int n : std::vector<int>{2000, quick ? 0 : 20000}) {
    if (n == 0) continue;
    Rng rng(3);
    SubstOfflineGame game;
    const int opts = 16;
    for (int j = 0; j < opts; ++j) {
      game.costs.push_back(rng.Uniform(0.02, 0.1) * n);
    }
    for (int i = 0; i < n; ++i) {
      SubstOfflineUser user;
      user.value = rng.Uniform(0.01, 1.0);
      for (int s : rng.SampleWithoutReplacement(opts, 3)) {
        user.substitutes.push_back(s);
      }
      game.users.push_back(std::move(user));
    }
    double ms = TimeMs([&] { RunSubstOff(game); });
    record("substoff", "engine", n, ms, n / ms * 1000.0);
    ms = TimeMs([&] { reference::RunSubstOffDense(game); });
    record("substoff", "dense", n, ms, n / ms * 1000.0);
  }

  // --- SubstOn over a period ----------------------------------------------
  for (int n : std::vector<int>{1000, quick ? 0 : 5000}) {
    if (n == 0) continue;
    SubstScenario scenario;
    scenario.num_users = n;
    scenario.num_slots = 30;
    scenario.num_opts = 12;
    scenario.substitutes_per_user = 3;
    scenario.duration = 10;
    Rng rng(4);
    const SubstOnlineGame game = MakeSubstGame(scenario, 0.05 * n, rng);
    const double user_slots =
        static_cast<double>(n) * scenario.num_slots;
    double ms = TimeMs([&] { RunSubstOn(game); });
    record("subston", "engine", n, ms, user_slots / ms * 1000.0);
    ms = TimeMs([&] { reference::RunSubstOnDense(game); });
    record("subston", "dense", n, ms, user_slots / ms * 1000.0);
  }

  // --- Emit JSON -----------------------------------------------------------
  JsonValue doc = JsonValue::MakeObject();
  JsonValue benchmarks = JsonValue::MakeArray();
  for (const BenchRow& row : rows) {
    JsonValue b = JsonValue::MakeObject();
    b.Set("mechanism", JsonValue::Str(row.mechanism));
    b.Set("variant", JsonValue::Str(row.variant));
    b.Set("n", JsonValue::Number(row.n));
    b.Set("ms_per_run", JsonValue::Number(row.ms_per_run));
    b.Set("ops_per_sec", JsonValue::Number(row.ops_per_sec));
    benchmarks.Append(std::move(b));
  }
  doc.Set("benchmarks", std::move(benchmarks));

  JsonValue speedups = JsonValue::MakeObject();
  for (const BenchRow& row : rows) {
    if (row.variant != "engine") continue;
    for (const BenchRow& dense : rows) {
      if (dense.variant == "dense" && dense.mechanism == row.mechanism &&
          dense.n == row.n) {
        speedups.Set(row.mechanism + "_n" + std::to_string(row.n),
                     JsonValue::Number(dense.ms_per_run / row.ms_per_run));
      }
    }
  }
  doc.Set("speedups", std::move(speedups));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace optshare

int main(int argc, char** argv) { return optshare::Main(argc, argv); }
