// Ablation benches for the design decisions DESIGN.md §5 calls out.
//
// (1) Regret pricing: our default gives the baseline the *exact*
//     loss-minimizing price (residual + break-even candidates). The
//     residual-only pricer is the literal reading of §7.1. Quantifies how
//     much charity the default extends to the baseline.
// (2) Efficiency loss: AddOn's utility vs the hindsight welfare optimum,
//     the price the mechanisms pay for truthfulness + cost recovery
//     (Moulin-Shenker impossibility, paper §3).
#include <iostream>

#include "baseline/regret.h"
#include "baseline/vcg.h"
#include "common/table.h"
#include "core/accounting.h"
#include "core/add_on.h"
#include "exp/experiment.h"
#include "workload/scenario.h"

int main() {
  using namespace optshare;

  const std::vector<double> costs = exp::Fig2SmallCosts();
  const int trials = 1000;

  AdditiveScenario scenario;  // Fig. 2(a): 6 users, 12 slots, 1 slot each.

  TextTable pricing_table({"cost", "regret_optimal_u", "regret_residual_u",
                           "optimal_balance", "residual_balance"});
  TextTable efficiency_table(
      {"cost", "hindsight_optimum", "addon_utility", "efficiency_ratio",
       "regret_utility"});

  Rng root(42);
  for (double cost : costs) {
    Rng rng = root.Fork(static_cast<uint64_t>(cost * 1000));
    double opt_u = 0, res_u = 0, opt_b = 0, res_b = 0;
    double welfare = 0, addon_u = 0, regret_u = 0;
    for (int t = 0; t < trials; ++t) {
      const AdditiveOnlineGame game = MakeAdditiveGame(scenario, cost, rng);

      const RegretAdditiveResult optimal =
          RunRegretAdditive(game, RegretPricing::kOptimal);
      const RegretAdditiveResult residual =
          RunRegretAdditive(game, RegretPricing::kResidualsOnly);
      opt_u += optimal.TotalUtility();
      res_u += residual.TotalUtility();
      opt_b += optimal.CloudBalance();
      res_b += residual.CloudBalance();
      regret_u += optimal.TotalUtility();

      welfare += OptimalOnlineWelfare(game);
      const AddOnResult mech = RunAddOn(game);
      addon_u += AccountAddOn(game, mech).TotalUtility();
    }
    const double n = trials;
    pricing_table.AddNumericRow(
        {cost, opt_u / n, res_u / n, opt_b / n, res_b / n}, 4);
    efficiency_table.AddNumericRow(
        {cost, welfare / n, addon_u / n,
         welfare > 0 ? addon_u / welfare : 1.0, regret_u / n},
        4);
  }

  std::cout << "Ablation 1 — Regret price-candidate sets (Fig. 2(a) setup, "
            << trials << " trials/point)\n"
            << "Total utility is identical by construction of the trigger;\n"
            << "the candidate set moves money between users and the cloud.\n\n"
            << pricing_table.Render() << "\n";

  std::cout << "Ablation 2 — efficiency loss of truthful cost recovery\n"
            << "(hindsight optimum = implement at t=1 iff total value >= "
               "cost)\n\n"
            << efficiency_table.Render();
  return 0;
}
