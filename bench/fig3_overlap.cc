// Figure 3 (§7.4): how temporal overlap among users affects the AddOn vs
// Regret utility gap. (a) shrinks the horizon so single-slot bids overlap
// more; (b) spreads each bid over d contiguous slots.
//
// Optionally writes fig3{a,b}.csv into the directory given as argv[1].
#include <fstream>
#include <iostream>

#include "exp/figures.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace optshare;

  exp::Fig3Config config;
  const auto single = exp::RunFig3SingleSlot(config);
  const auto multi = exp::RunFig3MultiSlot(config);

  std::cout << "Figure 3 — Overlap in Usage (" << config.trials
            << " trials/point, averaged over the Fig. 2(a) cost sweep)\n\n";
  std::cout << "(a) Single-slot collaboration: gap vs number of slots\n"
            << exp::RenderFig3(single, "num_slots") << "\n";
  std::cout << "(b) Multi-slot collaboration: gap vs bid duration\n"
            << exp::RenderFig3(multi, "duration") << "\n";

  if (argc > 1) {
    const std::string dir = argv[1];
    for (const auto& [name, points] :
         {std::pair{std::string("fig3a.csv"), single},
          std::pair{std::string("fig3b.csv"), multi}}) {
      const std::string path = dir + "/" + name;
      std::ofstream out(path);
      Status st = exp::WriteFig3Csv(&out, points);
      if (!st.ok()) {
        std::cerr << "CSV export failed: " << st.ToString() << "\n";
        return 1;
      }
      std::cout << "wrote " << path << "\n";
    }
  }
  return 0;
}
