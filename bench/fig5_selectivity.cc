// Figure 5 (§7.6): selectivity of substitutes. Users pick 3 substitutes out
// of 4 (low selectivity) or 12 (high selectivity) optimizations; SubstOn vs
// Regret utility over the cost sweep.
//
// Optionally writes fig5{a,b}.csv into the directory given as argv[1].
#include <fstream>
#include <iostream>

#include "exp/figures.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace optshare;

  exp::Fig5Config config;
  const exp::Fig5Series series = exp::RunFig5(config);

  std::cout << "Figure 5 — Selectivity of Substitutes (" << config.trials
            << " trials/point)\n\n";
  std::cout << "(a) Low selectivity: 3 substitutes of 4 optimizations\n"
            << exp::RenderUtilityCurve(series.low_selectivity, "SubstOn")
            << "\n";
  std::cout << "(b) High selectivity: 3 substitutes of 12 optimizations\n"
            << exp::RenderUtilityCurve(series.high_selectivity, "SubstOn")
            << "\n";

  if (argc > 1) {
    const std::string dir = argv[1];
    for (const auto& [name, points] :
         {std::pair{std::string("fig5a.csv"), series.low_selectivity},
          std::pair{std::string("fig5b.csv"), series.high_selectivity}}) {
      const std::string path = dir + "/" + name;
      std::ofstream out(path);
      Status st = exp::WriteUtilityCurveCsv(&out, points);
      if (!st.ok()) {
        std::cerr << "CSV export failed: " << st.ToString() << "\n";
        return 1;
      }
      std::cout << "wrote " << path << "\n";
    }
  }
  return 0;
}
