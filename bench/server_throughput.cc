// Marketplace-server throughput harness: drives many independent tenancies
// through the wire-protocol front end (service/marketplace_server.h) and
// measures aggregate request and slot-pricing throughput as the worker
// count sweeps 1 -> 8. Emits BENCH_server.json.
//
//   server_throughput [--quick] [--out PATH] [--tenancies N] [--periods P]
//
// Each tenancy runs full billing periods (open_period, submit, advance_slot
// x slots, close_period) against its own telemetry catalog; tenancies hash
// onto worker shards, so the sweep shows how far the sharded front end
// scales on the hardware it runs on (speedups flatten at the machine's core
// count — the JSON records hardware_threads for that reason). --quick
// shrinks the tenancy count for CI smoke; the sweep stays 1 -> 8.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "service/marketplace_server.h"
#include "simdb/scenarios.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;
using service::MarketplaceServer;
using service::ServerOptions;
using service::protocol::Request;
using service::protocol::RequestOp;
using service::protocol::Response;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct RunConfig {
  int tenancies = 16;
  int periods = 3;
  // Enough tenants that one period's advisor + slot pricing (~ms) dwarfs
  // the per-request dispatch overhead (~µs); the scaling signal is about
  // pricing work, not queue hops.
  int tenants = 1000;
  int slots = 12;
};

/// Seeded per-tenancy tenant jitter (gentler scaling than the test
/// suites') so the tenancies are independent workloads, not sixteen
/// copies of one.
std::vector<simdb::SimUser> JitterTenants(std::vector<simdb::SimUser> tenants,
                                          int slots, uint64_t seed) {
  Rng rng(seed);
  return simdb::JitterTenants(std::move(tenants), slots, rng, 0.5, 2.0);
}

struct SweepPoint {
  int workers = 0;
  double ms_total = 0.0;
  long long requests = 0;
  long long slots_priced = 0;
};

/// One full run: every tenancy executes `periods` complete billing periods
/// through the protocol front end with `workers` worker threads.
SweepPoint RunSweepPoint(const RunConfig& config, int workers) {
  auto scenario = simdb::TelemetryScenario(config.tenants, config.slots);
  if (!scenario.ok()) {
    std::cerr << "scenario failed: " << scenario.status().ToString() << "\n";
    std::exit(1);
  }

  MarketplaceServer server(ServerOptions{workers});
  service::ServiceConfig service_config;
  service_config.slots_per_period = config.slots;

  std::vector<std::string> names;
  for (int t = 0; t < config.tenancies; ++t) {
    names.push_back("tenancy-" + std::to_string(t));
    // Catalogs are created before the clock starts: the bench measures the
    // serving path, not scenario construction.
    simdb::Catalog catalog = scenario->catalog;
    Status st = server.CreateTenancy(names.back(), std::move(catalog),
                                     service_config);
    if (!st.ok()) {
      std::cerr << "create failed: " << st.ToString() << "\n";
      std::exit(1);
    }
  }

  SweepPoint point;
  point.workers = workers;
  std::vector<std::future<Response>> closes;
  const auto start = Clock::now();
  // The full request program is enqueued up front; per-tenancy FIFO keeps
  // period boundaries ordered while distinct tenancies run concurrently.
  for (int t = 0; t < config.tenancies; ++t) {
    const std::vector<simdb::SimUser> tenants = JitterTenants(
        scenario->tenants, config.slots, 1000 + static_cast<uint64_t>(t));
    for (int p = 0; p < config.periods; ++p) {
      Request open;
      open.op = RequestOp::kOpenPeriod;
      open.tenancy = names[static_cast<size_t>(t)];
      server.Dispatch(std::move(open));
      Request submit;
      submit.op = RequestOp::kSubmit;
      submit.tenancy = names[static_cast<size_t>(t)];
      submit.tenants = tenants;
      server.Dispatch(std::move(submit));
      for (int s = 0; s < config.slots; ++s) {
        Request advance;
        advance.op = RequestOp::kAdvanceSlot;
        advance.tenancy = names[static_cast<size_t>(t)];
        server.Dispatch(std::move(advance));
      }
      Request close;
      close.op = RequestOp::kClosePeriod;
      close.tenancy = names[static_cast<size_t>(t)];
      closes.push_back(server.Dispatch(std::move(close)));
      point.requests += 3 + config.slots;
      point.slots_priced += config.slots;
    }
  }
  for (auto& close : closes) {
    const Response response = close.get();
    if (!response.ok()) {
      std::cerr << "close failed: " << response.status.ToString() << "\n";
      std::exit(1);
    }
  }
  point.ms_total = ElapsedMs(start);
  return point;
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  RunConfig config;
  std::string out_path = "BENCH_server.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      config.tenancies = 6;
      config.periods = 1;
      config.tenants = 200;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else if (arg == "--tenancies" && a + 1 < argc) {
      config.tenancies = std::stoi(argv[++a]);
    } else if (arg == "--periods" && a + 1 < argc) {
      config.periods = std::stoi(argv[++a]);
    } else if (arg == "--tenants" && a + 1 < argc) {
      config.tenants = std::stoi(argv[++a]);
    } else {
      std::cerr << "usage: server_throughput [--quick] [--out PATH] "
                   "[--tenancies N] [--periods P] [--tenants N]\n";
      return 2;
    }
  }

  // Warm-up: the first period pays one-time costs (allocator, cold advisor
  // paths) that would otherwise be billed to the workers=1 point.
  {
    RunConfig warmup = config;
    warmup.tenancies = 1;
    warmup.periods = 1;
    (void)RunSweepPoint(warmup, 1);
  }

  JsonValue sweep = JsonValue::MakeArray();
  double baseline_ms = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    const SweepPoint point = RunSweepPoint(config, workers);
    if (workers == 1) baseline_ms = point.ms_total;
    const double seconds = point.ms_total / 1000.0;
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("workers", JsonValue::Number(point.workers));
    entry.Set("ms_total", JsonValue::Number(point.ms_total));
    entry.Set("requests", JsonValue::Number(
                              static_cast<double>(point.requests)));
    entry.Set("requests_per_sec",
              JsonValue::Number(static_cast<double>(point.requests) /
                                seconds));
    entry.Set("slots_priced",
              JsonValue::Number(static_cast<double>(point.slots_priced)));
    entry.Set("slots_per_sec",
              JsonValue::Number(static_cast<double>(point.slots_priced) /
                                seconds));
    entry.Set("speedup_vs_1",
              JsonValue::Number(point.ms_total > 0.0
                                    ? baseline_ms / point.ms_total
                                    : 0.0));
    sweep.Append(std::move(entry));
    std::cout << "workers " << point.workers << ": " << point.ms_total
              << " ms, "
              << static_cast<double>(point.requests) / seconds
              << " req/s, "
              << static_cast<double>(point.slots_priced) / seconds
              << " slots/s\n";
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("benchmark", JsonValue::Str("server_throughput"));
  doc.Set("tenancies", JsonValue::Number(config.tenancies));
  doc.Set("periods_per_tenancy", JsonValue::Number(config.periods));
  doc.Set("tenants_per_tenancy", JsonValue::Number(config.tenants));
  doc.Set("slots_per_period", JsonValue::Number(config.slots));
  doc.Set("mechanism", JsonValue::Str("addon"));
  doc.Set("hardware_threads",
          JsonValue::Number(std::thread::hardware_concurrency()));
  doc.Set("sweep", std::move(sweep));

  std::ofstream out(out_path);
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
