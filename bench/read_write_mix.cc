// HTAP read/write mix harness: read latency through the snapshot-serving
// read path while the write FIFO is busy — the number that proves reads
// never queue behind writes. Emits BENCH_readmix.json.
//
//   read_write_mix [--quick] [--out PATH]
//
// For each read:write ratio (99:1, 9:1, 1:1) on 1 and 8 workers:
//   - idle:  read p50/p99 with no writes in flight (the floor)
//   - mix:   reads interleaved with un-awaited writes at the ratio;
//     read & write throughput over the phase
//   - deep:  read p99 while a large write burst is still draining — the
//     gated `read_p99_vs_idle` ratio (bench/baselines/gates.json), which
//     stays O(1) because reads are answered from the published ReadView on
//     the caller's thread instead of the tenancy's shard.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "service/marketplace_server.h"
#include "service/protocol.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;
namespace protocol = service::protocol;
using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

struct MixConfig {
  int reads = 99;   ///< Reads per cycle.
  int writes = 1;   ///< Un-awaited writes per cycle.
  int workers = 1;
};

simdb::SimUser BenchTenant(int i) {
  simdb::SimUser tenant;
  tenant.start = 1;
  tenant.end = 1 << 20;
  tenant.executions_per_slot = 100.0 + i;
  simdb::Workload::Entry entry;
  entry.frequency = 1.5;
  entry.query.table = "telemetry";
  entry.query.aggregate = true;
  entry.query.predicates = {{"device", 1e-6}, {"metric", 0.03125}};
  tenant.workload.entries.push_back(entry);
  return tenant;
}

Request ReadRequest() {
  Request request;
  request.op = RequestOp::kReport;
  request.tenancy = "acme";
  return request;
}

Request WriteRequest() {
  Request request;
  request.op = RequestOp::kAdvanceSlot;
  request.tenancy = "acme";
  request.slots = 1;
  return request;
}

double PercentileUs(std::vector<double>& latencies_us, double pct) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const double rank = pct / 100.0 *
                      static_cast<double>(latencies_us.size() - 1);
  return latencies_us[static_cast<size_t>(rank)];
}

/// One timed read through the server; aborts the bench on an error
/// response (a failing read would otherwise "win" by being cheap).
double TimedReadUs(service::MarketplaceServer& server,
                   const Request& request) {
  const auto start = Clock::now();
  const Response response = server.Handle(request);
  const double us =
      std::chrono::duration<double, std::micro>(Clock::now() - start).count();
  if (!response.ok()) {
    std::cerr << "read failed: " << response.status.ToString() << "\n";
    std::exit(1);
  }
  return us;
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  long long reads_per_phase = 4000;
  long long deep_burst = 5000;
  std::string out_path = "BENCH_readmix.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      reads_per_phase = 600;
      deep_burst = 1200;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::cerr << "usage: read_write_mix [--quick] [--out PATH]\n";
      return 2;
    }
  }

  std::vector<MixConfig> configs;
  for (int workers : {1, 8}) {
    configs.push_back({99, 1, workers});
    configs.push_back({9, 1, workers});
    configs.push_back({1, 1, workers});
  }

  JsonValue mixes = JsonValue::MakeArray();
  for (const MixConfig& config : configs) {
    service::ServerOptions options;
    options.num_workers = config.workers;
    service::MarketplaceServer server(options);

    // One tenancy with an open period wide enough that every benchmarked
    // write is a plain advance_slot (no close/reopen churn in the timings).
    {
      Request open;
      open.op = RequestOp::kOpenPeriod;
      open.tenancy = "acme";
      protocol::CatalogSpec spec;
      spec.scenario = "telemetry";
      open.catalog = spec;
      service::ServiceConfig service_config;
      service_config.slots_per_period = 1 << 20;
      open.config = service_config;
      Response response = server.Handle(std::move(open));
      if (!response.ok()) {
        std::cerr << "open_period failed: " << response.status.ToString()
                  << "\n";
        return 1;
      }
      Request submit;
      submit.op = RequestOp::kSubmit;
      submit.tenancy = "acme";
      for (int i = 0; i < 4; ++i) submit.tenants.push_back(BenchTenant(i));
      response = server.Handle(std::move(submit));
      if (!response.ok()) {
        std::cerr << "submit failed: " << response.status.ToString() << "\n";
        return 1;
      }
    }

    const Request read = ReadRequest();
    const Request write = WriteRequest();
    std::atomic<long long> writes_pending{0};
    std::atomic<long long> writes_done{0};
    const auto post_write = [&server, &write, &writes_pending, &writes_done] {
      writes_pending.fetch_add(1, std::memory_order_relaxed);
      server.DispatchCallback(write,
                              [&writes_pending, &writes_done](Response r) {
                                (void)r;
                                writes_pending.fetch_sub(
                                    1, std::memory_order_relaxed);
                                writes_done.fetch_add(
                                    1, std::memory_order_relaxed);
                              });
    };

    // Idle floor.
    std::vector<double> idle_us;
    idle_us.reserve(reads_per_phase);
    for (long long i = 0; i < reads_per_phase; ++i) {
      idle_us.push_back(TimedReadUs(server, read));
    }
    const double idle_p99 = PercentileUs(idle_us, 99.0);

    // Mixed phase at the configured ratio.
    std::vector<double> mix_us;
    mix_us.reserve(reads_per_phase);
    const long long writes_before = writes_done.load();
    const auto mix_start = Clock::now();
    while (static_cast<long long>(mix_us.size()) < reads_per_phase) {
      for (int w = 0; w < config.writes; ++w) post_write();
      for (int r = 0; r < config.reads &&
                      static_cast<long long>(mix_us.size()) < reads_per_phase;
           ++r) {
        mix_us.push_back(TimedReadUs(server, read));
      }
    }
    const double mix_elapsed =
        std::chrono::duration<double>(Clock::now() - mix_start).count();
    server.Drain();
    const double mix_total =
        std::chrono::duration<double>(Clock::now() - mix_start).count();
    const long long mix_writes = writes_done.load() - writes_before;

    // Deep-queue phase: reads while a write burst is provably still
    // draining — every latency sample below is taken with at least half
    // the burst queued behind the tenancy's shard.
    for (long long i = 0; i < deep_burst; ++i) post_write();
    std::vector<double> deep_us;
    deep_us.reserve(reads_per_phase);
    while (writes_pending.load(std::memory_order_relaxed) > deep_burst / 2 &&
           static_cast<long long>(deep_us.size()) < reads_per_phase) {
      deep_us.push_back(TimedReadUs(server, read));
    }
    server.Drain();
    const double deep_p99 =
        deep_us.empty() ? idle_p99 : PercentileUs(deep_us, 99.0);

    JsonValue entry = JsonValue::MakeObject();
    entry.Set("reads", JsonValue::Number(config.reads));
    entry.Set("writes", JsonValue::Number(config.writes));
    entry.Set("workers", JsonValue::Number(config.workers));
    entry.Set("read_p50_us", JsonValue::Number(PercentileUs(mix_us, 50.0)));
    entry.Set("read_p99_us", JsonValue::Number(PercentileUs(mix_us, 99.0)));
    entry.Set("read_p99_idle_us", JsonValue::Number(idle_p99));
    entry.Set("read_p99_deep_us", JsonValue::Number(deep_p99));
    entry.Set("read_p99_vs_idle",
              JsonValue::Number(idle_p99 > 0.0 ? deep_p99 / idle_p99 : 1.0));
    entry.Set("deep_reads_sampled",
              JsonValue::Number(static_cast<double>(deep_us.size())));
    entry.Set("reads_per_sec",
              JsonValue::Number(static_cast<double>(mix_us.size()) /
                                mix_elapsed));
    entry.Set("writes_per_sec",
              JsonValue::Number(mix_total > 0.0
                                    ? static_cast<double>(mix_writes) /
                                          mix_total
                                    : 0.0));
    mixes.Append(std::move(entry));

    std::cout << "reads=" << config.reads << " writes=" << config.writes
              << " workers=" << config.workers << ": read p99 "
              << PercentileUs(mix_us, 99.0) << "us (idle " << idle_p99
              << "us, deep " << deep_p99 << "us, ratio "
              << (idle_p99 > 0.0 ? deep_p99 / idle_p99 : 1.0) << ")\n";
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("benchmark", JsonValue::Str("read_write_mix"));
  doc.Set("mixes", std::move(mixes));

  std::ofstream out(out_path);
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
