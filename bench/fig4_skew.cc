// Figure 4 (§7.5): effect of arrival-time skew. Six users arrive uniformly,
// early (Exp mean 1.28) or late (12 - Exp mean 1.2); utilities are shown as
// ratios to the Early-AddOn utility at the same cost, the paper's y axis.
//
// Optionally writes fig4.csv into the directory given as argv[1].
#include <fstream>
#include <iostream>

#include "exp/figures.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace optshare;

  exp::Fig4Config config;
  const auto points = exp::RunFig4(config);

  std::cout << "Figure 4 — Effect of Skew in Time on Utilities ("
            << config.trials << " trials/point; ratios vs Early-AddOn)\n\n"
            << exp::RenderFig4(points);

  if (argc > 1) {
    const std::string path = std::string(argv[1]) + "/fig4.csv";
    std::ofstream out(path);
    Status st = exp::WriteFig4Csv(&out, points);
    if (!st.ok()) {
      std::cerr << "CSV export failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}
