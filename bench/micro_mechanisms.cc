// Micro-benchmarks (google-benchmark): scaling of the mechanisms in users,
// slots and optimizations, of the Regret baseline, and of the astronomy
// substrate (FoF halo finding, merger-tree queries). Not part of the paper;
// documents the computational footprint of the library.
//
// The engine-vs-dense pairs (BM_Shapley/BM_ShapleyDense, BM_AddOn/
// BM_AddOnDense) track the unified-engine speedup; bench/mech_speed.cc is
// the canonical harness for that comparison and emits
// BENCH_mechanisms.json.
#include <benchmark/benchmark.h>

#include "astro/astro_workload.h"
#include "baseline/regret.h"
#include "core/add_on.h"
#include "core/reference.h"
#include "core/shapley.h"
#include "core/subst_on.h"
#include "core/serialization.h"
#include "exp/experiment.h"
#include "simdb/executor.h"
#include "workload/scenario.h"

namespace optshare {
namespace {

void BM_Shapley(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> bids;
  for (int i = 0; i < m; ++i) bids.push_back(rng.Uniform(0.0, 1.0));
  const double cost = 0.3 * m;  // Keeps roughly half the users priced out.
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunShapley(cost, bids));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_Shapley)->Arg(8)->Arg(64)->Arg(512)->Arg(4096)->Arg(100000);

void BM_ShapleyDense(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> bids;
  for (int i = 0; i < m; ++i) bids.push_back(rng.Uniform(0.0, 1.0));
  const double cost = 0.3 * m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::RunShapleyDense(cost, bids));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ShapleyDense)->Arg(4096)->Arg(100000);

void BM_AddOn(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int z = static_cast<int>(state.range(1));
  Rng rng(2);
  AdditiveScenario scenario;
  scenario.num_users = m;
  scenario.num_slots = z;
  scenario.duration = std::max(1, z / 4);
  AdditiveOnlineGame game = MakeAdditiveGame(scenario, 0.2 * m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAddOn(game));
  }
  state.SetItemsProcessed(state.iterations() * m * z);
}
BENCHMARK(BM_AddOn)->Args({6, 12})->Args({24, 12})->Args({96, 12})
    ->Args({24, 96})->Args({100000, 50});

void BM_AddOnDense(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int z = static_cast<int>(state.range(1));
  Rng rng(2);
  AdditiveScenario scenario;
  scenario.num_users = m;
  scenario.num_slots = z;
  scenario.duration = std::max(1, z / 4);
  AdditiveOnlineGame game = MakeAdditiveGame(scenario, 0.2 * m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::RunAddOnDense(game));
  }
  state.SetItemsProcessed(state.iterations() * m * z);
}
BENCHMARK(BM_AddOnDense)->Args({96, 12})->Args({100000, 50});

void BM_SubstOn(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(3);
  SubstScenario scenario;
  scenario.num_users = m;
  scenario.num_slots = 12;
  scenario.num_opts = n;
  scenario.substitutes_per_user = std::max(1, n / 4);
  SubstOnlineGame game = MakeSubstGame(scenario, 0.05 * m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSubstOn(game));
  }
  state.SetItemsProcessed(state.iterations() * m * n);
}
BENCHMARK(BM_SubstOn)->Args({6, 12})->Args({24, 12})->Args({24, 48})
    ->Args({96, 12});

void BM_RegretAdditive(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(4);
  AdditiveScenario scenario;
  scenario.num_users = m;
  scenario.num_slots = 12;
  AdditiveOnlineGame game = MakeAdditiveGame(scenario, 0.1 * m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunRegretAdditive(game));
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_RegretAdditive)->Arg(6)->Arg(24)->Arg(96);

void BM_FindHalos(benchmark::State& state) {
  astro::UniverseParams params;
  params.num_snapshots = 1;
  params.num_halos = static_cast<int>(state.range(0));
  params.particles_per_halo = 64;
  astro::UniverseSimulator sim(params);
  const auto snapshots = sim.Run();
  for (auto _ : state) {
    auto catalog = astro::FindHalos(snapshots[0], params.box_size);
    benchmark::DoNotOptimize(catalog);
  }
  state.SetItemsProcessed(state.iterations() * params.num_halos * 64);
}
BENCHMARK(BM_FindHalos)->Arg(8)->Arg(32)->Arg(128);

void BM_MergerTreeChain(benchmark::State& state) {
  astro::UniverseParams params;
  params.num_snapshots = 27;
  params.num_halos = 12;
  params.particles_per_halo = 32;
  astro::UniverseSimulator sim(params);
  const auto snapshots = sim.Run();
  std::vector<astro::HaloCatalog> catalogs;
  for (const auto& s : snapshots) {
    catalogs.push_back(*astro::FindHalos(s, params.box_size));
  }
  astro::MergerTreeEngine engine(&snapshots, &catalogs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.TraceChain(0, 1));
  }
}
BENCHMARK(BM_MergerTreeChain);

void BM_JsonRoundTrip(benchmark::State& state) {
  // Serialize + parse a mid-sized online game document.
  AdditiveScenario scenario;
  scenario.num_users = static_cast<int>(state.range(0));
  scenario.num_slots = 12;
  scenario.duration = 4;
  Rng rng(5);
  AdditiveOnlineGame game = MakeAdditiveGame(scenario, 1.0, rng);
  for (auto _ : state) {
    const std::string text = ToJson(game).Dump();
    auto parsed = JsonValue::Parse(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_JsonRoundTrip)->Arg(6)->Arg(96);

void BM_ExecutorSeqScan(benchmark::State& state) {
  simdb::TableDef def;
  def.name = "t";
  def.columns = {{"a", simdb::ColumnType::kInt64, 1000},
                 {"b", simdb::ColumnType::kInt64, 16}};
  def.row_count = static_cast<uint64_t>(state.range(0));
  Rng rng(6);
  auto table = *simdb::StoredTable::Generate(def, {}, rng);
  simdb::ExecQuery q;
  q.predicates = {{"a", 7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(simdb::ExecuteSeqScan(table, q));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecutorSeqScan)->Arg(10000)->Arg(100000);

void BM_ExecutorIndexScan(benchmark::State& state) {
  simdb::TableDef def;
  def.name = "t";
  def.columns = {{"a", simdb::ColumnType::kInt64, 1000},
                 {"b", simdb::ColumnType::kInt64, 16}};
  def.row_count = static_cast<uint64_t>(state.range(0));
  Rng rng(7);
  auto table = *simdb::StoredTable::Generate(def, {}, rng);
  auto index = *simdb::HashIndex::Build(table, "a");
  simdb::ExecQuery q;
  q.predicates = {{"a", 7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(simdb::ExecuteIndexScan(table, index, q));
  }
}
BENCHMARK(BM_ExecutorIndexScan)->Arg(10000)->Arg(100000);

void BM_AdditiveComparisonPoint(benchmark::State& state) {
  // One cost point of the Figure 2(a) sweep at 100 trials.
  AdditiveScenario scenario;
  for (auto _ : state) {
    auto points = exp::RunAdditiveComparison(scenario, {0.75}, 100, 7);
    benchmark::DoNotOptimize(points);
  }
}
BENCHMARK(BM_AdditiveComparisonPoint);

}  // namespace
}  // namespace optshare

BENCHMARK_MAIN();
