// Cluster throughput harness: drives the multi-node pricing cluster
// (src/cluster/) end to end — N ClusterNodes with journal-streaming
// replication, fronted by a ClusterRouter over localhost TCP — with one
// client per tenancy running full billing periods through the router, and
// measures aggregate request throughput as tenancies sweep 1 -> 8 for each
// node count. Emits BENCH_cluster.json.
//
//   cluster_speed [--quick] [--out PATH] [--periods P] [--tenants N]
//
// The 1-node column is the routing-overhead floor (every request pays one
// extra hop, no replication); the 3-node column adds consistent-hash
// spreading plus a synchronous replica stream per journal write — the
// interesting signal is how much of the fan-out win survives that cost.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node.h"
#include "cluster/placement.h"
#include "cluster/router.h"
#include "common/json.h"
#include "common/rng.h"
#include "service/net_client.h"
#include "simdb/scenarios.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;
using cluster::ClusterNode;
using cluster::ClusterNodeOptions;
using cluster::ClusterRouter;
using cluster::NodeInfo;
using cluster::PlacementMap;
using cluster::RouterOptions;
using cluster::RouterServer;
using service::NetClient;
using service::protocol::Request;
using service::protocol::RequestOp;

struct RunConfig {
  int periods = 2;
  int tenants = 300;
  int slots = 12;
  int workers = 4;  ///< Per node.
};

struct SweepPoint {
  int nodes = 0;
  int tenancies = 0;
  double ms_total = 0.0;
  long long requests = 0;
};

/// A running cluster: N nodes on ephemeral ports + the router front end.
struct Cluster {
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::unique_ptr<ClusterRouter> router;
  std::unique_ptr<RouterServer> front;

  ~Cluster() {
    if (front != nullptr) front->Stop();
    for (auto& node : nodes) node->Stop();
  }
};

/// Boots `num_nodes` in-process nodes on ephemeral ports. Two-phase
/// placement: the nodes start with a provisional map (ports unknown), then
/// install the post-bind map — the same path a live cluster_update takes.
std::unique_ptr<Cluster> StartCluster(int num_nodes, int workers) {
  std::vector<NodeInfo> entries;
  for (int n = 0; n < num_nodes; ++n) {
    entries.push_back({"node-" + std::to_string(n), "127.0.0.1", 0, false});
  }
  Result<PlacementMap> provisional = PlacementMap::Create(entries);
  if (!provisional.ok()) {
    std::cerr << "placement failed: " << provisional.status().ToString()
              << "\n";
    std::exit(1);
  }
  auto cluster = std::make_unique<Cluster>();
  for (int n = 0; n < num_nodes; ++n) {
    ClusterNodeOptions options;
    options.node_id = entries[static_cast<size_t>(n)].id;
    options.placement = *provisional;
    options.port = 0;
    options.num_workers = workers;
    options.connect.timeout_ms = 1000;
    cluster->nodes.push_back(std::make_unique<ClusterNode>(options));
    Status started = cluster->nodes.back()->Start();
    if (!started.ok()) {
      std::cerr << "node start failed: " << started.ToString() << "\n";
      std::exit(1);
    }
    entries[static_cast<size_t>(n)].port = cluster->nodes.back()->port();
  }
  Result<PlacementMap> bound = PlacementMap::Create(entries);
  if (!bound.ok()) {
    std::cerr << "placement failed: " << bound.status().ToString() << "\n";
    std::exit(1);
  }
  bound->SetVersion(provisional->version() + 1);
  for (auto& node : cluster->nodes) {
    node->replication()->UpdatePlacement(*bound);
  }
  RouterOptions router_options;
  router_options.placement = *bound;
  cluster->router = std::make_unique<ClusterRouter>(router_options);
  cluster->front = std::make_unique<RouterServer>(cluster->router.get());
  Status started = cluster->front->Start();
  if (!started.ok()) {
    std::cerr << "router start failed: " << started.ToString() << "\n";
    std::exit(1);
  }
  return cluster;
}

/// One client's whole program: `periods` full billing periods for its own
/// tenancy, every request a blocking round trip through the router.
long long RunClient(uint16_t router_port, const std::string& tenancy,
                    const simdb::Scenario& scenario, const RunConfig& config,
                    uint64_t seed) {
  Result<NetClient> client = NetClient::Connect("127.0.0.1", router_port);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    std::exit(1);
  }
  Rng rng(seed);
  const std::vector<simdb::SimUser> tenants =
      simdb::JitterTenants(scenario.tenants, config.slots, rng, 0.5, 2.0);
  long long requests = 0;
  const auto call = [&](Request request) {
    auto response = client->Call(request);
    if (!response.ok() || !response->ok()) {
      std::cerr << "request failed: "
                << (response.ok() ? response->status.ToString()
                                  : response.status().ToString())
                << "\n";
      std::exit(1);
    }
    ++requests;
  };
  for (int p = 0; p < config.periods; ++p) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = tenancy;
    if (p == 0) {
      service::protocol::CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = config.tenants;
      catalog.scenario_slots = config.slots;
      open.catalog = catalog;
      service::ServiceConfig service_config;
      service_config.slots_per_period = config.slots;
      open.config = service_config;
    }
    call(std::move(open));
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = tenancy;
    submit.tenants = tenants;
    call(std::move(submit));
    for (int s = 0; s < config.slots; ++s) {
      Request advance;
      advance.op = RequestOp::kAdvanceSlot;
      advance.tenancy = tenancy;
      call(std::move(advance));
    }
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = tenancy;
    call(std::move(close));
  }
  return requests;
}

SweepPoint RunSweepPoint(const RunConfig& config, int nodes, int tenancies) {
  auto scenario = simdb::TelemetryScenario(config.tenants, config.slots);
  if (!scenario.ok()) {
    std::cerr << "scenario failed: " << scenario.status().ToString() << "\n";
    std::exit(1);
  }
  std::unique_ptr<Cluster> cluster = StartCluster(nodes, config.workers);

  SweepPoint point;
  point.nodes = nodes;
  point.tenancies = tenancies;
  std::vector<long long> counts(static_cast<size_t>(tenancies), 0);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int t = 0; t < tenancies; ++t) {
    threads.emplace_back([&, t] {
      counts[static_cast<size_t>(t)] = RunClient(
          cluster->front->port(), "tenancy-" + std::to_string(t), *scenario,
          config, 5000 + static_cast<uint64_t>(t));
    });
  }
  for (std::thread& thread : threads) thread.join();
  point.ms_total =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  for (long long count : counts) point.requests += count;
  return point;
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  RunConfig config;
  std::string out_path = "BENCH_cluster.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      config.periods = 1;
      config.tenants = 100;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else if (arg == "--periods" && a + 1 < argc) {
      config.periods = std::stoi(argv[++a]);
    } else if (arg == "--tenants" && a + 1 < argc) {
      config.tenants = std::stoi(argv[++a]);
    } else {
      std::cerr << "usage: cluster_speed [--quick] [--out PATH] "
                   "[--periods P] [--tenants N]\n";
      return 2;
    }
  }

  // Warm-up pays the one-time costs (allocator, cold advisor paths) that
  // would otherwise bill to the first sweep point.
  {
    RunConfig warmup = config;
    warmup.periods = 1;
    (void)RunSweepPoint(warmup, 1, 1);
  }

  JsonValue sweep = JsonValue::MakeArray();
  for (int nodes : {1, 3}) {
    double baseline_rps = 0.0;
    for (int tenancies : {1, 4, 8}) {
      const SweepPoint point = RunSweepPoint(config, nodes, tenancies);
      const double seconds = point.ms_total / 1000.0;
      const double rps =
          seconds > 0.0 ? static_cast<double>(point.requests) / seconds : 0.0;
      if (tenancies == 1) baseline_rps = rps;
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("nodes", JsonValue::Number(point.nodes));
      entry.Set("tenancies", JsonValue::Number(point.tenancies));
      entry.Set("ms_total", JsonValue::Number(point.ms_total));
      entry.Set("requests",
                JsonValue::Number(static_cast<double>(point.requests)));
      entry.Set("requests_per_sec", JsonValue::Number(rps));
      entry.Set("speedup_vs_1_tenancy",
                JsonValue::Number(baseline_rps > 0.0 ? rps / baseline_rps
                                                     : 0.0));
      sweep.Append(std::move(entry));
      std::cout << "nodes " << point.nodes << ", tenancies "
                << point.tenancies << ": " << point.ms_total << " ms, "
                << rps << " req/s\n";
    }
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("benchmark", JsonValue::Str("cluster_speed"));
  doc.Set("transport", JsonValue::Str("tcp-localhost-router"));
  doc.Set("periods_per_tenancy", JsonValue::Number(config.periods));
  doc.Set("tenants_per_tenancy", JsonValue::Number(config.tenants));
  doc.Set("slots_per_period", JsonValue::Number(config.slots));
  doc.Set("workers_per_node", JsonValue::Number(config.workers));
  doc.Set("mechanism", JsonValue::Str("addon"));
  doc.Set("hardware_threads",
          JsonValue::Number(std::thread::hardware_concurrency()));
  doc.Set("sweep", std::move(sweep));

  std::ofstream out(out_path);
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
