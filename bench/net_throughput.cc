// TCP transport throughput harness: drives the marketplace's network front
// end (service/net_server.h) with concurrent NetClient connections — each
// client running full billing periods for its own tenancy over localhost
// TCP — and measures aggregate request throughput as the client count
// sweeps 1 -> 16 for each worker count. Emits BENCH_net.json.
//
//   net_throughput [--quick] [--out PATH] [--periods P] [--tenants N]
//
// Every request is a blocking round trip (send line, await response line),
// so a single client measures the serial latency floor while the 8- and
// 16-client points show how far the poll loop + sharded worker pool scale
// on the hardware (the acceptance bar: >= 2x aggregate req/s from 1 -> 8
// connections on a multi-core runner; speedups flatten at the core count,
// which is why hardware_threads is recorded).
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "service/marketplace_server.h"
#include "service/net_client.h"
#include "service/net_server.h"
#include "simdb/scenarios.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;
using service::MarketplaceServer;
using service::NetClient;
using service::NetServer;
using service::NetServerOptions;
using service::ServerOptions;
using service::protocol::Request;
using service::protocol::RequestOp;

struct RunConfig {
  int periods = 2;
  // Enough tenants that one period's advisor + slot pricing (~ms) dwarfs
  // the round-trip overhead (~tens of µs on loopback); the scaling signal
  // is about concurrent pricing, not syscalls.
  int tenants = 600;
  int slots = 12;
};

struct SweepPoint {
  int workers = 0;
  int clients = 0;
  double ms_total = 0.0;
  long long requests = 0;
};

/// One client's whole program: `periods` full billing periods for its own
/// tenancy, one blocking round trip per request.
long long RunClient(const std::string& host, uint16_t port,
                    const std::string& tenancy,
                    const simdb::Scenario& scenario,
                    const RunConfig& config, uint64_t seed) {
  Result<NetClient> client = NetClient::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    std::exit(1);
  }
  Rng rng(seed);
  const std::vector<simdb::SimUser> tenants =
      simdb::JitterTenants(scenario.tenants, config.slots, rng, 0.5, 2.0);
  long long requests = 0;
  const auto call = [&](Request request) {
    auto response = client->Call(request);
    if (!response.ok() || !response->ok()) {
      std::cerr << "request failed: "
                << (response.ok() ? response->status.ToString()
                                  : response.status().ToString())
                << "\n";
      std::exit(1);
    }
    ++requests;
  };
  for (int p = 0; p < config.periods; ++p) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = tenancy;
    if (p == 0) {
      service::protocol::CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = config.tenants;
      catalog.scenario_slots = config.slots;
      open.catalog = catalog;
      service::ServiceConfig service_config;
      service_config.slots_per_period = config.slots;
      open.config = service_config;
    }
    call(std::move(open));
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = tenancy;
    submit.tenants = tenants;
    call(std::move(submit));
    for (int s = 0; s < config.slots; ++s) {
      Request advance;
      advance.op = RequestOp::kAdvanceSlot;
      advance.tenancy = tenancy;
      call(std::move(advance));
    }
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = tenancy;
    call(std::move(close));
  }
  return requests;
}

SweepPoint RunSweepPoint(const RunConfig& config, int workers, int clients) {
  auto scenario = simdb::TelemetryScenario(config.tenants, config.slots);
  if (!scenario.ok()) {
    std::cerr << "scenario failed: " << scenario.status().ToString() << "\n";
    std::exit(1);
  }
  ServerOptions options;
  options.num_workers = workers;
  MarketplaceServer server(options);
  NetServer net(&server, NetServerOptions{});
  Status started = net.Start();
  if (!started.ok()) {
    std::cerr << "listen failed: " << started.ToString() << "\n";
    std::exit(1);
  }

  SweepPoint point;
  point.workers = workers;
  point.clients = clients;
  std::vector<long long> counts(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      counts[static_cast<size_t>(c)] = RunClient(
          "127.0.0.1", net.port(), "tenancy-" + std::to_string(c),
          *scenario, config, 4000 + static_cast<uint64_t>(c));
    });
  }
  for (std::thread& thread : threads) thread.join();
  point.ms_total =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  for (long long count : counts) point.requests += count;
  net.Stop();
  return point;
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  RunConfig config;
  std::string out_path = "BENCH_net.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      config.periods = 1;
      config.tenants = 150;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else if (arg == "--periods" && a + 1 < argc) {
      config.periods = std::stoi(argv[++a]);
    } else if (arg == "--tenants" && a + 1 < argc) {
      config.tenants = std::stoi(argv[++a]);
    } else {
      std::cerr << "usage: net_throughput [--quick] [--out PATH] "
                   "[--periods P] [--tenants N]\n";
      return 2;
    }
  }

  // Warm-up pays the one-time costs (allocator, cold advisor paths) that
  // would otherwise bill to the first sweep point.
  {
    RunConfig warmup = config;
    warmup.periods = 1;
    (void)RunSweepPoint(warmup, 1, 1);
  }

  JsonValue sweep = JsonValue::MakeArray();
  for (int workers : {1, 8}) {
    double baseline_rps = 0.0;
    for (int clients : {1, 2, 4, 8, 16}) {
      const SweepPoint point = RunSweepPoint(config, workers, clients);
      const double seconds = point.ms_total / 1000.0;
      const double rps =
          seconds > 0.0 ? static_cast<double>(point.requests) / seconds : 0.0;
      if (clients == 1) baseline_rps = rps;
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("workers", JsonValue::Number(point.workers));
      entry.Set("clients", JsonValue::Number(point.clients));
      entry.Set("ms_total", JsonValue::Number(point.ms_total));
      entry.Set("requests",
                JsonValue::Number(static_cast<double>(point.requests)));
      entry.Set("requests_per_sec", JsonValue::Number(rps));
      entry.Set("speedup_vs_1_client",
                JsonValue::Number(baseline_rps > 0.0 ? rps / baseline_rps
                                                     : 0.0));
      sweep.Append(std::move(entry));
      std::cout << "workers " << point.workers << ", clients "
                << point.clients << ": " << point.ms_total << " ms, " << rps
                << " req/s\n";
    }
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("benchmark", JsonValue::Str("net_throughput"));
  doc.Set("transport", JsonValue::Str("tcp-localhost"));
  doc.Set("periods_per_client", JsonValue::Number(config.periods));
  doc.Set("tenants_per_tenancy", JsonValue::Number(config.tenants));
  doc.Set("slots_per_period", JsonValue::Number(config.slots));
  doc.Set("mechanism", JsonValue::Str("addon"));
  doc.Set("hardware_threads",
          JsonValue::Number(std::thread::hardware_concurrency()));
  doc.Set("sweep", std::move(sweep));

  std::ofstream out(out_path);
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
