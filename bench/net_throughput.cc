// TCP transport throughput harness: drives the marketplace's network front
// end (service/net_server.h) with concurrent NetClient connections — each
// client running full billing periods for its own tenancy over localhost
// TCP — and measures aggregate request throughput as the client count
// sweeps 1 -> 16 for each worker count. Emits BENCH_net.json.
//
//   net_throughput [--quick] [--out PATH] [--periods P] [--tenants N]
//
// Every request is a blocking round trip (send line, await response line),
// so a single client measures the serial latency floor while the 8- and
// 16-client points show how far the poll loop + sharded worker pool scale
// on the hardware (the acceptance bar: >= 2x aggregate req/s from 1 -> 8
// connections on a multi-core runner; speedups flatten at the core count,
// which is why hardware_threads is recorded).
//
// A separate "batch" section measures what protocol v3 buys: the same 512
// tiny submits as blocking round trips, as batch frames of 32, and through
// the AsyncNetClient's in-flight window — batch_vs_roundtrip_speedup is
// perf-gated (>= 3x) because it is a machine-independent ratio.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "service/marketplace_server.h"
#include "service/net_client.h"
#include "service/net_server.h"
#include "simdb/scenarios.h"

namespace optshare {
namespace {

using Clock = std::chrono::steady_clock;
using service::MarketplaceServer;
using service::NetClient;
using service::NetServer;
using service::NetServerOptions;
using service::ServerOptions;
using service::protocol::Request;
using service::protocol::RequestOp;

struct RunConfig {
  int periods = 2;
  // Enough tenants that one period's advisor + slot pricing (~ms) dwarfs
  // the round-trip overhead (~tens of µs on loopback); the scaling signal
  // is about concurrent pricing, not syscalls.
  int tenants = 600;
  int slots = 12;
};

struct SweepPoint {
  int workers = 0;
  int clients = 0;
  double ms_total = 0.0;
  long long requests = 0;
};

/// One client's whole program: `periods` full billing periods for its own
/// tenancy, one blocking round trip per request.
long long RunClient(const std::string& host, uint16_t port,
                    const std::string& tenancy,
                    const simdb::Scenario& scenario,
                    const RunConfig& config, uint64_t seed) {
  Result<NetClient> client = NetClient::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    std::exit(1);
  }
  Rng rng(seed);
  const std::vector<simdb::SimUser> tenants =
      simdb::JitterTenants(scenario.tenants, config.slots, rng, 0.5, 2.0);
  long long requests = 0;
  const auto call = [&](Request request) {
    auto response = client->Call(request);
    if (!response.ok() || !response->ok()) {
      std::cerr << "request failed: "
                << (response.ok() ? response->status.ToString()
                                  : response.status().ToString())
                << "\n";
      std::exit(1);
    }
    ++requests;
  };
  for (int p = 0; p < config.periods; ++p) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = tenancy;
    if (p == 0) {
      service::protocol::CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = config.tenants;
      catalog.scenario_slots = config.slots;
      open.catalog = catalog;
      service::ServiceConfig service_config;
      service_config.slots_per_period = config.slots;
      open.config = service_config;
    }
    call(std::move(open));
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = tenancy;
    submit.tenants = tenants;
    call(std::move(submit));
    for (int s = 0; s < config.slots; ++s) {
      Request advance;
      advance.op = RequestOp::kAdvanceSlot;
      advance.tenancy = tenancy;
      call(std::move(advance));
    }
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = tenancy;
    call(std::move(close));
  }
  return requests;
}

/// The protocol-v3 batching measure: one tenancy, one open period, then
/// `kBatchRequests` tiny submits sent three ways over the same transport —
/// blocking round trips, v3 batch frames of `kBatchFrame`, and an
/// AsyncNetClient in-flight window — so the speedups isolate framing and
/// round-trip overhead, not pricing work.
JsonValue RunBatchSection() {
  constexpr int kBatchRequests = 512;
  constexpr int kBatchFrame = 32;
  constexpr int kWindow = 32;
  constexpr int kSlots = 12;
  ServerOptions options;
  options.num_workers = 2;
  MarketplaceServer server(options);
  NetServer net(&server, NetServerOptions{});
  Status started = net.Start();
  if (!started.ok()) {
    std::cerr << "listen failed: " << started.ToString() << "\n";
    std::exit(1);
  }

  const auto connect = [&] {
    Result<NetClient> client = NetClient::Connect("127.0.0.1", net.port());
    if (!client.ok()) {
      std::cerr << "connect failed: " << client.status().ToString() << "\n";
      std::exit(1);
    }
    return std::move(*client);
  };
  const auto check = [](const Result<service::protocol::Response>& response) {
    if (!response.ok() || !response->ok()) {
      std::cerr << "request failed: "
                << (response.ok() ? response->status.ToString()
                                  : response.status().ToString())
                << "\n";
      std::exit(1);
    }
  };
  // Fresh tenancy + open period per mode (untimed), then the same N tiny
  // single-tenant submits — a mutating op, so every mode pays the same
  // journal appends.
  const auto open_tenancy = [&](NetClient* client, const std::string& name) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = name;
    service::protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = 64;
    catalog.scenario_slots = kSlots;
    open.catalog = catalog;
    check(client->Call(open));
  };
  // One minimal tenant — a single aggregate-less scan entry — so each
  // submit's fixed cost (parse + execute + journal append) is a few
  // microseconds and the ratio between modes measures framing and
  // round-trip overhead rather than tenant-serialization weight.
  simdb::SimUser tiny;
  tiny.start = 1;
  tiny.end = 1;
  tiny.executions_per_slot = 1.0;
  {
    simdb::Workload::Entry scan;
    scan.frequency = 1.0;
    scan.query.table = "telemetry";
    scan.query.aggregate = false;
    tiny.workload.entries.push_back(scan);
  }
  const auto submit_of = [&](const std::string& tenancy, int) {
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = tenancy;
    submit.tenants = {tiny};
    return submit;
  };

  // Each mode runs kReps times against a fresh tenancy and keeps its best
  // time: the modes compare best-case transport cost, not whichever rep a
  // scheduler hiccup landed on — the gated speedup is a ratio of mins.
  constexpr int kReps = 3;

  // Mode 1: one blocking round trip per request — the baseline.
  double roundtrip_ms = 0.0;
  NetClient roundtrip_client = connect();
  for (int rep = 0; rep < kReps; ++rep) {
    const std::string tenancy = "batch-roundtrip-" + std::to_string(rep);
    open_tenancy(&roundtrip_client, tenancy);
    const auto start = Clock::now();
    for (int i = 0; i < kBatchRequests; ++i) {
      check(roundtrip_client.Call(submit_of(tenancy, i)));
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (rep == 0 || ms < roundtrip_ms) roundtrip_ms = ms;
  }

  // Mode 2: v3 batch frames — one line, one ordered response batch.
  double batch_ms = 0.0;
  NetClient batch_client = connect();
  for (int rep = 0; rep < kReps; ++rep) {
    const std::string tenancy = "batch-framed-" + std::to_string(rep);
    open_tenancy(&batch_client, tenancy);
    const auto start = Clock::now();
    for (int i = 0; i < kBatchRequests; i += kBatchFrame) {
      Request batch;
      batch.op = RequestOp::kBatch;
      batch.version = 3;
      for (int j = i; j < i + kBatchFrame && j < kBatchRequests; ++j) {
        batch.requests.push_back(submit_of(tenancy, j));
      }
      Result<service::protocol::Response> response = batch_client.Call(batch);
      check(response);
      const JsonValue* docs = response->payload.Find("responses");
      if (docs == nullptr ||
          docs->AsArray().size() != batch.requests.size()) {
        std::cerr << "batch answered wrong member count\n";
        std::exit(1);
      }
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (rep == 0 || ms < batch_ms) batch_ms = ms;
  }

  // Mode 3: the async client's multiplexed in-flight window. The bench
  // tracks its own in-flight count and blocks on a condition variable when
  // the window is full — the client frees a slot before it invokes the
  // completion, so once the bench count drops below the window, Submit is
  // guaranteed a slot (the retry loop is a belt-and-braces fallback, not a
  // spin: on a 1-core runner a yield-spin against the reader thread can
  // starve it for whole scheduler quanta).
  double windowed_ms = 0.0;
  service::AsyncNetClient async(connect(),
                                service::AsyncNetClient::Options{kWindow});
  for (int rep = 0; rep < kReps; ++rep) {
    const std::string tenancy = "batch-windowed-" + std::to_string(rep);
    {
      Request open;
      open.op = RequestOp::kOpenPeriod;
      open.tenancy = tenancy;
      service::protocol::CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = 64;
      catalog.scenario_slots = kSlots;
      open.catalog = catalog;
      check(async.Call(open).get());
    }
    const auto start = Clock::now();
    std::atomic<long long> failed{0};
    std::mutex window_mu;
    std::condition_variable window_cv;
    int in_flight = 0;
    for (int i = 0; i < kBatchRequests; ++i) {
      const Request submit = submit_of(tenancy, i);
      {
        std::unique_lock<std::mutex> lock(window_mu);
        window_cv.wait(lock, [&] { return in_flight < kWindow; });
        ++in_flight;
      }
      const auto completion = [&](Result<service::protocol::Response> r) {
        if (!r.ok() || !r->ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        {
          std::lock_guard<std::mutex> lock(window_mu);
          --in_flight;
        }
        window_cv.notify_one();
      };
      for (;;) {
        Status submitted = async.Submit(submit, completion);
        if (submitted.ok()) break;
        if (submitted.code() != StatusCode::kResourceExhausted) {
          std::cerr << "async submit failed: " << submitted.ToString()
                    << "\n";
          std::exit(1);
        }
        std::this_thread::yield();  // Unreachable in practice; see above.
      }
    }
    Status drained = async.Drain();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (!drained.ok() || failed.load() != 0) {
      std::cerr << "windowed mode failed: " << drained.ToString() << " ("
                << failed.load() << " member failures)\n";
      std::exit(1);
    }
    if (rep == 0 || ms < windowed_ms) windowed_ms = ms;
  }
  net.Stop();

  const auto rps = [](double ms) {
    return ms > 0.0 ? kBatchRequests / (ms / 1000.0) : 0.0;
  };
  JsonValue batch = JsonValue::MakeObject();
  batch.Set("requests", JsonValue::Number(kBatchRequests));
  batch.Set("batch_frame", JsonValue::Number(kBatchFrame));
  batch.Set("window", JsonValue::Number(kWindow));
  batch.Set("roundtrip_ms", JsonValue::Number(roundtrip_ms));
  batch.Set("batch_ms", JsonValue::Number(batch_ms));
  batch.Set("windowed_ms", JsonValue::Number(windowed_ms));
  batch.Set("roundtrip_requests_per_sec", JsonValue::Number(rps(roundtrip_ms)));
  batch.Set("batch_requests_per_sec", JsonValue::Number(rps(batch_ms)));
  batch.Set("windowed_requests_per_sec", JsonValue::Number(rps(windowed_ms)));
  batch.Set("batch_vs_roundtrip_speedup",
            JsonValue::Number(batch_ms > 0.0 ? roundtrip_ms / batch_ms : 0.0));
  batch.Set("windowed_vs_roundtrip_speedup",
            JsonValue::Number(windowed_ms > 0.0 ? roundtrip_ms / windowed_ms
                                                : 0.0));
  std::cout << "batch: roundtrip " << roundtrip_ms << " ms, frames "
            << batch_ms << " ms ("
            << (batch_ms > 0.0 ? roundtrip_ms / batch_ms : 0.0)
            << "x), window " << windowed_ms << " ms ("
            << (windowed_ms > 0.0 ? roundtrip_ms / windowed_ms : 0.0)
            << "x)\n";
  return batch;
}

SweepPoint RunSweepPoint(const RunConfig& config, int workers, int clients) {
  auto scenario = simdb::TelemetryScenario(config.tenants, config.slots);
  if (!scenario.ok()) {
    std::cerr << "scenario failed: " << scenario.status().ToString() << "\n";
    std::exit(1);
  }
  ServerOptions options;
  options.num_workers = workers;
  MarketplaceServer server(options);
  NetServer net(&server, NetServerOptions{});
  Status started = net.Start();
  if (!started.ok()) {
    std::cerr << "listen failed: " << started.ToString() << "\n";
    std::exit(1);
  }

  SweepPoint point;
  point.workers = workers;
  point.clients = clients;
  std::vector<long long> counts(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      counts[static_cast<size_t>(c)] = RunClient(
          "127.0.0.1", net.port(), "tenancy-" + std::to_string(c),
          *scenario, config, 4000 + static_cast<uint64_t>(c));
    });
  }
  for (std::thread& thread : threads) thread.join();
  point.ms_total =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  for (long long count : counts) point.requests += count;
  net.Stop();
  return point;
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  RunConfig config;
  std::string out_path = "BENCH_net.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      config.periods = 1;
      config.tenants = 150;
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else if (arg == "--periods" && a + 1 < argc) {
      config.periods = std::stoi(argv[++a]);
    } else if (arg == "--tenants" && a + 1 < argc) {
      config.tenants = std::stoi(argv[++a]);
    } else {
      std::cerr << "usage: net_throughput [--quick] [--out PATH] "
                   "[--periods P] [--tenants N]\n";
      return 2;
    }
  }

  // Warm-up pays the one-time costs (allocator, cold advisor paths) that
  // would otherwise bill to the first sweep point.
  {
    RunConfig warmup = config;
    warmup.periods = 1;
    (void)RunSweepPoint(warmup, 1, 1);
  }

  JsonValue sweep = JsonValue::MakeArray();
  for (int workers : {1, 8}) {
    double baseline_rps = 0.0;
    for (int clients : {1, 2, 4, 8, 16}) {
      const SweepPoint point = RunSweepPoint(config, workers, clients);
      const double seconds = point.ms_total / 1000.0;
      const double rps =
          seconds > 0.0 ? static_cast<double>(point.requests) / seconds : 0.0;
      if (clients == 1) baseline_rps = rps;
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("workers", JsonValue::Number(point.workers));
      entry.Set("clients", JsonValue::Number(point.clients));
      entry.Set("ms_total", JsonValue::Number(point.ms_total));
      entry.Set("requests",
                JsonValue::Number(static_cast<double>(point.requests)));
      entry.Set("requests_per_sec", JsonValue::Number(rps));
      entry.Set("speedup_vs_1_client",
                JsonValue::Number(baseline_rps > 0.0 ? rps / baseline_rps
                                                     : 0.0));
      sweep.Append(std::move(entry));
      std::cout << "workers " << point.workers << ", clients "
                << point.clients << ": " << point.ms_total << " ms, " << rps
                << " req/s\n";
    }
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("benchmark", JsonValue::Str("net_throughput"));
  doc.Set("transport", JsonValue::Str("tcp-localhost"));
  doc.Set("periods_per_client", JsonValue::Number(config.periods));
  doc.Set("tenants_per_tenancy", JsonValue::Number(config.tenants));
  doc.Set("slots_per_period", JsonValue::Number(config.slots));
  doc.Set("mechanism", JsonValue::Str("addon"));
  doc.Set("hardware_threads",
          JsonValue::Number(std::thread::hardware_concurrency()));
  doc.Set("sweep", std::move(sweep));
  doc.Set("batch", RunBatchSection());

  std::ofstream out(out_path);
  out << doc.Dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
