// Tests for the CloudService integration layer.
#include "service/cloud_service.h"

#include <gtest/gtest.h>

namespace optshare::service {
namespace {

class CloudServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = simdb::TelemetryScenario(6, 12);
    ASSERT_TRUE(scenario.ok());
    catalog_ = std::move(scenario->catalog);
    tenants_ = std::move(scenario->tenants);
  }

  simdb::Catalog catalog_;
  std::vector<simdb::SimUser> tenants_;
};

TEST_F(CloudServiceTest, FirstPeriodBuildsStructures) {
  CloudService service(std::move(catalog_));
  auto report = service.RunPeriod(tenants_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->period, 1);
  EXPECT_GT(report->ActiveStructures(), 0);
  EXPECT_TRUE(report->ledger.CostRecovered());
  EXPECT_GE(service.cumulative_balance(), -1e-9);
  EXPECT_GT(service.cumulative_utility(), 0.0);
  EXPECT_FALSE(service.built_structures().empty());
}

TEST_F(CloudServiceTest, SecondPeriodChargesMaintenanceOnly) {
  ServiceConfig config;
  config.maintenance_fraction = 0.25;
  CloudService service(std::move(catalog_), config);
  auto first = service.RunPeriod(tenants_);
  ASSERT_TRUE(first.ok());
  auto second = service.RunPeriod(tenants_);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->period, 2);

  // Structures active in period 1 carry over and cost 25% in period 2.
  bool any_carried = false;
  for (const auto& s2 : second->structures) {
    if (!s2.carried_over) continue;
    any_carried = true;
    for (const auto& s1 : first->structures) {
      if (s1.name == s2.name && s1.active && !s1.carried_over) {
        EXPECT_NEAR(s2.cost, s1.cost * 0.25, 1e-9);
      }
    }
  }
  EXPECT_TRUE(any_carried);
  // Maintenance is cheaper, so the period-2 cost is lower.
  EXPECT_LT(second->ledger.total_cost, first->ledger.total_cost);
  EXPECT_TRUE(second->ledger.CostRecovered());
}

TEST_F(CloudServiceTest, StructuresDroppedWhenNobodyRenews) {
  CloudService service(std::move(catalog_));
  ASSERT_TRUE(service.RunPeriod(tenants_).ok());
  ASSERT_FALSE(service.built_structures().empty());

  // Period 2: tenants with negligible usage cannot fund even maintenance.
  std::vector<simdb::SimUser> idle = tenants_;
  for (auto& t : idle) t.executions_per_slot = 1e-9;
  auto report = service.RunPeriod(idle);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ActiveStructures(), 0);
  EXPECT_TRUE(service.built_structures().empty());
}

TEST_F(CloudServiceTest, BalanceNeverNegativeAcrossPeriods) {
  CloudService service(std::move(catalog_));
  for (int period = 0; period < 5; ++period) {
    // Usage drifts period to period.
    std::vector<simdb::SimUser> drifted = tenants_;
    for (size_t i = 0; i < drifted.size(); ++i) {
      drifted[i].executions_per_slot *=
          (period % 2 == 0) ? 1.5 : 0.4;
    }
    auto report = service.RunPeriod(drifted);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ledger.CostRecovered()) << "period " << period;
  }
  EXPECT_GE(service.cumulative_balance(), -1e-9);
}

TEST_F(CloudServiceTest, RejectsBadTenants) {
  CloudService service(std::move(catalog_));
  EXPECT_FALSE(service.RunPeriod({}).ok());

  simdb::SimUser bad = tenants_[0];
  bad.end = 99;  // Past the period's slots.
  EXPECT_FALSE(service.RunPeriod({bad}).ok());
}

TEST_F(CloudServiceTest, ChangingTenantPopulation) {
  CloudService service(std::move(catalog_));
  ASSERT_TRUE(service.RunPeriod(tenants_).ok());
  // A different (smaller) tenant set next period still works.
  std::vector<simdb::SimUser> fewer(tenants_.begin(), tenants_.begin() + 2);
  auto report = service.RunPeriod(fewer);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ledger.user_value.size(), 2u);
}

}  // namespace
}  // namespace optshare::service
