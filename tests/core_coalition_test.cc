// Tests for the sparse Coalition type backing the mechanism engine.
#include "core/coalition.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

TEST(CoalitionTest, EmptyByDefault) {
  Coalition c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0);
  EXPECT_FALSE(c.Contains(0));
}

TEST(CoalitionTest, FromUnsortedSortsAndDedups) {
  Coalition c = Coalition::FromUnsorted({5, 1, 3, 1, 5});
  EXPECT_EQ(c.ids(), (std::vector<UserId>{1, 3, 5}));
  EXPECT_TRUE(c.Contains(3));
  EXPECT_FALSE(c.Contains(2));
}

TEST(CoalitionTest, MaskRoundTrip) {
  const std::vector<bool> mask = {true, false, false, true, true};
  Coalition c = Coalition::FromMask(mask);
  EXPECT_EQ(c.ids(), (std::vector<UserId>{0, 3, 4}));
  EXPECT_EQ(c.ToMask(5), mask);
}

TEST(CoalitionTest, AllSpansUniverse) {
  Coalition c = Coalition::All(4);
  EXPECT_EQ(c.size(), 4);
  for (UserId i = 0; i < 4; ++i) EXPECT_TRUE(c.Contains(i));
  EXPECT_FALSE(c.Contains(4));
}

TEST(CoalitionTest, InsertKeepsOrderAndIgnoresDuplicates) {
  Coalition c;
  c.Insert(4);
  c.Insert(1);
  c.Insert(7);
  c.Insert(4);
  EXPECT_EQ(c.ids(), (std::vector<UserId>{1, 4, 7}));
}

TEST(CoalitionTest, UnionMerges) {
  Coalition a = Coalition::FromUnsorted({1, 3, 5});
  Coalition b = Coalition::FromUnsorted({2, 3, 6});
  EXPECT_EQ(Coalition::Union(a, b).ids(),
            (std::vector<UserId>{1, 2, 3, 5, 6}));
}

TEST(CoalitionTest, Equality) {
  EXPECT_EQ(Coalition::FromUnsorted({2, 1}), Coalition::FromUnsorted({1, 2}));
  EXPECT_NE(Coalition::FromUnsorted({1}), Coalition::FromUnsorted({1, 2}));
}

}  // namespace
}  // namespace optshare
