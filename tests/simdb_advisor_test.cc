// Tests for the optimization advisor.
#include "simdb/advisor.h"

#include <gtest/gtest.h>

#include "core/accounting.h"
#include "core/add_off.h"

namespace optshare::simdb {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef logs;
    logs.name = "logs";
    logs.columns = {
        {"tenant", ColumnType::kInt64, 100'000},
        {"severity", ColumnType::kInt64, 8},
        {"message", ColumnType::kString, 1'000'000'000},
    };
    logs.row_count = 2'000'000'000;
    ASSERT_TRUE(catalog_.AddTable(logs).ok());
  }

  SimUser MakeUser(double selectivity, const std::string& column,
                   double executions) {
    Query q;
    q.table = "logs";
    q.predicates = {{column, selectivity}};
    q.aggregate = true;
    SimUser user;
    user.workload.entries = {{q, 1.0}};
    user.start = 1;
    user.end = 12;
    user.executions_per_slot = executions;
    return user;
  }

  Catalog catalog_;
  PricingModel pricing_;
};

TEST_F(AdvisorTest, ProposesIndexAndViewForFilteredColumns) {
  CostModel model(&catalog_);
  const std::vector<SimUser> users = {MakeUser(1e-5, "tenant", 200.0),
                                      MakeUser(1e-5, "tenant", 50.0)};
  auto proposals = ProposeOptimizations(catalog_, model, pricing_, users);
  ASSERT_TRUE(proposals.ok()) << proposals.status().ToString();
  ASSERT_FALSE(proposals->empty());
  bool has_index = false, has_view = false;
  for (const auto& p : *proposals) {
    EXPECT_EQ(p.spec.table, "logs");
    EXPECT_EQ(p.spec.column, "tenant");
    if (p.spec.kind == OptKind::kSecondaryIndex) has_index = true;
    if (p.spec.kind == OptKind::kMaterializedView) {
      has_view = true;
      EXPECT_DOUBLE_EQ(p.spec.view_selectivity, 1e-5);
    }
    EXPECT_EQ(p.user_savings.size(), 2u);
    EXPECT_GT(p.total_savings, 0.0);
    EXPECT_GT(p.cost, 0.0);
  }
  EXPECT_TRUE(has_index);
  EXPECT_TRUE(has_view);
}

TEST_F(AdvisorTest, RankedByBenefitRatio) {
  CostModel model(&catalog_);
  const std::vector<SimUser> users = {MakeUser(1e-5, "tenant", 500.0),
                                      MakeUser(0.125, "severity", 500.0)};
  auto proposals = ProposeOptimizations(catalog_, model, pricing_, users);
  ASSERT_TRUE(proposals.ok());
  for (size_t k = 1; k < proposals->size(); ++k) {
    EXPECT_GE((*proposals)[k - 1].BenefitRatio(),
              (*proposals)[k].BenefitRatio());
  }
}

TEST_F(AdvisorTest, ThresholdFiltersWeakCandidates) {
  CostModel model(&catalog_);
  // A nearly worthless workload: barely selective predicate, one run.
  const std::vector<SimUser> users = {MakeUser(0.9, "severity", 0.001)};
  AdvisorOptions strict;
  strict.min_benefit_ratio = 10.0;
  auto proposals =
      ProposeOptimizations(catalog_, model, pricing_, users, strict);
  ASSERT_TRUE(proposals.ok());
  EXPECT_TRUE(proposals->empty());
}

TEST_F(AdvisorTest, MaxProposalsCap) {
  CostModel model(&catalog_);
  const std::vector<SimUser> users = {MakeUser(1e-5, "tenant", 500.0),
                                      MakeUser(0.125, "severity", 500.0)};
  AdvisorOptions capped;
  capped.max_proposals = 1;
  capped.min_benefit_ratio = 0.0;
  auto proposals =
      ProposeOptimizations(catalog_, model, pricing_, users, capped);
  ASSERT_TRUE(proposals.ok());
  EXPECT_EQ(proposals->size(), 1u);
}

TEST_F(AdvisorTest, ReplicasOnlyWhenRequested) {
  CostModel model(&catalog_);
  const std::vector<SimUser> users = {MakeUser(1e-5, "tenant", 500.0)};
  AdvisorOptions with_replicas;
  with_replicas.propose_replicas = true;
  with_replicas.min_benefit_ratio = 0.0;
  auto proposals =
      ProposeOptimizations(catalog_, model, pricing_, users, with_replicas);
  ASSERT_TRUE(proposals.ok());
  bool has_replica = false;
  for (const auto& p : *proposals) {
    if (p.spec.kind == OptKind::kReplica) has_replica = true;
  }
  EXPECT_TRUE(has_replica);
}

TEST_F(AdvisorTest, UnknownColumnIsError) {
  CostModel model(&catalog_);
  Query q;
  q.table = "logs";
  q.predicates = {{"missing", 0.5}};
  SimUser user;
  user.workload.entries = {{q, 1.0}};
  EXPECT_FALSE(
      ProposeOptimizations(catalog_, model, pricing_, {user}).ok());
}

TEST_F(AdvisorTest, GameFromProposalsFeedsAddOff) {
  CostModel model(&catalog_);
  const std::vector<SimUser> users = {MakeUser(1e-5, "tenant", 300.0),
                                      MakeUser(1e-5, "tenant", 250.0),
                                      MakeUser(1e-5, "tenant", 10.0)};
  auto proposals = ProposeOptimizations(catalog_, model, pricing_, users);
  ASSERT_TRUE(proposals.ok());
  ASSERT_FALSE(proposals->empty());

  auto game = GameFromProposals(*proposals);
  ASSERT_TRUE(game.ok()) << game.status().ToString();
  EXPECT_EQ(game->num_users(), 3);
  EXPECT_EQ(game->num_opts(), static_cast<int>(proposals->size()));

  // The full pipeline terminates in a priced configuration.
  optshare::AddOffResult r = optshare::RunAddOff(*game);
  optshare::Accounting acc = optshare::AccountAddOff(*game, r);
  EXPECT_TRUE(acc.CostRecovered());
}

TEST_F(AdvisorTest, GameFromEmptyProposalsFails) {
  EXPECT_FALSE(GameFromProposals({}).ok());
}

}  // namespace
}  // namespace optshare::simdb
