// Tests for the simdb cost model and pricing: optimizations must actually
// speed up the queries they claim to, and the derived games must be valid
// mechanism inputs.
#include <gtest/gtest.h>

#include "simdb/cost_model.h"
#include "simdb/pricing.h"

namespace optshare::simdb {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef t;
    t.name = "events";
    t.columns = {
        {"id", ColumnType::kInt64, 100'000'000},
        {"user_id", ColumnType::kInt64, 1'000'000},
        {"kind", ColumnType::kString, 100},
    };
    t.row_count = 100'000'000;
    ASSERT_TRUE(catalog_.AddTable(t).ok());

    idx_ = *catalog_.AddOptimization(
        {OptKind::kSecondaryIndex, "events", "user_id", 1.0, ""});
    view_ = *catalog_.AddOptimization(
        {OptKind::kMaterializedView, "events", "kind", 0.01, ""});
    replica_ = *catalog_.AddOptimization(
        {OptKind::kReplica, "events", "", 1.0, ""});
  }

  Query PointLookup() const {
    Query q;
    q.table = "events";
    q.predicates = {{"user_id", 1e-6}};
    q.aggregate = true;
    return q;
  }

  Query KindScan() const {
    Query q;
    q.table = "events";
    q.predicates = {{"kind", 0.01}};
    q.aggregate = true;
    return q;
  }

  Catalog catalog_;
  int idx_ = -1, view_ = -1, replica_ = -1;
};

TEST_F(CostModelTest, IndexSpeedsUpSelectiveLookup) {
  CostModel model(&catalog_);
  const double base = *model.QueryTime(PointLookup(), {});
  const double with_index = *model.QueryTime(PointLookup(), {idx_});
  EXPECT_LT(with_index, base / 100.0)
      << "a 1e-6-selective lookup should be orders of magnitude faster";
}

TEST_F(CostModelTest, IrrelevantIndexDoesNotHelp) {
  CostModel model(&catalog_);
  const double base = *model.QueryTime(KindScan(), {});
  const double with_index = *model.QueryTime(KindScan(), {idx_});
  EXPECT_DOUBLE_EQ(with_index, base);
}

TEST_F(CostModelTest, ViewSpeedsUpItsFilter) {
  CostModel model(&catalog_);
  const double base = *model.QueryTime(KindScan(), {});
  const double with_view = *model.QueryTime(KindScan(), {view_});
  EXPECT_LT(with_view, base / 10.0);
}

TEST_F(CostModelTest, ReplicaAppliesLatencyDiscount) {
  CostModel model(&catalog_);
  const double base = *model.QueryTime(KindScan(), {});
  const double with_replica = *model.QueryTime(KindScan(), {replica_});
  EXPECT_NEAR(with_replica, base * model.params().replica_speedup, 1e-9);
}

TEST_F(CostModelTest, BestStructureWins) {
  // With all structures available the estimate never exceeds any single
  // structure's estimate.
  CostModel model(&catalog_);
  for (const Query& q : {PointLookup(), KindScan()}) {
    const double all = *model.QueryTime(q, {idx_, view_, replica_});
    for (int opt : {idx_, view_, replica_}) {
      EXPECT_LE(all, *model.QueryTime(q, {opt}) + 1e-12);
    }
  }
}

TEST_F(CostModelTest, AggregationShrinksOutput) {
  CostModel model(&catalog_);
  Query agg = KindScan();
  Query ship = agg;
  ship.aggregate = false;
  EXPECT_LT(*model.QueryTime(agg, {}), *model.QueryTime(ship, {}));
}

TEST_F(CostModelTest, ErrorsOnUnknownEntities) {
  CostModel model(&catalog_);
  Query q;
  q.table = "missing";
  EXPECT_FALSE(model.QueryTime(q, {}).ok());

  Query bad_col;
  bad_col.table = "events";
  bad_col.predicates = {{"missing", 0.5}};
  EXPECT_FALSE(model.QueryTime(bad_col, {}).ok());

  EXPECT_FALSE(model.QueryTime(PointLookup(), {99}).ok());
  EXPECT_FALSE(model.BuildTimeSec(99).ok());
  EXPECT_FALSE(model.StorageBytes(-1).ok());
}

TEST_F(CostModelTest, StorageFootprints) {
  CostModel model(&catalog_);
  const auto table = *catalog_.GetTable("events");
  // Index: key + pointer per row.
  EXPECT_EQ(*model.StorageBytes(idx_), table->row_count * 16u);
  // View: selectivity fraction of the table.
  EXPECT_EQ(*model.StorageBytes(view_),
            static_cast<uint64_t>(table->TotalBytes() * 0.01));
  // Replica: full copy.
  EXPECT_EQ(*model.StorageBytes(replica_), table->TotalBytes());
}

TEST_F(CostModelTest, BuildTimesArePositiveAndOrdered) {
  CostModel model(&catalog_);
  for (int opt : {idx_, view_, replica_}) {
    EXPECT_GT(*model.BuildTimeSec(opt), 0.0);
  }
  // A replica copies everything twice; it costs at least as much as a
  // small view.
  EXPECT_GT(*model.BuildTimeSec(replica_), *model.BuildTimeSec(view_));
}

TEST_F(CostModelTest, WorkloadTimeSumsWeightedQueries) {
  CostModel model(&catalog_);
  Workload w;
  w.entries = {{PointLookup(), 2.0}, {KindScan(), 1.0}};
  const double expected = 2.0 * *model.QueryTime(PointLookup(), {}) +
                          *model.QueryTime(KindScan(), {});
  EXPECT_NEAR(*model.WorkloadTime(w, {}), expected, 1e-9);
}

TEST_F(CostModelTest, PricingConvertsTimeAndStorage) {
  PricingModel pricing({0.50, 0.10});
  EXPECT_DOUBLE_EQ(pricing.InstanceDollars(3600.0), 0.50);
  EXPECT_DOUBLE_EQ(pricing.StorageDollars(1024ull * 1024 * 1024, 2.0), 0.20);

  CostModel model(&catalog_);
  const double cost = *pricing.OptimizationCost(model, view_);
  EXPECT_GT(cost, 0.0);
}

TEST_F(CostModelTest, BuildAdditiveGameProducesValidGame) {
  CostModel model(&catalog_);
  PricingModel pricing;
  SimUser user;
  user.workload.entries = {{PointLookup(), 1.0}};
  user.start = 2;
  user.end = 9;
  user.executions_per_slot = 100.0;
  auto game = BuildAdditiveGame(catalog_, model, pricing, {user, user}, 12);
  ASSERT_TRUE(game.ok());
  EXPECT_TRUE(game->Validate().ok());
  EXPECT_EQ(game->num_users(), 2);
  EXPECT_EQ(game->num_opts(), 3);
  // The index saves this workload money; the unrelated view saves nothing.
  EXPECT_GT(game->bids[0][static_cast<size_t>(idx_)].Total(), 0.0);
  EXPECT_DOUBLE_EQ(game->bids[0][static_cast<size_t>(view_)].Total(), 0.0);
}

TEST_F(CostModelTest, SparseColumnMatchesDenseProjection) {
  CostModel model(&catalog_);
  PricingModel pricing;
  SimUser user;
  user.workload.entries = {{PointLookup(), 1.0}};
  user.start = 2;
  user.end = 9;
  user.executions_per_slot = 100.0;
  auto game = BuildAdditiveGame(catalog_, model, pricing, {user, user}, 12);
  ASSERT_TRUE(game.ok());
  for (OptId j = 0; j < game->num_opts(); ++j) {
    const SparseOnlineColumn column = ProjectSparseColumn(*game, j);
    EXPECT_DOUBLE_EQ(column.cost, game->costs[static_cast<size_t>(j)]);
    ASSERT_EQ(column.streams.size(),
              static_cast<size_t>(column.users.size()));
    // Exactly the users with a positive declared total, with their streams.
    for (UserId i = 0; i < game->num_users(); ++i) {
      const SlotValues& dense =
          game->bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
      EXPECT_EQ(column.users.Contains(i), dense.Total() > 0.0);
    }
    for (size_t k = 0; k < column.streams.size(); ++k) {
      const UserId i = column.users.ids()[k];
      const SlotValues& dense =
          game->bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
      EXPECT_EQ(column.streams[k].start, dense.start);
      EXPECT_EQ(column.streams[k].values, dense.values);
    }
  }
}

TEST_F(CostModelTest, BuildAdditiveGameRejectsBadIntervals) {
  CostModel model(&catalog_);
  PricingModel pricing;
  SimUser user;
  user.workload.entries = {{PointLookup(), 1.0}};
  user.start = 5;
  user.end = 20;  // Past the 12-slot horizon.
  EXPECT_FALSE(BuildAdditiveGame(catalog_, model, pricing, {user}, 12).ok());
}

}  // namespace
}  // namespace optshare::simdb
