#include "common/table.h"

#include <gtest/gtest.h>

#include "common/money.h"

namespace optshare {
namespace {

TEST(FormatFixedTest, Precision) {
  EXPECT_EQ(FormatFixed(1.23456, 2), "1.23");
  EXPECT_EQ(FormatFixed(1.23456, 4), "1.2346");
  EXPECT_EQ(FormatFixed(-3.5, 1), "-3.5");
}

TEST(FormatFixedTest, NegativeZeroNormalized) {
  EXPECT_EQ(FormatFixed(-0.00001, 2), "0.00");
}

TEST(FormatFixedTest, SpecialValues) {
  EXPECT_EQ(FormatFixed(std::numeric_limits<double>::infinity(), 2), "inf");
  EXPECT_EQ(FormatFixed(std::numeric_limits<double>::quiet_NaN(), 2), "nan");
}

TEST(TextTableTest, RendersHeaderSeparatorAndRows) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string expected =
      "name   value\n"
      "-----  -----\n"
      "alpha      1\n"
      "b         22\n";
  EXPECT_EQ(t.Render(), expected);
}

TEST(TextTableTest, FirstColumnLeftAlignedByDefault) {
  TextTable t({"k", "v"});
  t.AddRow({"long-key", "9"});
  const std::string rendered = t.Render();
  EXPECT_NE(rendered.find("long-key  9"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable t({"x", "y"});
  t.AddNumericRow({1.5, -2.25}, 2);
  EXPECT_NE(t.Render().find("1.50"), std::string::npos);
  EXPECT_NE(t.Render().find("-2.25"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_columns(), 3u);
  // Renders without crashing and keeps three columns.
  EXPECT_FALSE(t.Render().empty());
}

TEST(TextTableTest, AlignOverride) {
  TextTable t({"a", "b"});
  t.SetAlign(1, Align::kLeft);
  t.AddRow({"x", "y"});
  EXPECT_FALSE(t.Render().empty());
}

TEST(MoneyTest, FormatDollars) {
  EXPECT_EQ(FormatDollars(2.31), "$2.31");
  EXPECT_EQ(FormatDollars(-0.07), "-$0.07");
  EXPECT_EQ(FormatDollars(0.0), "$0.00");
}

TEST(MoneyTest, FormatCents) {
  EXPECT_EQ(FormatCents(0.18), "18c");
  EXPECT_EQ(FormatCents(0.015), "1.50c");
}

TEST(MoneyTest, Comparisons) {
  EXPECT_TRUE(MoneyGe(1.0, 1.0));
  EXPECT_TRUE(MoneyGe(1.0, 1.0 + 1e-12));  // Within tolerance.
  EXPECT_FALSE(MoneyGe(1.0, 1.1));
  EXPECT_TRUE(MoneyLe(1.0, 1.0));
  EXPECT_TRUE(MoneyEq(0.1 + 0.2, 0.3));  // Floating-point residue absorbed.
  EXPECT_FALSE(MoneyEq(1.0, 1.001));
}

}  // namespace
}  // namespace optshare
