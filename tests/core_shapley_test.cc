// Tests for the Shapley Value Mechanism (paper §4.1, Mechanism 1), including
// the truthfulness rationale discussed under Mechanism 1 and seeded property
// sweeps over random bid profiles.
#include "core/shapley.h"

#include <gtest/gtest.h>

#include "common/money.h"
#include "common/rng.h"

namespace optshare {
namespace {

TEST(ShapleyTest, AllUsersAffordEvenSplit) {
  // Cost 90 over three users bidding >= 30 each: everyone serviced at 30.
  ShapleyResult r = RunShapley(90.0, {40.0, 30.0, 35.0});
  EXPECT_TRUE(r.implemented);
  EXPECT_EQ(r.NumServiced(), 3);
  EXPECT_DOUBLE_EQ(r.cost_share, 30.0);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 90.0);
}

TEST(ShapleyTest, IterativelyDropsPricedOutUsers) {
  // Cost 100, bids {101, 26}: split 50 prices out user 2; user 1 pays 100.
  // This is the t=1 state of paper Example 2.
  ShapleyResult r = RunShapley(100.0, {101.0, 26.0});
  EXPECT_TRUE(r.implemented);
  EXPECT_EQ(r.ServicedUsers(), std::vector<UserId>{0});
  EXPECT_DOUBLE_EQ(r.cost_share, 100.0);
  EXPECT_DOUBLE_EQ(r.payments[0], 100.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 0.0);
}

TEST(ShapleyTest, CascadingRemovals) {
  // Cost 100 over 4 users: share 25 drops {10}, share 33.3 drops {30},
  // share 50 keeps {60, 70}.
  ShapleyResult r = RunShapley(100.0, {10.0, 30.0, 60.0, 70.0});
  EXPECT_TRUE(r.implemented);
  EXPECT_EQ(r.ServicedUsers(), (std::vector<UserId>{2, 3}));
  EXPECT_DOUBLE_EQ(r.cost_share, 50.0);
  EXPECT_GE(r.iterations, 3);
}

TEST(ShapleyTest, NobodyCanAfford) {
  ShapleyResult r = RunShapley(100.0, {10.0, 10.0, 10.0});
  EXPECT_FALSE(r.implemented);
  EXPECT_EQ(r.NumServiced(), 0);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
}

TEST(ShapleyTest, NoUsers) {
  ShapleyResult r = RunShapley(5.0, {});
  EXPECT_FALSE(r.implemented);
  EXPECT_EQ(r.NumServiced(), 0);
}

TEST(ShapleyTest, SingleUserCoversFullCost) {
  ShapleyResult r = RunShapley(5.0, {5.0});
  EXPECT_TRUE(r.implemented);
  EXPECT_DOUBLE_EQ(r.payments[0], 5.0);
}

TEST(ShapleyTest, BidExactlyAtShareIsServiced) {
  // p <= b_ij keeps users bidding exactly the even share (Example 7 relies
  // on this: a bid of exactly 30 keeps the user in).
  ShapleyResult r = RunShapley(60.0, {30.0, 100.0});
  EXPECT_TRUE(r.implemented);
  EXPECT_EQ(r.NumServiced(), 2);
  EXPECT_DOUBLE_EQ(r.cost_share, 30.0);
}

TEST(ShapleyTest, BidJustBelowShareIsDropped) {
  ShapleyResult r = RunShapley(60.0, {30.0 - 1e-3, 100.0});
  EXPECT_TRUE(r.implemented);
  EXPECT_EQ(r.ServicedUsers(), std::vector<UserId>{1});
  EXPECT_DOUBLE_EQ(r.cost_share, 60.0);
}

TEST(ShapleyTest, InfiniteBidsAlwaysServiced) {
  // The online mechanisms pin serviced users with infinite bids.
  ShapleyResult r = RunShapley(100.0, {kInfiniteBid, 1.0, kInfiniteBid});
  EXPECT_TRUE(r.implemented);
  EXPECT_EQ(r.ServicedUsers(), (std::vector<UserId>{0, 2}));
  EXPECT_DOUBLE_EQ(r.cost_share, 50.0);
}

TEST(ShapleyTest, ZeroBiddersNeverServiced) {
  ShapleyResult r = RunShapley(10.0, {0.0, 0.0, 20.0});
  EXPECT_TRUE(r.implemented);
  EXPECT_EQ(r.ServicedUsers(), std::vector<UserId>{2});
}

TEST(ShapleyTest, CostRecoveryExactWhenImplemented) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const int m = static_cast<int>(rng.UniformInt(1, 10));
    std::vector<double> bids;
    for (int i = 0; i < m; ++i) bids.push_back(rng.Uniform(0.0, 2.0));
    const double cost = rng.Uniform(0.1, 5.0);
    ShapleyResult r = RunShapley(cost, bids);
    if (r.implemented) {
      EXPECT_NEAR(r.TotalPayment(), cost, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
    }
  }
}

TEST(ShapleyTest, ServicedUsersNeverPayMoreThanBid) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const int m = static_cast<int>(rng.UniformInt(1, 12));
    std::vector<double> bids;
    for (int i = 0; i < m; ++i) bids.push_back(rng.Uniform(0.0, 3.0));
    ShapleyResult r = RunShapley(rng.Uniform(0.1, 6.0), bids);
    for (int i = 0; i < m; ++i) {
      if (r.serviced[static_cast<size_t>(i)]) {
        EXPECT_TRUE(MoneyLe(r.payments[static_cast<size_t>(i)],
                            bids[static_cast<size_t>(i)]));
      } else {
        EXPECT_DOUBLE_EQ(r.payments[static_cast<size_t>(i)], 0.0);
      }
    }
  }
}

TEST(ShapleyTest, ServicedSetMonotoneInBids) {
  // Raising one user's bid never shrinks the serviced set below its old
  // members (population monotonicity of the Shapley cost-share scheme).
  Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    const int m = 6;
    std::vector<double> bids;
    for (int i = 0; i < m; ++i) bids.push_back(rng.Uniform(0.0, 1.0));
    const double cost = rng.Uniform(0.1, 3.0);
    ShapleyResult base = RunShapley(cost, bids);

    std::vector<double> raised = bids;
    const int who = static_cast<int>(rng.UniformInt(0, m - 1));
    raised[static_cast<size_t>(who)] += rng.Uniform(0.0, 2.0);
    ShapleyResult after = RunShapley(cost, raised);

    for (int i = 0; i < m; ++i) {
      if (base.serviced[static_cast<size_t>(i)]) {
        EXPECT_TRUE(after.serviced[static_cast<size_t>(i)])
            << "raising user " << who << "'s bid evicted user " << i;
      }
    }
  }
}

TEST(ShapleyTest, TruthfulAgainstBidGrid) {
  // For random 4-user games, no unilateral deviation from truthful bidding
  // improves a user's utility (utility = value - payment if serviced).
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 4;
    std::vector<double> values;
    for (int i = 0; i < m; ++i) values.push_back(rng.Uniform(0.0, 1.0));
    const double cost = rng.Uniform(0.1, 2.5);

    ShapleyResult truthful = RunShapley(cost, values);
    for (int i = 0; i < m; ++i) {
      const double truthful_utility =
          truthful.serviced[static_cast<size_t>(i)]
              ? values[static_cast<size_t>(i)] -
                    truthful.payments[static_cast<size_t>(i)]
              : 0.0;
      for (double bid :
           {0.0, values[static_cast<size_t>(i)] / 2.0,
            values[static_cast<size_t>(i)] * 0.99,
            values[static_cast<size_t>(i)] * 1.01,
            values[static_cast<size_t>(i)] + 0.5, cost, cost / 2.0, 10.0}) {
        std::vector<double> bids = values;
        bids[static_cast<size_t>(i)] = bid;
        ShapleyResult dev = RunShapley(cost, bids);
        const double dev_utility =
            dev.serviced[static_cast<size_t>(i)]
                ? values[static_cast<size_t>(i)] -
                      dev.payments[static_cast<size_t>(i)]
                : 0.0;
        EXPECT_LE(dev_utility, truthful_utility + 1e-9)
            << "profitable deviation: user " << i << " bids " << bid
            << " (value " << values[static_cast<size_t>(i)] << ", cost "
            << cost << ")";
      }
    }
  }
}

}  // namespace
}  // namespace optshare
