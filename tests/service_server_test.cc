// MarketplaceServer differential and concurrency suite. The load-bearing
// guarantee: a recorded wire-protocol request stream replayed through the
// server produces PeriodReports bit-identical (payments, ledger, built
// sets — compared through the round-trip JSON encoding) to driving a
// PricingSession directly with the same tenants, for the native "addon"
// mechanism and buffered baselines alike. Plus: multi-period carry-over
// over the wire, interleaved multi-tenancy isolation, concurrent client
// threads, and the protocol error surface end to end.
#include "service/marketplace_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "common/rng.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

std::vector<simdb::SimUser> JitterTenants(std::vector<simdb::SimUser> tenants,
                                          int slots, uint64_t seed) {
  Rng rng(seed);
  return simdb::JitterTenants(std::move(tenants), slots, rng);
}

/// Runs `periods` full periods directly through PricingSession — the
/// reference the wire replay must match bit for bit.
std::vector<PeriodReport> DirectReports(
    const simdb::Catalog& catalog, const ServiceConfig& config,
    const std::vector<std::vector<simdb::SimUser>>& periods) {
  std::vector<PeriodReport> reports;
  std::vector<std::string> built;
  for (size_t p = 0; p < periods.size(); ++p) {
    Result<PricingSession> session = PricingSession::Open(
        &catalog, config, built, static_cast<int>(p) + 1);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_TRUE(session->Submit(periods[p]).ok());
    for (int slot = 0; slot < config.slots_per_period; ++slot) {
      EXPECT_TRUE(session->AdvanceSlot().ok());
    }
    Result<PeriodReport> report = session->Close();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    built = session->built_structures();
    reports.push_back(std::move(*report));
  }
  return reports;
}

/// Records the wire request stream for the same program: one open_period
/// (with a scenario catalog spec on the first), submits, slot advances,
/// and a close per period — serialized to JSON lines as a client would
/// send them.
std::vector<std::string> RecordRequestLines(
    const std::string& tenancy, const ServiceConfig& config,
    int scenario_tenants, int scenario_slots,
    const std::vector<std::vector<simdb::SimUser>>& periods) {
  std::vector<std::string> lines;
  for (size_t p = 0; p < periods.size(); ++p) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = tenancy;
    if (p == 0) {
      protocol::CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = scenario_tenants;
      catalog.scenario_slots = scenario_slots;
      open.catalog = catalog;
      open.config = config;
    }
    lines.push_back(protocol::ToJson(open).Dump());
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = tenancy;
    submit.tenants = periods[p];
    lines.push_back(protocol::ToJson(submit).Dump());
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = tenancy;
    advance.slots = config.slots_per_period;
    lines.push_back(protocol::ToJson(advance).Dump());
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = tenancy;
    lines.push_back(protocol::ToJson(close).Dump());
  }
  return lines;
}

/// Extracts the close_period report payloads from a replayed response
/// stream (every response must be ok).
std::vector<PeriodReport> ReportsFromResponses(
    const std::vector<std::string>& response_lines) {
  std::vector<PeriodReport> reports;
  for (const std::string& line : response_lines) {
    Result<JsonValue> doc = JsonValue::Parse(line);
    EXPECT_TRUE(doc.ok()) << line;
    Result<Response> response = protocol::ResponseFromJson(*doc);
    EXPECT_TRUE(response.ok()) << line;
    EXPECT_TRUE(response->ok()) << response->status.ToString();
    const JsonValue* report = response->payload.Find("report");
    if (report != nullptr) {
      Result<PeriodReport> parsed = protocol::PeriodReportFromJson(*report);
      EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
      reports.push_back(std::move(*parsed));
    }
  }
  return reports;
}

void ExpectBitIdentical(const PeriodReport& direct,
                        const PeriodReport& replayed) {
  // The JSON encoding round-trips doubles exactly, so string equality of
  // the dumps is bit-for-bit equality of payments, ledger and built set.
  EXPECT_EQ(protocol::ToJson(direct).Dump(), protocol::ToJson(replayed).Dump());
}

class ServerParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ServerParityTest, ReplayedRequestStreamMatchesDirectSessions) {
  constexpr int kTenants = 6;
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.mechanism = GetParam();

  std::vector<std::vector<simdb::SimUser>> periods;
  for (int p = 0; p < 3; ++p) {
    periods.push_back(JitterTenants(scenario->tenants, kSlots,
                                    7000 + static_cast<uint64_t>(p)));
  }
  const std::vector<PeriodReport> direct =
      DirectReports(scenario->catalog, config, periods);
  // The comparison must be about real outcomes: structures proposed, and
  // (for the paper mechanism) built with payments flowing.
  int structures = 0;
  double payments = 0.0;
  for (const PeriodReport& report : direct) {
    structures += static_cast<int>(report.structures.size());
    payments += report.ledger.TotalPayment();
  }
  ASSERT_GT(structures, 0);
  if (config.mechanism == "addon") ASSERT_GT(payments, 0.0);

  // Replay the recorded stream through a fresh server over the wire: the
  // tenancy's catalog is bootstrapped from the same scenario spec.
  MarketplaceServer server(ServerOptions{2});
  std::vector<std::string> responses;
  for (const std::string& line :
       RecordRequestLines("acme", config, kTenants, kSlots, periods)) {
    responses.push_back(server.HandleLine(line));
  }
  const std::vector<PeriodReport> replayed = ReportsFromResponses(responses);

  ASSERT_EQ(replayed.size(), direct.size());
  for (size_t p = 0; p < direct.size(); ++p) {
    ExpectBitIdentical(direct[p], replayed[p]);
  }
}

// "addon" exercises the native slot-incremental path; "naive_online" and
// "regret" the buffered baselines (the acceptance bar's two).
INSTANTIATE_TEST_SUITE_P(Mechanisms, ServerParityTest,
                         ::testing::Values("addon", "naive_online", "regret"));

TEST(MarketplaceServerTest, InterleavedTenanciesStayIsolated) {
  // Many tenancies with different workloads, requests interleaved
  // round-robin across them; every tenancy's reports must equal its own
  // serial reference exactly.
  constexpr int kTenancies = 8;
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(5, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;

  std::vector<std::vector<std::vector<simdb::SimUser>>> programs;
  std::vector<std::vector<PeriodReport>> direct;
  for (int t = 0; t < kTenancies; ++t) {
    std::vector<std::vector<simdb::SimUser>> periods;
    for (int p = 0; p < 2; ++p) {
      periods.push_back(JitterTenants(
          scenario->tenants, kSlots,
          static_cast<uint64_t>(100 * t + p)));
    }
    direct.push_back(DirectReports(scenario->catalog, config, periods));
    programs.push_back(std::move(periods));
  }

  MarketplaceServer server(ServerOptions{4});
  std::vector<std::vector<std::string>> lines;
  size_t max_lines = 0;
  for (int t = 0; t < kTenancies; ++t) {
    lines.push_back(RecordRequestLines("tenant-" + std::to_string(t), config,
                                       5, kSlots,
                                       programs[static_cast<size_t>(t)]));
    max_lines = std::max(max_lines, lines.back().size());
  }
  // Round-robin interleave: tenancy t's k-th request dispatches between
  // other tenancies' k-th requests, all in flight together.
  std::vector<std::vector<std::future<Response>>> futures(kTenancies);
  for (size_t k = 0; k < max_lines; ++k) {
    for (int t = 0; t < kTenancies; ++t) {
      const auto& mine = lines[static_cast<size_t>(t)];
      if (k >= mine.size()) continue;
      Result<Request> request = protocol::ParseRequestLine(mine[k]);
      ASSERT_TRUE(request.ok()) << request.status().ToString();
      futures[static_cast<size_t>(t)].push_back(
          server.Dispatch(std::move(*request)));
    }
  }
  for (int t = 0; t < kTenancies; ++t) {
    std::vector<std::string> responses;
    for (auto& future : futures[static_cast<size_t>(t)]) {
      responses.push_back(protocol::FormatResponseLine(future.get()));
    }
    const std::vector<PeriodReport> replayed =
        ReportsFromResponses(responses);
    ASSERT_EQ(replayed.size(), direct[static_cast<size_t>(t)].size())
        << "tenancy " << t;
    for (size_t p = 0; p < replayed.size(); ++p) {
      ExpectBitIdentical(direct[static_cast<size_t>(t)][p], replayed[p]);
    }
  }
}

TEST(MarketplaceServerTest, ConcurrentClientThreadsMatchSerialReferences) {
  // One client thread per tenancy, all hammering the server at once.
  constexpr int kClients = 6;
  constexpr int kSlots = 8;
  auto scenario = simdb::TelemetryScenario(4, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = kSlots;

  std::vector<std::vector<std::vector<simdb::SimUser>>> programs;
  std::vector<std::vector<PeriodReport>> direct;
  for (int c = 0; c < kClients; ++c) {
    std::vector<std::vector<simdb::SimUser>> periods = {JitterTenants(
        scenario->tenants, kSlots, 5000 + static_cast<uint64_t>(c))};
    direct.push_back(DirectReports(scenario->catalog, config, periods));
    programs.push_back(std::move(periods));
  }

  MarketplaceServer server(ServerOptions{4});
  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, kSlots, &server, &config, &programs,
                          &responses] {
      for (const std::string& line : RecordRequestLines(
               "client-" + std::to_string(c), config, 4, kSlots,
               programs[static_cast<size_t>(c)])) {
        responses[static_cast<size_t>(c)].push_back(server.HandleLine(line));
      }
    });
  }
  for (auto& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    const std::vector<PeriodReport> replayed =
        ReportsFromResponses(responses[static_cast<size_t>(c)]);
    ASSERT_EQ(replayed.size(), 1u);
    ExpectBitIdentical(direct[static_cast<size_t>(c)][0], replayed[0]);
  }
}

TEST(MarketplaceServerTest, CreateTenancyAndWireBootstrapAgree) {
  // A tenancy created programmatically prices exactly like one
  // bootstrapped over the wire from the same scenario.
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(5, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      JitterTenants(scenario->tenants, kSlots, 321)};

  MarketplaceServer server(ServerOptions{2});
  ASSERT_TRUE(
      server.CreateTenancy("embedded", scenario->catalog, config).ok());
  // Duplicate creation is rejected.
  EXPECT_EQ(server.CreateTenancy("embedded", scenario->catalog, config)
                .code(),
            StatusCode::kAlreadyExists);

  std::vector<std::string> wire_responses;
  for (const std::string& line :
       RecordRequestLines("wire", config, 5, kSlots, periods)) {
    wire_responses.push_back(server.HandleLine(line));
  }

  // Drive "embedded" with the same program minus the catalog spec.
  std::vector<std::string> embedded_responses;
  for (std::string line :
       RecordRequestLines("embedded", config, 5, kSlots, periods)) {
    Result<Request> request = protocol::ParseRequestLine(line);
    ASSERT_TRUE(request.ok());
    request->catalog.reset();  // The tenancy already owns its catalog.
    embedded_responses.push_back(protocol::FormatResponseLine(
        server.Handle(std::move(*request))));
  }

  const std::vector<PeriodReport> wire = ReportsFromResponses(wire_responses);
  const std::vector<PeriodReport> embedded =
      ReportsFromResponses(embedded_responses);
  ASSERT_EQ(wire.size(), 1u);
  ASSERT_EQ(embedded.size(), 1u);
  ExpectBitIdentical(wire[0], embedded[0]);
  EXPECT_EQ(server.TenancyNames(),
            (std::vector<std::string>{"embedded", "wire"}));
}

TEST(MarketplaceServerTest, ProtocolErrorSurface) {
  MarketplaceServer server(ServerOptions{2});

  const auto expect_error = [&](const std::string& line, StatusCode code) {
    Result<Response> response =
        protocol::ResponseFromJson(*JsonValue::Parse(server.HandleLine(line)));
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_FALSE(response->ok()) << line;
    EXPECT_EQ(response->status.code(), code) << line;
  };

  // Unknown tenancy.
  expect_error("{\"v\":1,\"op\":\"report\",\"tenancy\":\"ghost\"}",
               StatusCode::kNotFound);
  // First open_period without a catalog spec.
  expect_error("{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"ghost\"}",
               StatusCode::kNotFound);
  // Unknown scenario name.
  expect_error(
      "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"t\",\"catalog\":"
      "{\"scenario\":\"nope\"}}",
      StatusCode::kNotFound);
  // Bad config caught at open.
  expect_error(
      "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"t\",\"catalog\":"
      "{\"scenario\":\"telemetry\"},\"config\":{\"mechanism\":\"nope\"}}",
      StatusCode::kNotFound);
  // A working open...
  Result<Response> open = protocol::ResponseFromJson(*JsonValue::Parse(
      server.HandleLine("{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"t\","
                        "\"catalog\":{\"scenario\":\"telemetry\"}}")));
  ASSERT_TRUE(open.ok() && open->ok());
  // ... makes a second open a FailedPrecondition,
  expect_error("{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"t\"}",
               StatusCode::kFailedPrecondition);
  // a late catalog spec an InvalidArgument,
  expect_error(
      "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"t\",\"catalog\":"
      "{\"scenario\":\"telemetry\"}}",
      StatusCode::kInvalidArgument);
  // closing before the slots ran a FailedPrecondition,
  expect_error("{\"v\":1,\"op\":\"close_period\",\"tenancy\":\"t\"}",
               StatusCode::kFailedPrecondition);
  // departing an unknown tenant a NotFound,
  expect_error(
      "{\"v\":1,\"op\":\"depart\",\"tenancy\":\"t\",\"tenant\":99}",
      StatusCode::kNotFound);
  // and a parse failure still answers with exactly one error line.
  expect_error("this is not json", StatusCode::kInvalidArgument);

  // Ops against a closed (never-opened) period fail cleanly.
  ASSERT_TRUE(server.CreateTenancy("idle", simdb::Catalog{}).ok());
  expect_error("{\"v\":1,\"op\":\"advance_slot\",\"tenancy\":\"idle\"}",
               StatusCode::kFailedPrecondition);
  expect_error("{\"v\":1,\"op\":\"submit\",\"tenancy\":\"idle\","
               "\"tenants\":[]}",
               StatusCode::kFailedPrecondition);
}

TEST(MarketplaceServerTest, DistinctTenanciesDoNotQueueBehindEachOther) {
  // Regression: Dispatch once computed the shard key from request.tenancy
  // *after* the lambda init-capture had moved the request (indeterminately
  // sequenced arguments), so every request hashed the empty string onto
  // one shard. Observable symptom: a tiny request for tenancy B queued
  // behind tenancy A's heavy program. Here B must complete while A is
  // still grinding.
  constexpr int kWorkers = 2;
  MarketplaceServer server(ServerOptions{kWorkers});
  auto scenario = simdb::TelemetryScenario(800, 12);
  ASSERT_TRUE(scenario.ok());
  const std::string heavy = "heavy";
  // Pick a light tenancy whose name hashes onto the other shard (the
  // tenancy -> worker mapping is by name hash, mirrored here).
  const size_t heavy_shard =
      std::hash<std::string>{}(heavy) % static_cast<size_t>(kWorkers);
  std::string light;
  for (int i = 0; light.empty(); ++i) {
    const std::string candidate = "light-" + std::to_string(i);
    if (std::hash<std::string>{}(candidate) % static_cast<size_t>(kWorkers) !=
        heavy_shard) {
      light = candidate;
    }
  }
  ASSERT_TRUE(server.CreateTenancy(heavy, scenario->catalog).ok());
  ASSERT_TRUE(server.CreateTenancy(light, simdb::Catalog{}).ok());

  // Tenancy A runs several full periods over 800 tenants: tens of ms of
  // advisor + slot pricing queued on its shard.
  std::future<Response> heavy_done;
  for (int p = 0; p < 4; ++p) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = heavy;
    server.Dispatch(std::move(open));
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = heavy;
    submit.tenants = scenario->tenants;
    server.Dispatch(std::move(submit));
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = heavy;
    advance.slots = 12;
    server.Dispatch(std::move(advance));
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = heavy;
    heavy_done = server.Dispatch(std::move(close));
  }

  Request ping;
  ping.op = RequestOp::kReport;
  ping.tenancy = light;
  Response pong = server.Handle(std::move(ping));
  EXPECT_TRUE(pong.ok()) << pong.status.ToString();
  // The light response arrived; the heavy program must still be running
  // (if it already finished, the work was too small to discriminate and
  // the assertion below would be vacuous — keep the workload heavy).
  EXPECT_EQ(heavy_done.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "heavy program finished before the cross-shard ping returned; "
         "either sharding broke or the workload is too light";
  EXPECT_TRUE(heavy_done.get().ok());
}

TEST(MarketplaceServerTest, ReportTracksCumulativeState) {
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(5, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      JitterTenants(scenario->tenants, kSlots, 42),
      JitterTenants(scenario->tenants, kSlots, 43)};

  MarketplaceServer server(ServerOptions{1});
  std::vector<std::string> responses;
  for (const std::string& line :
       RecordRequestLines("acme", config, 5, kSlots, periods)) {
    responses.push_back(server.HandleLine(line));
  }
  const std::vector<PeriodReport> reports = ReportsFromResponses(responses);
  ASSERT_EQ(reports.size(), 2u);

  Result<Response> status = protocol::ResponseFromJson(*JsonValue::Parse(
      server.HandleLine("{\"v\":1,\"op\":\"report\",\"tenancy\":\"acme\"}")));
  ASSERT_TRUE(status.ok() && status->ok());
  const JsonValue& payload = status->payload;
  EXPECT_EQ(payload.Find("periods_run")->AsNumber(), 2.0);
  EXPECT_EQ(payload.Find("period_open")->AsBool(), false);
  const double expected_utility = reports[0].ledger.TotalUtility() +
                                  reports[1].ledger.TotalUtility();
  EXPECT_EQ(payload.Find("cumulative_utility")->AsNumber(), expected_utility);
  // The built set carried over the wire matches the final report's active
  // structures.
  std::vector<std::string> built;
  for (const JsonValue& name : payload.Find("built_structures")->AsArray()) {
    built.push_back(name.AsString());
  }
  std::vector<std::string> expected_built;
  for (const StructureOutcome& outcome : reports[1].structures) {
    if (outcome.active) expected_built.push_back(outcome.name);
  }
  EXPECT_EQ(built, expected_built);
}

TEST(MarketplaceServerTest, ServerInfoReportsReadPathCounters) {
  constexpr int kSlots = 6;
  auto scenario = simdb::TelemetryScenario(4, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      JitterTenants(scenario->tenants, kSlots, 77)};

  MarketplaceServer server(ServerOptions{2});
  for (const std::string& line :
       RecordRequestLines("acme", config, 4, kSlots, periods)) {
    server.HandleLine(line);
  }
  // Two inline-served reads against the published boundary view.
  for (int i = 0; i < 2; ++i) {
    Request read;
    read.op = RequestOp::kReport;
    read.tenancy = "acme";
    ASSERT_TRUE(server.Handle(std::move(read)).ok());
  }

  Request info;
  info.op = RequestOp::kServerInfo;
  info.version = 2;
  const Response response = server.Handle(std::move(info));
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  const JsonValue* read_path = response.payload.Find("read_path");
  ASSERT_NE(read_path, nullptr)
      << "server_info must expose the read_path section";
  EXPECT_TRUE(read_path->Find("enabled")->AsBool());
  // CreateTenancy publishes the first view, close_period republishes; every
  // mutating op published a delta; and the two reports were served inline.
  EXPECT_GE(read_path->Find("views_published")->AsNumber(), 2.0);
  EXPECT_GT(read_path->Find("delta_publishes")->AsNumber(), 0.0);
  EXPECT_GE(read_path->Find("reads_served")->AsNumber(), 2.0);
  EXPECT_EQ(read_path->Find("fallbacks")->AsNumber(), 0.0);
  EXPECT_EQ(read_path->Find("export_rows_written")->AsNumber(), 0.0);

  // Disabling the read path flips the flag and routes reads to the shards.
  ServerOptions off_options;
  off_options.num_workers = 1;
  off_options.enable_read_path = false;
  MarketplaceServer off(off_options);
  Request off_info;
  off_info.op = RequestOp::kServerInfo;
  off_info.version = 2;
  const Response off_response = off.Handle(std::move(off_info));
  ASSERT_TRUE(off_response.ok());
  const JsonValue* off_read_path = off_response.payload.Find("read_path");
  ASSERT_NE(off_read_path, nullptr);
  EXPECT_FALSE(off_read_path->Find("enabled")->AsBool());
  EXPECT_EQ(off_read_path->Find("reads_served")->AsNumber(), 0.0);
}

}  // namespace
}  // namespace optshare::service
