// Tests for the canned scenarios: they must validate, drive the advisor to
// non-trivial proposals, and flow through the full pricing pipeline.
#include "simdb/scenarios.h"

#include <gtest/gtest.h>

#include "core/accounting.h"
#include "core/add_off.h"
#include "simdb/advisor.h"

namespace optshare::simdb {
namespace {

using ScenarioFactory = Result<Scenario> (*)(int, int);

class ScenariosTest
    : public ::testing::TestWithParam<ScenarioFactory> {};

TEST_P(ScenariosTest, ValidAndAdvisable) {
  auto scenario = GetParam()(6, 12);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_FALSE(scenario->catalog.tables().empty());
  ASSERT_EQ(scenario->tenants.size(), 6u);
  for (const auto& t : scenario->tenants) {
    EXPECT_TRUE(t.workload.Validate().ok());
    EXPECT_GE(t.start, 1);
    EXPECT_LE(t.end, 12);
    EXPECT_GT(t.executions_per_slot, 0.0);
  }

  CostModel model(&scenario->catalog);
  PricingModel pricing;
  auto proposals = ProposeOptimizations(scenario->catalog, model, pricing,
                                        scenario->tenants);
  ASSERT_TRUE(proposals.ok()) << proposals.status().ToString();
  EXPECT_FALSE(proposals->empty());

  auto game = GameFromProposals(*proposals);
  ASSERT_TRUE(game.ok());
  optshare::AddOffResult r = optshare::RunAddOff(*game);
  optshare::Accounting acc = optshare::AccountAddOff(*game, r);
  EXPECT_TRUE(acc.CostRecovered());
}

TEST_P(ScenariosTest, RejectsDegenerateParameters) {
  EXPECT_FALSE(GetParam()(0, 12).ok());
  EXPECT_FALSE(GetParam()(6, 0).ok());
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenariosTest,
                         ::testing::Values(&ClickstreamScenario,
                                           &RetailScenario,
                                           &TelemetryScenario));

TEST(ScenariosTest2, TelemetryMixesTenantSizes) {
  auto scenario = TelemetryScenario(6, 12);
  ASSERT_TRUE(scenario.ok());
  double lo = 1e18, hi = 0;
  for (const auto& t : scenario->tenants) {
    lo = std::min(lo, t.executions_per_slot);
    hi = std::max(hi, t.executions_per_slot);
  }
  EXPECT_GT(hi, lo * 10);
}

TEST(ScenariosTest2, RetailCoversTwoColumns) {
  auto scenario = RetailScenario(6, 12);
  ASSERT_TRUE(scenario.ok());
  bool region = false, sku = false;
  for (const auto& t : scenario->tenants) {
    for (const auto& e : t.workload.entries) {
      for (const auto& p : e.query.predicates) {
        if (p.column == "region") region = true;
        if (p.column == "sku") sku = true;
      }
    }
  }
  EXPECT_TRUE(region);
  EXPECT_TRUE(sku);
}

}  // namespace
}  // namespace optshare::simdb
