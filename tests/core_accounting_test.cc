// Direct tests of the Accounting ledger invariants and edge cases.
#include "core/accounting.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

TEST(AccountingTest, EmptyLedger) {
  Accounting acc;
  EXPECT_DOUBLE_EQ(acc.TotalValue(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TotalPayment(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TotalUtility(), 0.0);
  EXPECT_DOUBLE_EQ(acc.CloudBalance(), 0.0);
  EXPECT_TRUE(acc.CostRecovered());  // 0 >= 0.
}

TEST(AccountingTest, LedgerArithmetic) {
  Accounting acc;
  acc.user_value = {10.0, 5.0, 0.0};
  acc.user_payment = {4.0, 4.0, 0.0};
  acc.total_cost = 8.0;
  EXPECT_DOUBLE_EQ(acc.TotalValue(), 15.0);
  EXPECT_DOUBLE_EQ(acc.TotalPayment(), 8.0);
  EXPECT_DOUBLE_EQ(acc.TotalUtility(), 7.0);
  EXPECT_DOUBLE_EQ(acc.CloudBalance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(0), 6.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(1), 1.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(2), 0.0);
  EXPECT_TRUE(acc.CostRecovered());
}

TEST(AccountingTest, UnderRecoveryDetected) {
  Accounting acc;
  acc.user_value = {10.0};
  acc.user_payment = {4.0};
  acc.total_cost = 8.0;
  EXPECT_FALSE(acc.CostRecovered());
  EXPECT_DOUBLE_EQ(acc.CloudBalance(), -4.0);
}

TEST(AccountingTest, AddOffNotImplementedIsAllZero) {
  AdditiveOfflineGame g;
  g.costs = {1000.0};
  g.bids = {{1.0}, {2.0}};
  Accounting acc = AccountAddOff(g, RunAddOff(g));
  EXPECT_DOUBLE_EQ(acc.TotalValue(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TotalPayment(), 0.0);
  EXPECT_DOUBLE_EQ(acc.total_cost, 0.0);
}

TEST(AccountingTest, SubstOffValueRequiresTrueSubstituteMembership) {
  // Mechanism grants per *declared* bids; value accrues per *true* sets.
  SubstOfflineGame declared;
  declared.costs = {50.0, 50.0};
  declared.users = {{{0}, 60.0}};
  SubstOffResult r = RunSubstOff(declared);
  ASSERT_EQ(r.grant[0], 0);

  SubstOfflineGame truth = declared;
  truth.users[0].substitutes = {1};  // Truly wants the other one.
  Accounting acc = AccountSubstOff(truth, r);
  EXPECT_DOUBLE_EQ(acc.user_value[0], 0.0);  // Granted a useless opt.
  EXPECT_DOUBLE_EQ(acc.user_payment[0], 50.0);
  EXPECT_LT(acc.UserUtility(0), 0.0);
}

TEST(AccountingTest, AddOnValueCountsServicedSlotsOnly) {
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 60.0;
  // Value exists at all three slots but service starts at t=2 (user 0's
  // residual 50 at t=1 is below the cost; user 1's arrival funds it).
  g.users = {*SlotValues::Make(1, 3, {20.0, 15.0, 15.0}),
             SlotValues::Constant(2, 3, 25.0)};
  AddOnResult r = RunAddOn(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 2);
  Accounting acc = AccountAddOn(g, r);
  // User 0's slot-1 value of 20 is lost forever; t=2..3 realize 30.
  EXPECT_DOUBLE_EQ(acc.user_value[0], 30.0);
  EXPECT_DOUBLE_EQ(acc.user_value[1], 50.0);
  EXPECT_DOUBLE_EQ(acc.user_payment[0], 30.0);
  EXPECT_DOUBLE_EQ(acc.user_payment[1], 30.0);
}

}  // namespace
}  // namespace optshare
