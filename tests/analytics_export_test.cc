// Columnar analytics export round trip: the wire `export` op streams a
// live server's ledger / structure outcomes / period totals into the
// column layout, and re-aggregating the exported columns in row order
// reproduces the server's cumulative accounting EXACTLY — double for
// double — because rows are emitted in the same order the server
// accumulated them. Plus the manifest schema, the string-dictionary and
// f64 chunk round trips, per-tenancy export, and the error surfaces.
#include "analytics/columnar.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/rng.h"
#include "service/marketplace_server.h"
#include "simdb/scenarios.h"

namespace optshare::analytics {
namespace {

using service::MarketplaceServer;
using service::ServerOptions;
using service::ServiceConfig;
using service::protocol::Request;
using service::protocol::RequestOp;
using service::protocol::Response;

/// Scratch dirs live under the working directory (the build tree when run
/// via ctest), so the suite never writes outside it.
std::string TempDir(const std::string& leaf) {
  const std::string dir = "optshare_export_test_scratch/" + leaf;
  (void)fs::RemoveAll(dir);
  return dir;
}

Response Must(MarketplaceServer& server, Request request) {
  Response response = server.Handle(std::move(request));
  EXPECT_TRUE(response.ok()) << response.status.ToString();
  return response;
}

/// Drives `periods` full periods for one tenancy on `server`.
void RunTenancy(MarketplaceServer& server, const std::string& tenancy,
                const ServiceConfig& config, int scenario_tenants,
                int scenario_slots, int periods, uint64_t seed) {
  auto scenario = simdb::TelemetryScenario(scenario_tenants, scenario_slots);
  ASSERT_TRUE(scenario.ok());
  for (int p = 0; p < periods; ++p) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = tenancy;
    if (p == 0) {
      service::protocol::CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = scenario_tenants;
      catalog.scenario_slots = scenario_slots;
      open.catalog = catalog;
      open.config = config;
    }
    Must(server, open);
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = tenancy;
    Rng rng(seed + static_cast<uint64_t>(p));
    submit.tenants =
        simdb::JitterTenants(scenario->tenants, scenario_slots, rng);
    Must(server, submit);
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = tenancy;
    advance.slots = config.slots_per_period;
    Must(server, advance);
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = tenancy;
    Must(server, close);
  }
}

TEST(ColumnarExportTest, ReaggregatingColumnsReproducesCumulativeTotals) {
  const std::string dir = TempDir("roundtrip");
  ServerOptions options;
  options.num_workers = 2;
  options.export_dir = dir;
  MarketplaceServer server(options);
  ServiceConfig config;
  RunTenancy(server, "acme", config, 6, 12, 3, 4200);
  RunTenancy(server, "bolt", config, 4, 12, 2, 4300);

  Request export_request;
  export_request.op = RequestOp::kExport;
  export_request.version = 2;
  const Response exported = Must(server, export_request);
  EXPECT_EQ(exported.payload.Find("tenancies")->AsNumber(), 2.0);
  EXPECT_EQ(exported.payload.Find("period_rows")->AsNumber(), 5.0);
  EXPECT_GT(exported.payload.Find("ledger_rows")->AsNumber(), 0.0);
  EXPECT_GT(exported.payload.Find("report_rows")->AsNumber(), 0.0);

  // The server's own accounting, straight off the live report.
  std::map<std::string, JsonValue> live;
  for (const std::string& name : {std::string("acme"), std::string("bolt")}) {
    Request report;
    report.op = RequestOp::kReport;
    report.tenancy = name;
    live.emplace(name, Must(server, report).payload);
  }

  // Re-aggregate the period columns exactly the way the server accumulates
  // (row order IS accumulation order): cumulative_balance must come out
  // bit-identical, not approximately equal.
  Result<std::vector<std::string>> period_tenancy =
      ReadStringColumn(dir, "periods.tenancy.col");
  ASSERT_TRUE(period_tenancy.ok()) << period_tenancy.status().ToString();
  Result<std::vector<double>> cloud_balance =
      ReadNumberColumn(dir, "periods.cloud_balance.col");
  ASSERT_TRUE(cloud_balance.ok()) << cloud_balance.status().ToString();
  Result<std::vector<double>> total_utility =
      ReadNumberColumn(dir, "periods.total_utility.col");
  ASSERT_TRUE(total_utility.ok());
  ASSERT_EQ(period_tenancy->size(), 5u);
  ASSERT_EQ(cloud_balance->size(), 5u);
  std::map<std::string, double> balance_sum;
  std::map<std::string, double> utility_sum;
  for (size_t row = 0; row < period_tenancy->size(); ++row) {
    balance_sum[(*period_tenancy)[row]] += (*cloud_balance)[row];
    utility_sum[(*period_tenancy)[row]] += (*total_utility)[row];
  }
  for (const auto& [name, payload] : live) {
    EXPECT_EQ(balance_sum[name],
              payload.Find("cumulative_balance")->AsNumber())
        << name;
    EXPECT_EQ(utility_sum[name],
              payload.Find("cumulative_utility")->AsNumber())
        << name;
    // Exported totals must be nontrivial or the exactness claim is hollow.
    EXPECT_NE(balance_sum[name], 0.0) << name;
  }

  // Second route to the same number: recompute each period's cloud balance
  // from the ledger table (payments in row order minus the period's cost).
  Result<std::vector<std::string>> ledger_tenancy =
      ReadStringColumn(dir, "ledger.tenancy.col");
  ASSERT_TRUE(ledger_tenancy.ok());
  Result<std::vector<double>> ledger_period =
      ReadNumberColumn(dir, "ledger.period.col");
  ASSERT_TRUE(ledger_period.ok());
  Result<std::vector<double>> ledger_payment =
      ReadNumberColumn(dir, "ledger.payment.col");
  ASSERT_TRUE(ledger_payment.ok());
  Result<std::vector<double>> period_number =
      ReadNumberColumn(dir, "periods.period.col");
  ASSERT_TRUE(period_number.ok());
  Result<std::vector<double>> period_cost =
      ReadNumberColumn(dir, "periods.total_cost.col");
  ASSERT_TRUE(period_cost.ok());
  std::map<std::string, double> recomputed;
  for (size_t row = 0; row < period_tenancy->size(); ++row) {
    double payments = 0.0;
    for (size_t l = 0; l < ledger_tenancy->size(); ++l) {
      if ((*ledger_tenancy)[l] == (*period_tenancy)[row] &&
          (*ledger_period)[l] == (*period_number)[row]) {
        payments += (*ledger_payment)[l];
      }
    }
    recomputed[(*period_tenancy)[row]] += payments - (*period_cost)[row];
  }
  for (const auto& [name, payload] : live) {
    EXPECT_EQ(recomputed[name],
              payload.Find("cumulative_balance")->AsNumber())
        << name << " (ledger recomputation)";
  }
}

TEST(ColumnarExportTest, ManifestDescribesEveryFileAndTenancy) {
  const std::string dir = TempDir("manifest");
  ServerOptions options;
  options.export_dir = dir;
  MarketplaceServer server(options);
  ServiceConfig config;
  RunTenancy(server, "acme", config, 4, 6, 2, 4400);
  Request export_request;
  export_request.op = RequestOp::kExport;
  export_request.version = 2;
  const Response exported = Must(server, export_request);

  Result<JsonValue> manifest = ReadColumnarManifest(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->Find("format")->AsString(), "optshare-columnar");
  EXPECT_EQ(manifest->Find("version")->AsNumber(), 1.0);
  const JsonValue* tables = manifest->Find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->AsArray().size(), 3u);
  int files = 1;  // The manifest itself.
  for (const JsonValue& table : tables->AsArray()) {
    // Every referenced file exists; every column agrees with the table on
    // the row count (columnar integrity: no ragged tables).
    const double rows = table.Find("rows")->AsNumber();
    EXPECT_TRUE(fs::PathExists(dir + "/" + table.Find("csv")->AsString()));
    ++files;
    for (const JsonValue& column : table.Find("columns")->AsArray()) {
      const std::string file = column.Find("file")->AsString();
      EXPECT_TRUE(fs::PathExists(dir + "/" + file)) << file;
      EXPECT_EQ(column.Find("rows")->AsNumber(), rows) << file;
      ++files;
      if (column.Find("type")->AsString() == "f64") {
        Result<std::vector<double>> values = ReadNumberColumn(dir, file);
        ASSERT_TRUE(values.ok()) << values.status().ToString();
        EXPECT_EQ(static_cast<double>(values->size()), rows) << file;
      } else {
        Result<std::vector<std::string>> values = ReadStringColumn(dir, file);
        ASSERT_TRUE(values.ok()) << values.status().ToString();
        EXPECT_EQ(static_cast<double>(values->size()), rows) << file;
      }
    }
  }
  EXPECT_EQ(exported.payload.Find("files_written")->AsNumber(),
            static_cast<double>(files));
  const JsonValue* tenancies = manifest->Find("tenancies");
  ASSERT_NE(tenancies, nullptr);
  ASSERT_EQ(tenancies->AsArray().size(), 1u);
  const JsonValue& acme = tenancies->AsArray()[0];
  EXPECT_EQ(acme.Find("name")->AsString(), "acme");
  EXPECT_EQ(acme.Find("periods_run")->AsNumber(), 2.0);
  EXPECT_EQ(acme.Find("reports_exported")->AsNumber(), 2.0);
}

TEST(ColumnarExportTest, ExportsOneTenancyWhenNamed) {
  const std::string dir = TempDir("single");
  ServerOptions options;
  options.export_dir = dir;
  MarketplaceServer server(options);
  ServiceConfig config;
  RunTenancy(server, "acme", config, 4, 6, 1, 4500);
  RunTenancy(server, "bolt", config, 4, 6, 1, 4600);
  Request export_request;
  export_request.op = RequestOp::kExport;
  export_request.version = 2;
  export_request.tenancy = "bolt";
  const Response exported = Must(server, export_request);
  EXPECT_EQ(exported.payload.Find("tenancies")->AsNumber(), 1.0);
  Result<std::vector<std::string>> names =
      ReadStringColumn(dir, "periods.tenancy.col");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "bolt");

  Request missing = export_request;
  missing.tenancy = "ghost";
  Response not_found = server.Handle(std::move(missing));
  EXPECT_EQ(not_found.status.code(), StatusCode::kNotFound)
      << not_found.status.ToString();
}

TEST(ColumnarExportTest, ExportWithoutDirectoryIsFailedPrecondition) {
  MarketplaceServer server{{}};
  Request export_request;
  export_request.op = RequestOp::kExport;
  export_request.version = 2;
  Response response = server.Handle(std::move(export_request));
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition)
      << response.status.ToString();
}

TEST(ColumnarReaderTest, RejectsCorruptChunks) {
  const std::string dir = TempDir("corrupt");
  ASSERT_TRUE(fs::EnsureDir(dir).ok());
  ASSERT_TRUE(fs::WriteFileAtomic(dir + "/bad.col", "NOPE", false).ok());
  EXPECT_FALSE(ReadNumberColumn(dir, "bad.col").ok());
  EXPECT_FALSE(ReadStringColumn(dir, "bad.col").ok());
  EXPECT_FALSE(ReadNumberColumn(dir, "absent.col").ok());
}

}  // namespace
}  // namespace optshare::analytics
