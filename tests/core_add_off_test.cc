// Tests for AddOff (paper §4.2): independent Shapley runs per additive
// optimization, aggregated payments, inherited truthfulness/cost-recovery.
#include "core/add_off.h"

#include <gtest/gtest.h>

#include "common/money.h"
#include "common/rng.h"
#include "core/accounting.h"
#include "core/strategy.h"

namespace optshare {
namespace {

AdditiveOfflineGame TwoOptGame() {
  AdditiveOfflineGame g;
  g.costs = {90.0, 50.0};
  g.bids = {
      {40.0, 0.0},   // User 0 only wants opt 0.
      {30.0, 60.0},  // User 1 wants both.
      {35.0, 10.0},  // User 2's opt-1 bid is too low once shares settle.
  };
  return g;
}

TEST(AddOffTest, IndependentPerOptimization) {
  AddOffResult r = RunAddOff(TwoOptGame());
  ASSERT_EQ(r.per_opt.size(), 2u);
  // Opt 0: shares of 30 keep everyone.
  EXPECT_TRUE(r.per_opt[0].implemented);
  EXPECT_EQ(r.per_opt[0].NumServiced(), 3);
  EXPECT_DOUBLE_EQ(r.per_opt[0].cost_share, 30.0);
  // Opt 1: only user 1 can cover the cost alone.
  EXPECT_TRUE(r.per_opt[1].implemented);
  EXPECT_EQ(r.per_opt[1].ServicedUsers(), std::vector<UserId>{1});
  EXPECT_DOUBLE_EQ(r.per_opt[1].cost_share, 50.0);
}

TEST(AddOffTest, TotalPaymentsAggregateAcrossOpts) {
  AddOffResult r = RunAddOff(TwoOptGame());
  EXPECT_DOUBLE_EQ(r.total_payment[0], 30.0);
  EXPECT_DOUBLE_EQ(r.total_payment[1], 80.0);  // 30 + 50.
  EXPECT_DOUBLE_EQ(r.total_payment[2], 30.0);
}

TEST(AddOffTest, GrantedAndImplementedHelpers) {
  AddOffResult r = RunAddOff(TwoOptGame());
  EXPECT_EQ(r.ImplementedOpts(), (std::vector<OptId>{0, 1}));
  EXPECT_TRUE(r.Granted(0, 0));
  EXPECT_FALSE(r.Granted(0, 1));
  EXPECT_TRUE(r.Granted(1, 1));
  EXPECT_DOUBLE_EQ(r.ImplementedCost({90.0, 50.0}), 140.0);
}

TEST(AddOffTest, UnaffordableOptNotImplemented) {
  AdditiveOfflineGame g;
  g.costs = {1000.0};
  g.bids = {{10.0}, {20.0}};
  AddOffResult r = RunAddOff(g);
  EXPECT_FALSE(r.per_opt[0].implemented);
  EXPECT_TRUE(r.ImplementedOpts().empty());
  EXPECT_DOUBLE_EQ(r.ImplementedCost(g.costs), 0.0);
}

TEST(AddOffTest, AccountingLedger) {
  AdditiveOfflineGame g = TwoOptGame();
  AddOffResult r = RunAddOff(g);
  Accounting acc = AccountAddOff(g, r);
  // Values realized: opt0 by all three, opt1 by user 1.
  EXPECT_DOUBLE_EQ(acc.TotalValue(), 40.0 + 30.0 + 35.0 + 60.0);
  EXPECT_DOUBLE_EQ(acc.TotalPayment(), 140.0);
  EXPECT_DOUBLE_EQ(acc.total_cost, 140.0);
  EXPECT_DOUBLE_EQ(acc.TotalUtility(), 165.0 - 140.0);
  EXPECT_DOUBLE_EQ(acc.CloudBalance(), 0.0);
  EXPECT_TRUE(acc.CostRecovered());
  EXPECT_DOUBLE_EQ(acc.UserUtility(0), 10.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(1), 10.0);  // 90 value - 80 payment.
}

TEST(AddOffTest, CollaborationBeatsIndividualPurchase) {
  // The paper's motivation: an optimization none can afford alone is funded
  // jointly.
  AdditiveOfflineGame g;
  g.costs = {100.0};
  g.bids = {{40.0}, {40.0}, {40.0}};
  AddOffResult r = RunAddOff(g);
  EXPECT_TRUE(r.per_opt[0].implemented);
  EXPECT_EQ(r.per_opt[0].NumServiced(), 3);
  EXPECT_NEAR(r.per_opt[0].cost_share, 100.0 / 3.0, 1e-12);
}

TEST(AddOffTest, MultiIdentityDoesNotHurtOthers) {
  // Proposition 2 (Alice example, §5.2), offline variant: Alice splitting
  // into identities that lower the share cannot reduce other users'
  // utility.
  AdditiveOfflineGame honest;
  honest.costs = {101.0};
  honest.bids = {{101.0}};
  for (int i = 0; i < 99; ++i) honest.bids.push_back({1.0});
  AddOffResult r1 = RunAddOff(honest);
  // Only Alice is serviced: 101/100 = 1.01 > 1 prices the others out.
  EXPECT_EQ(r1.per_opt[0].ServicedUsers(), std::vector<UserId>{0});
  EXPECT_DOUBLE_EQ(r1.total_payment[0], 101.0);

  AdditiveOfflineGame split = honest;
  split.bids.push_back({101.0});  // Alice's second identity.
  AddOffResult r2 = RunAddOff(split);
  // Now 101 bidders: share 1.0 services everyone.
  EXPECT_EQ(r2.per_opt[0].NumServiced(), 101);
  EXPECT_DOUBLE_EQ(r2.per_opt[0].cost_share, 1.0);
  // Every honest 1.0-value user now has utility 0 instead of 0 — no one is
  // worse off; Alice pays 2 instead of 101.
  EXPECT_DOUBLE_EQ(r2.total_payment[0] + r2.total_payment[100], 2.0);
  for (int i = 1; i < 100; ++i) {
    const double utility_before = 0.0;  // Unserviced.
    const double utility_after = 1.0 - r2.total_payment[static_cast<size_t>(i)];
    EXPECT_GE(utility_after + 1e-12, utility_before);
  }
}

TEST(AddOffTest, TruthfulnessViaStrategyHelper) {
  AdditiveOfflineGame g = TwoOptGame();
  Rng rng(5);
  for (UserId i = 0; i < g.num_users(); ++i) {
    const std::vector<double> truthful = g.bids[static_cast<size_t>(i)];
    const double truthful_utility = AddOffUtilityUnderBid(g, i, truthful);
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<double> dev = {rng.Uniform(0.0, 120.0),
                                 rng.Uniform(0.0, 120.0)};
      EXPECT_LE(AddOffUtilityUnderBid(g, i, dev), truthful_utility + 1e-9);
    }
  }
}

TEST(AddOffTest, EmptyGameYieldsEmptyResult) {
  AdditiveOfflineGame g;  // No users, no opts.
  AddOffResult r = RunAddOff(g);
  EXPECT_TRUE(r.per_opt.empty());
  EXPECT_TRUE(r.total_payment.empty());
}

}  // namespace
}  // namespace optshare
