// Scenario-config fuzz battery, in the service_protocol_fuzz_test.cc
// mold: seeded-random mutation of valid trace config documents fed to
// ParseTraceConfig. The invariant is narrow and absolute:
//
//   - the loader never crashes, and
//   - every input yields either a parsed config or a typed error with a
//     non-empty message (never an uninformative or mis-coded status), and
//   - anything the loader does accept expands through GenerateTrace
//     without crashing and round-trips canonically.
//
// Mutations cover byte-level damage (truncation, flips, field drops and
// duplications, splices, control characters, raw noise) and JSON-level
// type confusion (known fields swapped to wrong-typed values). Seeds are
// fixed, so a failure replays deterministically. The suite runs under
// ASan/TSan in CI via the strategy test regex.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "strategy/trace.h"

namespace optshare::strategy {
namespace {

/// Valid documents the mutators start from: the three presets, a config
/// exercising every distribution family, and minimal configs.
std::vector<std::string> BuildCorpus() {
  std::vector<std::string> corpus;
  for (const char* preset : {"clickstream", "retail", "telemetry"}) {
    Result<JsonValue> doc = PresetConfigDocument(preset, 6, 12);
    EXPECT_TRUE(doc.ok()) << preset;
    corpus.push_back(doc->Dump());
  }
  corpus.push_back(R"({
    "name": "mixed", "seed": 9, "periods": 2, "slots_per_period": 12,
    "mechanism": "addon", "maintenance_fraction": 0.25,
    "catalog": {"tables": [{"name": "t", "row_count": 1000000,
      "columns": [{"name": "a", "type": "int64",
                   "distinct_values": 1000}]}]},
    "classes": [
      {"name": "steady", "count": 8,
       "workloads": [[{"frequency": 1, "query": {"table": "t",
          "aggregate": true,
          "predicates": [{"column": "a", "selectivity": 0.001}]}}]],
       "executions": {"pareto": {"scale": 10, "alpha": 1.5, "cap": 1000}},
       "interval": {"kind": "sampled",
                    "arrival": {"process": "diurnal", "amplitude": 0.8,
                                "wavelength": 12, "phase": 0},
                    "duration": {"to_horizon": true}}},
      {"name": "crowd", "count": 4,
       "workloads": [[{"frequency": 1, "query": {"table": "t",
          "aggregate": true,
          "predicates": [{"column": "a", "selectivity": 0.001}]}}]],
       "executions": {"uniform": [5, 15]},
       "interval": {"kind": "sampled",
                    "arrival": {"process": "flash", "peak_slot": 4,
                                "width": 1, "multiplier": 20},
                    "duration": {"uniform": [1, 3]}}}],
    "departures": [{"period": 1, "slot": 6, "fraction": 0.5,
                    "class": "steady"}]})");
  corpus.push_back(R"({
    "catalog": {"scenario": "telemetry"},
    "classes": [
      {"name": "c", "count": 3,
       "workloads": [[{"frequency": 1, "query": {"table": "telemetry",
          "aggregate": true,
          "predicates": [{"column": "device", "selectivity": 2e-7}]}}]],
       "executions": {"cycle": [10, 20, 30]},
       "interval": {"kind": "staggered", "modulo": 3, "span": 6}}]})");
  corpus.push_back(R"({"catalog": {"scenario": "retail"}, "classes": []})");
  return corpus;
}

/// One seeded byte-level mutation: the same damage classes the protocol
/// fuzz battery applies to wire lines.
std::string Mutate(const std::string& line, Rng& rng) {
  std::string out = line;
  switch (rng.UniformInt(0, 6)) {
    case 0: {  // Truncation.
      if (!out.empty()) {
        out.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1)));
      }
      break;
    }
    case 1: {  // Byte flips.
      const int flips = static_cast<int>(rng.UniformInt(1, 8));
      for (int f = 0; f < flips && !out.empty(); ++f) {
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
        out[at] = static_cast<char>(rng.UniformInt(1, 255));
      }
      break;
    }
    case 2: {  // Field drop: cut from one '"' to the next ','/'}'.
      const size_t start = out.find('"', static_cast<size_t>(rng.UniformInt(
                                             0, static_cast<int64_t>(
                                                    out.size()))));
      if (start != std::string::npos) {
        const size_t end = out.find_first_of(",}", start);
        if (end != std::string::npos) out.erase(start, end - start);
      }
      break;
    }
    case 3: {  // Field duplication: re-insert a key/value slice.
      const size_t comma = out.find(',');
      const size_t brace = out.find('{');
      if (comma != std::string::npos && brace != std::string::npos &&
          brace + 1 < comma) {
        out.insert(comma, "," + out.substr(brace + 1, comma - brace - 1));
      }
      break;
    }
    case 4: {  // Splice two document halves.
      out += out.substr(out.size() / 2);
      break;
    }
    case 5: {  // Whitespace / control-character / structural injection.
      const int count = static_cast<int>(rng.UniformInt(1, 5));
      for (int c = 0; c < count; ++c) {
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(out.size())));
        const char* junk[] = {" ", "\t", "\r", "\x01", "{", "}", "\"",
                              "[", "]"};
        out.insert(at, junk[rng.UniformInt(0, 8)]);
      }
      break;
    }
    default: {  // Pure noise.
      const size_t len = static_cast<size_t>(rng.UniformInt(0, 200));
      out.clear();
      for (size_t c = 0; c < len; ++c) {
        out.push_back(static_cast<char>(rng.UniformInt(1, 255)));
      }
      break;
    }
  }
  return out;
}

/// Sum of class counts over all periods — the expansion bound that keeps
/// a mutated-but-accepted config from drawing a huge population.
int64_t PlannedTenants(const TraceConfig& config) {
  int64_t total = 0;
  for (const TenantClass& cls : config.classes) total += cls.count;
  return total * config.periods;
}

TEST(StrategyFuzzTest, LoaderNeverCrashesAndAlwaysTypesItsErrors) {
  const std::vector<std::string> corpus = BuildCorpus();
  Rng rng(20260808);
  int rejected = 0;
  constexpr int kIterations = 20000;
  for (int i = 0; i < kIterations; ++i) {
    std::string text = corpus[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(corpus.size()) - 1))];
    text = Mutate(text, rng);
    if (rng.Bernoulli(0.3)) text = Mutate(text, rng);  // Stacked damage.

    Result<TraceConfig> config = ParseTraceConfig(text);
    if (!config.ok()) {
      ++rejected;
      // Typed, contextful rejection — never a bare unknown failure.
      EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument)
          << "input: " << text;
      EXPECT_FALSE(config.status().message().empty()) << "input: " << text;
      continue;
    }
    // Whatever survived must be fully usable: canonical round trip and
    // crash-free generation (bounded — damage only edits digits in place,
    // but stay defensive).
    Result<TraceConfig> reparsed = ParseTraceConfig(ToJson(*config).Dump());
    EXPECT_TRUE(reparsed.ok()) << "accepted config fails round trip: " << text;
    if (PlannedTenants(*config) <= 100000) {
      Result<Trace> trace = GenerateTrace(*config);
      EXPECT_TRUE(trace.ok()) << "accepted config fails generation: " << text;
    }
  }
  // Sanity: the mutator really was hostile.
  EXPECT_GT(rejected, kIterations / 2);
}

TEST(StrategyFuzzTest, TypeConfusionOnKnownFieldsIsRejectedTyped) {
  const std::vector<std::string> corpus = BuildCorpus();
  // Every known field name across the schema, swapped to each of a set of
  // wrong-typed values at the top level and one level down.
  const std::vector<std::string> fields = {
      "name",     "seed",       "periods",   "slots_per_period",
      "mechanism", "maintenance_fraction", "catalog", "classes",
      "departures", "count",    "workloads", "executions", "interval",
      "kind",     "arrival",    "duration",  "process", "fraction"};
  const std::vector<JsonValue> poisons = {
      JsonValue::Str("nope"), JsonValue::Number(-3.5), JsonValue::Bool(true),
      JsonValue::MakeArray(), JsonValue::MakeObject()};
  int rejected = 0, attempts = 0;
  for (const std::string& text : corpus) {
    Result<JsonValue> doc = JsonValue::Parse(text);
    ASSERT_TRUE(doc.ok());
    for (const std::string& field : fields) {
      for (const JsonValue& poison : poisons) {
        JsonValue mutated = *doc;
        // Poison at the top level and inside a random class when present.
        mutated.Set(field, poison);
        ++attempts;
        Result<TraceConfig> config = ParseTraceConfig(mutated.Dump());
        if (!config.ok()) {
          ++rejected;
          EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument)
              << field << " <- " << poison.Dump();
          EXPECT_FALSE(config.status().message().empty());
        }
      }
    }
  }
  // Almost every poisoning must be caught (unknown-at-top-level fields are
  // rejected outright; known fields fail their type checks).
  EXPECT_GT(rejected, attempts * 9 / 10);
}

}  // namespace
}  // namespace optshare::strategy
