// Tests for the sharded worker pool: per-key FIFO ordering, cross-key
// concurrency, Drain semantics, and destructor draining.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace optshare {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.num_threads(), 1);
}

TEST(ThreadPoolTest, SameKeyExecutesInPostOrder) {
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::vector<int> order;
  order.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Post(7, [i, &order] { order.push_back(i); });
  }
  pool.Drain();
  ASSERT_EQ(order.size(), static_cast<size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(order[static_cast<size_t>(i)], i) << "task " << i;
  }
}

TEST(ThreadPoolTest, EveryKeyOfOneShardStaysOrdered) {
  ThreadPool pool(3);
  // Keys 2 and 5 land on shard 2 of 3: their combined stream is FIFO.
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    pool.Post(i % 2 == 0 ? 2 : 5, [i, &order] { order.push_back(i); });
  }
  pool.Drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, DistinctShardsRunConcurrently) {
  ThreadPool pool(2);
  // Shard 0 blocks until shard 1 has run: only possible if the two shards
  // execute on different threads.
  std::mutex mu;
  std::condition_variable cv;
  bool shard1_ran = false;
  pool.Post(0, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return shard1_ran; });
  });
  pool.Post(1, [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      shard1_ran = true;
    }
    cv.notify_one();
  });
  pool.Drain();
  EXPECT_TRUE(shard1_ran);
}

TEST(ThreadPoolTest, DrainWaitsForPostedTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Post(static_cast<size_t>(i), [&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, DestructorRunsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Post(static_cast<size_t>(i), [&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ConcurrentPostersKeepPerKeyOrder) {
  ThreadPool pool(4);
  // Each poster thread owns one key; its own sequence must stay ordered no
  // matter how posts interleave across threads.
  constexpr int kPosters = 4;
  constexpr int kPerPoster = 500;
  std::vector<std::vector<int>> seen(kPosters);
  std::vector<std::thread> posters;
  for (int p = 0; p < kPosters; ++p) {
    posters.emplace_back([p, &pool, &seen] {
      for (int i = 0; i < kPerPoster; ++i) {
        pool.Post(static_cast<size_t>(p),
                  [p, i, &seen] { seen[static_cast<size_t>(p)].push_back(i); });
      }
    });
  }
  for (auto& poster : posters) poster.join();
  pool.Drain();
  for (int p = 0; p < kPosters; ++p) {
    ASSERT_EQ(seen[static_cast<size_t>(p)].size(),
              static_cast<size_t>(kPerPoster));
    for (int i = 0; i < kPerPoster; ++i) {
      ASSERT_EQ(seen[static_cast<size_t>(p)][static_cast<size_t>(i)], i);
    }
  }
}

}  // namespace
}  // namespace optshare
