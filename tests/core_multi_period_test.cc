// Tests for multi-period service chaining (§5's repurchase-each-period
// model).
#include "core/multi_period.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

ServicePeriod MakePeriod(double cost, std::vector<SlotValues> users) {
  ServicePeriod p;
  p.game.num_slots = 4;
  p.game.cost = cost;
  p.game.users = std::move(users);
  return p;
}

TEST(MultiPeriodTest, IndependentPeriods) {
  std::vector<ServicePeriod> periods;
  periods.push_back(MakePeriod(
      100.0, {SlotValues::Single(1, 80.0), SlotValues::Single(1, 70.0)}));
  periods.push_back(MakePeriod(100.0, {SlotValues::Single(2, 30.0)}));

  MultiPeriodResult r = RunMultiPeriod(periods);
  ASSERT_EQ(r.per_period.size(), 2u);
  EXPECT_TRUE(r.per_period[0].implemented);
  EXPECT_FALSE(r.per_period[1].implemented);  // 30 < 100, no discount.
  EXPECT_TRUE(r.AllPeriodsRecovered());
  EXPECT_DOUBLE_EQ(r.TotalCost(), 100.0);
  EXPECT_DOUBLE_EQ(r.TotalUtility(), 150.0 - 100.0);
}

TEST(MultiPeriodTest, RebuildDiscountKeepsStructureAlive) {
  // Same setup, but once built the re-purchase price is maintenance-only
  // (20%): period 2's single user can now afford it.
  std::vector<ServicePeriod> periods;
  periods.push_back(MakePeriod(
      100.0, {SlotValues::Single(1, 80.0), SlotValues::Single(1, 70.0)}));
  periods.push_back(MakePeriod(100.0, {SlotValues::Single(2, 30.0)}));

  MultiPeriodResult r = RunMultiPeriod(periods, /*rebuild_discount=*/0.2);
  EXPECT_TRUE(r.per_period[0].implemented);
  EXPECT_TRUE(r.per_period[1].implemented);
  EXPECT_DOUBLE_EQ(r.ledgers[1].total_cost, 20.0);
  EXPECT_DOUBLE_EQ(r.ledgers[1].TotalPayment(), 20.0);
  EXPECT_TRUE(r.AllPeriodsRecovered());
}

TEST(MultiPeriodTest, DiscountOnlyAfterFirstBuild) {
  // Period 1 fails to fund; period 2 must still pay the full price.
  std::vector<ServicePeriod> periods;
  periods.push_back(MakePeriod(100.0, {SlotValues::Single(1, 10.0)}));
  periods.push_back(MakePeriod(100.0, {SlotValues::Single(1, 50.0)}));
  MultiPeriodResult r = RunMultiPeriod(periods, 0.2);
  EXPECT_FALSE(r.per_period[0].implemented);
  EXPECT_FALSE(r.per_period[1].implemented);  // 50 < 100: full price holds.
  EXPECT_DOUBLE_EQ(r.TotalCost(), 0.0);
}

TEST(MultiPeriodTest, LedgerAggregation) {
  std::vector<ServicePeriod> periods;
  periods.push_back(MakePeriod(
      60.0, {SlotValues::Single(1, 40.0), SlotValues::Single(1, 40.0)}));
  periods.push_back(MakePeriod(
      60.0, {SlotValues::Single(3, 45.0), SlotValues::Single(3, 35.0)}));
  MultiPeriodResult r = RunMultiPeriod(periods);
  EXPECT_DOUBLE_EQ(r.TotalCost(), 120.0);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 120.0);
  EXPECT_DOUBLE_EQ(r.TotalUtility(), (80.0 - 60.0) + (80.0 - 60.0));
}

TEST(MultiPeriodTest, EmptyChain) {
  MultiPeriodResult r = RunMultiPeriod({});
  EXPECT_TRUE(r.per_period.empty());
  EXPECT_DOUBLE_EQ(r.TotalUtility(), 0.0);
  EXPECT_TRUE(r.AllPeriodsRecovered());
}

}  // namespace
}  // namespace optshare
