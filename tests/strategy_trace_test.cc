// Trace engine suite: determinism (one config document, byte-identical
// traces forever), the distribution shapes the schema promises (diurnal
// cycles, flash crowds, heavy tails, correlated mass-departures), strict
// typed rejection of malformed documents, the pinned preset regression
// (simdb/scenarios.cc now expands PresetConfigDocument, and these tests
// hard-code the historical formulas so the rewrite can never drift), and
// the wire soak: a generated trace's request program replayed through a
// real MarketplaceServer, twice, to identical reports.
#include "strategy/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "service/marketplace_server.h"
#include "simdb/scenarios.h"
#include "strategy/harness.h"

namespace optshare::strategy {
namespace {

/// A document exercising every distribution family at once.
constexpr char kMixedConfig[] = R"({
  "name": "mixed", "seed": 99, "periods": 3, "slots_per_period": 24,
  "mechanism": "addon", "maintenance_fraction": 0.25,
  "catalog": {"tables": [{"name": "telemetry", "row_count": 1000000000,
    "columns": [{"name": "device", "type": "int64",
                 "distinct_values": 5000000}]}]},
  "classes": [
    {"name": "steady", "count": 60,
     "workloads": [[{"frequency": 1, "query": {"table": "telemetry",
        "aggregate": true,
        "predicates": [{"column": "device", "selectivity": 2e-7}]}}]],
     "executions": {"pareto": {"scale": 100, "alpha": 1.2, "cap": 100000}},
     "interval": {"kind": "sampled",
                  "arrival": {"process": "diurnal", "amplitude": 0.9,
                              "wavelength": 24, "phase": 0},
                  "duration": {"to_horizon": true}}},
    {"name": "crowd", "count": 40,
     "workloads": [[{"frequency": 1, "query": {"table": "telemetry",
        "aggregate": true,
        "predicates": [{"column": "device", "selectivity": 2e-7}]}}]],
     "executions": {"uniform": [50, 150]},
     "interval": {"kind": "sampled",
                  "arrival": {"process": "flash", "peak_slot": 10,
                              "width": 1, "multiplier": 30},
                  "duration": {"uniform": [2, 5]}}}
  ],
  "departures": [{"period": 2, "slot": 12, "fraction": 0.5,
                  "class": "steady"}]
})";

Result<TraceConfig> ParseMixed() { return ParseTraceConfig(kMixedConfig); }

// -- Determinism ------------------------------------------------------------

TEST(StrategyTraceTest, SameConfigProducesByteIdenticalTraces) {
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  auto first = GenerateTrace(*config);
  auto second = GenerateTrace(*config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(ToJson(*first).Dump(), ToJson(*second).Dump());

  // A round-tripped document (parse -> serialize -> parse) draws the same
  // trace: the canonical form carries everything the generator reads.
  auto reparsed = ParseTraceConfig(ToJson(*config).Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  auto third = GenerateTrace(*reparsed);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(ToJson(*first).Dump(), ToJson(*third).Dump());
}

TEST(StrategyTraceTest, ConfigDocumentRoundTripsCanonically) {
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok());
  const std::string canonical = ToJson(*config).Dump();
  auto reparsed = ParseTraceConfig(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(ToJson(*reparsed).Dump(), canonical);
}

TEST(StrategyTraceTest, DifferentSeedsDrawDifferentPopulations) {
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok());
  auto base = GenerateTrace(*config);
  config->seed = 100;
  auto other = GenerateTrace(*config);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_NE(ToJson(*base).Dump(), ToJson(*other).Dump());
}

TEST(StrategyTraceTest, PeriodsDrawFromIndependentStreams) {
  // Shrinking the horizon from 3 periods to 2 must not perturb the
  // surviving periods' draws: each period forks its own stream.
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok());
  auto three = GenerateTrace(*config);
  config->periods = 2;
  auto two = GenerateTrace(*config);
  ASSERT_TRUE(three.ok());
  ASSERT_TRUE(two.ok());
  ASSERT_EQ(two->periods.size(), 2u);
  for (size_t p = 0; p < 2; ++p) {
    EXPECT_EQ(ToJson(*two).Find("periods")->AsArray()[p].Dump(),
              ToJson(*three).Find("periods")->AsArray()[p].Dump());
  }
}

// -- Shape ------------------------------------------------------------------

TEST(StrategyTraceTest, FlashCrowdSpikesAroundThePeakSlot) {
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok());
  auto trace = GenerateTrace(*config);
  ASSERT_TRUE(trace.ok());
  const TracePeriod& period = trace->periods.front();
  const std::vector<int> histogram = ArrivalHistogram(period, 24);

  // Count only the crowd class (the steady class arrives diurnally).
  std::vector<int> crowd(24, 0);
  for (const TraceTenant& tenant : period.tenants) {
    if (tenant.class_index == 1) {
      crowd[static_cast<size_t>(tenant.tenant.start - 1)]++;
    }
  }
  int spike = 0, off = 0;
  for (int s = 1; s <= 24; ++s) {
    (s >= 9 && s <= 11 ? spike : off) += crowd[static_cast<size_t>(s - 1)];
  }
  // 3 spike slots at weight 30 vs 21 slots at weight 1: the spike holds
  // ~81% of the mass in expectation. Half is a generous deterministic bar.
  EXPECT_GT(spike, 20) << "spike " << spike << " of 40";
  EXPECT_GT(spike, off);
  // The full histogram covers every tenant exactly once.
  int total = 0;
  for (int count : histogram) total += count;
  EXPECT_EQ(total, static_cast<int>(period.tenants.size()));
}

TEST(StrategyTraceTest, DiurnalArrivalsFollowTheCycle) {
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok());
  auto trace = GenerateTrace(*config);
  ASSERT_TRUE(trace.ok());
  // Weight 1 + 0.9*sin(2*pi*(s-1)/24): the first half-cycle (slots 1..12)
  // is the crest, the second half the trough. Aggregate over all periods
  // for statistical weight (180 steady draws).
  int crest = 0, trough = 0;
  for (const TracePeriod& period : trace->periods) {
    for (const TraceTenant& tenant : period.tenants) {
      if (tenant.class_index != 0) continue;
      (tenant.tenant.start <= 12 ? crest : trough)++;
    }
  }
  EXPECT_GT(crest, trough * 2) << crest << " vs " << trough;
}

TEST(StrategyTraceTest, ParetoIntensitiesAreHeavyTailed) {
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok());
  auto trace = GenerateTrace(*config);
  ASSERT_TRUE(trace.ok());
  // The mixed period's tail is dominated by the Pareto class; a bounded
  // distribution (uniform [50, 150]) alone cannot exceed max/median 3.
  EXPECT_GT(TailRatio(trace->periods.front()), 10.0);

  // Control: an all-uniform population stays near 1.
  auto bounded = ParseMixed();
  ASSERT_TRUE(bounded.ok());
  bounded->classes[0].executions.kind = ExecutionsSpec::Kind::kUniform;
  bounded->classes[0].executions.lo = 50.0;
  bounded->classes[0].executions.hi = 150.0;
  auto control = GenerateTrace(*bounded);
  ASSERT_TRUE(control.ok());
  EXPECT_LT(TailRatio(control->periods.front()), 3.5);

  // The cap clamps the tail.
  auto capped = ParseMixed();
  ASSERT_TRUE(capped.ok());
  capped->classes[0].executions.cap = 120.0;
  auto clamped = GenerateTrace(*capped);
  ASSERT_TRUE(clamped.ok());
  for (const TraceTenant& tenant : clamped->periods.front().tenants) {
    if (tenant.class_index == 0) {
      EXPECT_LE(tenant.tenant.executions_per_slot, 120.0);
    }
  }
}

TEST(StrategyTraceTest, MassDeparturesAreCorrelatedAndSorted) {
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok());
  auto trace = GenerateTrace(*config);
  ASSERT_TRUE(trace.ok());
  // The exodus fires in period 2 only, at slot 12, on the steady class.
  EXPECT_TRUE(trace->periods[0].departures.empty());
  EXPECT_TRUE(trace->periods[2].departures.empty());
  const TracePeriod& hit = trace->periods[1];
  ASSERT_FALSE(hit.departures.empty());

  int steady_present = 0;
  for (const TraceTenant& tenant : hit.tenants) {
    if (tenant.class_index == 0 && tenant.tenant.start <= 12 &&
        tenant.tenant.end > 12) {
      ++steady_present;
    }
  }
  // Half of the then-present steady tenants leave, rounded to nearest.
  EXPECT_EQ(static_cast<int>(hit.departures.size()),
            static_cast<int>(steady_present * 0.5 + 0.5));
  for (size_t d = 0; d < hit.departures.size(); ++d) {
    const TraceDeparture& departure = hit.departures[d];
    EXPECT_EQ(departure.slot, 12);
    const TraceTenant& victim =
        hit.tenants[static_cast<size_t>(departure.tenant_index)];
    EXPECT_EQ(victim.class_index, 0);       // Only the named class.
    EXPECT_LE(victim.tenant.start, 12);     // Present when it fired.
    EXPECT_GT(victim.tenant.end, 12);
    if (d > 0) {  // Sorted by (slot, tenant_index).
      EXPECT_LT(hit.departures[d - 1].tenant_index, departure.tenant_index);
    }
  }
}

// -- Strict parsing ---------------------------------------------------------

struct BadDocCase {
  const char* label;
  const char* mutation;  ///< JSON document (whole).
  const char* want;      ///< Substring of the error message.
};

class StrategyTraceBadDocTest : public ::testing::TestWithParam<BadDocCase> {};

TEST_P(StrategyTraceBadDocTest, RejectedWithTypedError) {
  const BadDocCase& bad = GetParam();
  auto config = ParseTraceConfig(bad.mutation);
  ASSERT_FALSE(config.ok()) << bad.label;
  EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument)
      << bad.label << ": " << config.status().ToString();
  EXPECT_NE(config.status().ToString().find(bad.want), std::string::npos)
      << bad.label << ": " << config.status().ToString();
}

constexpr char kMinimalClasses[] =
    R"("classes": [{"name": "c", "count": 1,
        "workloads": [[{"frequency": 1, "query": {"table": "t",
          "aggregate": true,
          "predicates": [{"column": "a", "selectivity": 0.1}]}}]],
        "executions": {"fixed": 10},
        "interval": {"kind": "full"}}])";

INSTANTIATE_TEST_SUITE_P(
    MalformedDocuments, StrategyTraceBadDocTest,
    ::testing::Values(
        BadDocCase{"not an object", R"(["not", "an", "object"])", "trace"},
        BadDocCase{"unknown top-level field",
                   R"({"catalog": {"scenario": "telemetry"}, "bogus": 1})",
                   "unknown field \"bogus\""},
        BadDocCase{"missing catalog", R"({"periods": 2})", "catalog"},
        BadDocCase{"both catalog sources",
                   R"({"classes": [],
                       "catalog": {"scenario": "telemetry",
                       "tables": [{"name": "t", "row_count": 10,
                                   "columns": [{"name": "a",
                                     "type": "int64",
                                     "distinct_values": 10}]}]}})",
                   "catalog"},
        BadDocCase{"zero periods",
                   R"({"periods": 0, "classes": [],
                       "catalog": {"scenario": "telemetry"}})",
                   "periods"},
        BadDocCase{"mechanism wrong type",
                   R"({"mechanism": 7,
                       "catalog": {"scenario": "telemetry"}})",
                   "mechanism"},
        BadDocCase{"maintenance out of range",
                   R"({"maintenance_fraction": 1.5, "classes": [],
                       "catalog": {"scenario": "telemetry"}})",
                   "maintenance_fraction"},
        BadDocCase{"unknown arrival process",
                   R"({"catalog": {"scenario": "telemetry"},
                       "classes": [{"name": "c", "count": 1,
                        "workloads": [[{"frequency": 1, "query":
                          {"table": "t", "aggregate": true, "predicates":
                           [{"column": "a", "selectivity": 0.1}]}}]],
                        "executions": {"fixed": 1},
                        "interval": {"kind": "sampled",
                          "arrival": {"process": "lunar"},
                          "duration": {"to_horizon": true}}}]})",
                   "arrival"},
        BadDocCase{"two executions kinds",
                   R"({"catalog": {"scenario": "telemetry"},
                       "classes": [{"name": "c", "count": 1,
                        "workloads": [[{"frequency": 1, "query":
                          {"table": "t", "aggregate": true, "predicates":
                           [{"column": "a", "selectivity": 0.1}]}}]],
                        "executions": {"fixed": 1, "uniform": [1, 2]},
                        "interval": {"kind": "full"}}]})",
                   "executions"},
        BadDocCase{"duration empty object",
                   R"({"catalog": {"scenario": "telemetry"},
                       "classes": [{"name": "c", "count": 1,
                        "workloads": [[{"frequency": 1, "query":
                          {"table": "t", "aggregate": true, "predicates":
                           [{"column": "a", "selectivity": 0.1}]}}]],
                        "executions": {"fixed": 1},
                        "interval": {"kind": "sampled",
                          "arrival": {"process": "uniform"},
                          "duration": {}}}]})",
                   "duration"},
        BadDocCase{"departure fraction out of range",
                   R"({"catalog": {"scenario": "telemetry"}, "classes": [],
                       "departures": [{"period": 1, "slot": 1,
                                       "fraction": 2.0}]})",
                   "fraction"},
        BadDocCase{"departure names unknown class",
                   R"({"catalog": {"scenario": "telemetry"}, "classes": [],
                       "departures": [{"period": 1, "slot": 1,
                                       "fraction": 0.5,
                                       "class": "ghosts"}]})",
                   "ghosts"}));

TEST(StrategyTraceTest, DuplicateClassNamesRejected) {
  std::string doc = std::string(R"({"catalog": {"scenario": "telemetry"},)") +
                    kMinimalClasses + "}";
  // Make it two classes of the same name.
  auto parsed = ParseTraceConfig(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  parsed->classes.push_back(parsed->classes.front());
  EXPECT_EQ(parsed->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(StrategyTraceTest, UnknownScenarioCatalogFailsOnBuild) {
  TraceCatalog catalog;
  catalog.scenario = "galaxies";
  auto built = BuildTraceCatalog(catalog);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kNotFound);
}

// -- Preset regression ------------------------------------------------------
//
// simdb/scenarios.cc historically hard-coded these populations in C++;
// they are now expanded from PresetConfigDocument through GenerateTrace.
// These literals pin the historical formulas bit for bit.

TEST(StrategyTraceTest, TelemetryPresetPinnedToHistoricalDraws) {
  auto scenario = simdb::TelemetryScenario(6, 12);
  ASSERT_TRUE(scenario.ok());
  ASSERT_EQ(scenario->tenants.size(), 6u);
  const double cycle[] = {2500.0, 150.0, 150.0};
  for (size_t i = 0; i < 6; ++i) {
    const simdb::SimUser& tenant = scenario->tenants[i];
    EXPECT_EQ(tenant.start, 1);
    EXPECT_EQ(tenant.end, 12);
    EXPECT_EQ(tenant.executions_per_slot, cycle[i % 3]) << i;
    ASSERT_EQ(tenant.workload.entries.size(), 1u);
    EXPECT_EQ(tenant.workload.entries[0].query.table, "telemetry");
    ASSERT_EQ(tenant.workload.entries[0].query.predicates.size(), 1u);
    EXPECT_EQ(tenant.workload.entries[0].query.predicates[0].column,
              "device");
    EXPECT_EQ(tenant.workload.entries[0].query.predicates[0].selectivity,
              2e-7);
  }
}

TEST(StrategyTraceTest, ClickstreamPresetPinnedToHistoricalDraws) {
  auto scenario = simdb::ClickstreamScenario(8, 12);
  ASSERT_TRUE(scenario.ok());
  ASSERT_EQ(scenario->tenants.size(), 8u);
  const double cycle[] = {200.0, 400.0, 600.0, 800.0};
  for (size_t i = 0; i < 8; ++i) {
    const simdb::SimUser& tenant = scenario->tenants[i];
    // Staggered: start = 1 + (i % (slots/2)), end = min(start + slots/2, z).
    const TimeSlot start = 1 + static_cast<TimeSlot>(i % 6);
    EXPECT_EQ(tenant.start, start) << i;
    EXPECT_EQ(tenant.end, std::min<TimeSlot>(start + 6, 12)) << i;
    EXPECT_EQ(tenant.executions_per_slot, cycle[i % 4]) << i;
    EXPECT_EQ(tenant.workload.entries[0].query.table, "events");
  }
}

TEST(StrategyTraceTest, RetailPresetPinnedToHistoricalDraws) {
  auto scenario = simdb::RetailScenario(5, 12);
  ASSERT_TRUE(scenario.ok());
  ASSERT_EQ(scenario->tenants.size(), 5u);
  const double cycle[] = {50.0, 100.0, 150.0};
  for (size_t i = 0; i < 5; ++i) {
    const simdb::SimUser& tenant = scenario->tenants[i];
    EXPECT_EQ(tenant.start, 1);
    EXPECT_EQ(tenant.end, 12);
    EXPECT_EQ(tenant.executions_per_slot, cycle[i % 3]) << i;
    // Workload templates alternate region rollups and sku drill-downs.
    const std::string column =
        tenant.workload.entries[0].query.predicates[0].column;
    EXPECT_EQ(column, i % 2 == 0 ? "region" : "sku") << i;
  }
}

TEST(StrategyTraceTest, PresetDocumentsMatchScenarioEntryPoints) {
  // The C++ entry points are thin adapters over the documents: expanding
  // the document by hand reproduces their tenants exactly.
  for (const char* name : {"clickstream", "retail", "telemetry"}) {
    auto doc = PresetConfigDocument(name, 6, 12);
    ASSERT_TRUE(doc.ok()) << name;
    auto config = TraceConfigFromJson(*doc);
    ASSERT_TRUE(config.ok()) << name << ": " << config.status().ToString();
    auto trace = GenerateTrace(*config);
    ASSERT_TRUE(trace.ok()) << name;
    ASSERT_EQ(trace->periods.size(), 1u);

    auto scenario = name == std::string("clickstream")
                        ? simdb::ClickstreamScenario(6, 12)
                        : name == std::string("retail")
                              ? simdb::RetailScenario(6, 12)
                              : simdb::TelemetryScenario(6, 12);
    ASSERT_TRUE(scenario.ok()) << name;
    ASSERT_EQ(trace->periods[0].tenants.size(), scenario->tenants.size());
    for (size_t i = 0; i < scenario->tenants.size(); ++i) {
      const simdb::SimUser& expanded = trace->periods[0].tenants[i].tenant;
      const simdb::SimUser& canned = scenario->tenants[i];
      EXPECT_EQ(expanded.start, canned.start) << name << " tenant " << i;
      EXPECT_EQ(expanded.end, canned.end) << name << " tenant " << i;
      EXPECT_EQ(expanded.executions_per_slot, canned.executions_per_slot)
          << name << " tenant " << i;
    }
  }
  EXPECT_FALSE(PresetConfigDocument("galaxies", 6, 12).ok());
  EXPECT_FALSE(PresetConfigDocument("telemetry", 0, 12).ok());
}

// -- Wire soak --------------------------------------------------------------

TEST(StrategyTraceTest, TraceProgramReplaysThroughTheServerDeterministically) {
  auto config = ParseMixed();
  ASSERT_TRUE(config.ok());
  // Small enough to stay fast, big enough to carry structures.
  config->classes[0].count = 10;
  config->classes[1].count = 6;
  auto trace = GenerateTrace(*config);
  ASSERT_TRUE(trace.ok());
  auto lines = TraceRequestLines(*config, *trace, "soak");
  ASSERT_TRUE(lines.ok()) << lines.status().ToString();

  std::vector<std::string> close_lines[2];
  for (int run = 0; run < 2; ++run) {
    service::MarketplaceServer server(service::ServerOptions{2});
    for (const std::string& line : *lines) {
      const std::string response = server.HandleLine(line);
      ASSERT_NE(response.find("\"ok\":true"), std::string::npos)
          << "request " << line << " -> " << response;
      if (line.find("close_period") != std::string::npos) {
        close_lines[run].push_back(response);
      }
    }
  }
  ASSERT_EQ(close_lines[0].size(), 3u);  // One report per period.
  EXPECT_EQ(close_lines[0], close_lines[1]);
}

}  // namespace
}  // namespace optshare::strategy
