// Tests for SubstOn (paper §6.2, Mechanism 4), tracing Example 8 and the
// no-switching rule it illustrates.
#include "core/subst_on.h"

#include <gtest/gtest.h>

#include "core/accounting.h"
#include "core/strategy.h"

namespace optshare {
namespace {

// Paper Example 8 (0-indexed): costs C0=60, C1=100, C2=50. User 0 bids
// (1,2,100,{0,1}); user 1 bids (2,3,100,{0,1,2}); user 2 bids (3,3,100,{2}).
// The paper states each user's value for the whole interval; the mechanism
// only consumes residual sums, so we spread each value evenly.
SubstOnlineGame Example8Game() {
  SubstOnlineGame g;
  g.num_slots = 3;
  g.costs = {60.0, 100.0, 50.0};
  g.users = {
      {SlotValues::Constant(1, 2, 50.0), {0, 1}},
      {SlotValues::Constant(2, 3, 50.0), {0, 1, 2}},
      {SlotValues::Single(3, 100.0), {2}},
  };
  return g;
}

TEST(SubstOnTest, Example8Grants) {
  SubstOnResult r = RunSubstOn(Example8Game());
  // t=1: only user 0 -> opt 0 implemented (share 60 <= 100 residual).
  EXPECT_EQ(r.implemented_at[0], 1);
  EXPECT_EQ(r.grant[0], 0);
  EXPECT_EQ(r.grant_slot[0], 1);
  // t=2: user 1 joins opt 0 (share 30).
  EXPECT_EQ(r.grant[1], 0);
  EXPECT_EQ(r.grant_slot[1], 2);
  // t=3: opt 2 implemented for user 2 alone.
  EXPECT_EQ(r.implemented_at[2], 3);
  EXPECT_EQ(r.grant[2], 2);
  // Opt 1 never implemented.
  EXPECT_EQ(r.implemented_at[1], 0);
  EXPECT_EQ(r.ImplementedOpts(), (std::vector<OptId>{0, 2}));
}

TEST(SubstOnTest, Example8Payments) {
  SubstOnResult r = RunSubstOn(Example8Game());
  // User 0 leaves at t=2 paying 60/2 = 30; user 1 ends at t=3 paying 30
  // (user 0 stays in the cost-share computation after leaving); user 2
  // pays 50.
  EXPECT_DOUBLE_EQ(r.payments[0], 30.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 30.0);
  EXPECT_DOUBLE_EQ(r.payments[2], 50.0);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 110.0);
  EXPECT_DOUBLE_EQ(r.ImplementedCost(Example8Game().costs), 110.0);
}

TEST(SubstOnTest, Example8NoSwitching) {
  // User 1 is pinned to opt 0 from t=2; at t=3 she must not be migrated to
  // the cheaper opt 2 (the paper shows switching would break
  // truthfulness).
  SubstOnResult r = RunSubstOn(Example8Game());
  EXPECT_EQ(r.grant[1], 0);
  // Opt 2 is implemented for user 2 alone at share 50, not 50/2.
  EXPECT_DOUBLE_EQ(r.payments[2], 50.0);
}

TEST(SubstOnTest, Example8Accounting) {
  SubstOnlineGame g = Example8Game();
  SubstOnResult r = RunSubstOn(g);
  Accounting acc = AccountSubstOn(g, r);
  // User 0 serviced t=1..2 (value 100); user 1 serviced t=2..3 (value
  // 100); user 2 serviced t=3 (value 100).
  EXPECT_DOUBLE_EQ(acc.TotalValue(), 300.0);
  EXPECT_DOUBLE_EQ(acc.total_cost, 110.0);
  EXPECT_DOUBLE_EQ(acc.TotalUtility(), 190.0);
  EXPECT_TRUE(acc.CostRecovered());
  EXPECT_DOUBLE_EQ(acc.UserUtility(0), 70.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(1), 70.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(2), 50.0);
}

TEST(SubstOnTest, LateBidderCannotForceSwitch) {
  // Example 8's closing remark: a user 3 arriving at t=3 wanting {0, 2}
  // and bidding only for opt 2 cannot make user 1 switch: she shares
  // opt 2's cost only with user 2.
  SubstOnlineGame g = Example8Game();
  g.users.push_back({SlotValues::Single(3, 100.0), {2}});
  SubstOnResult r = RunSubstOn(g);
  EXPECT_EQ(r.grant[1], 0);  // Still on opt 0.
  EXPECT_DOUBLE_EQ(r.payments[1], 30.0);
  EXPECT_EQ(r.grant[2], 2);
  EXPECT_EQ(r.grant[3], 2);
  EXPECT_DOUBLE_EQ(r.payments[2], 25.0);  // 50/2.
  EXPECT_DOUBLE_EQ(r.payments[3], 25.0);
}

TEST(SubstOnTest, NothingFeasible) {
  SubstOnlineGame g;
  g.num_slots = 2;
  g.costs = {1000.0};
  g.users = {{SlotValues::Constant(1, 2, 5.0), {0}}};
  SubstOnResult r = RunSubstOn(g);
  EXPECT_TRUE(r.ImplementedOpts().empty());
  EXPECT_EQ(r.grant[0], kNoOpt);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
}

TEST(SubstOnTest, SingleSlotReducesToSubstOff) {
  SubstOnlineGame g;
  g.num_slots = 1;
  g.costs = {60.0, 180.0, 100.0};
  g.users = {
      {SlotValues::Single(1, 100.0), {0, 1}},
      {SlotValues::Single(1, 101.0), {2}},
      {SlotValues::Single(1, 60.0), {0, 1, 2}},
      {SlotValues::Single(1, 70.0), {1}},
  };
  SubstOnResult r = RunSubstOn(g);
  // Matches the Example 6 offline outcome.
  EXPECT_EQ(r.grant[0], 0);
  EXPECT_EQ(r.grant[1], 2);
  EXPECT_EQ(r.grant[2], 0);
  EXPECT_EQ(r.grant[3], kNoOpt);
  EXPECT_DOUBLE_EQ(r.payments[0], 30.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 100.0);
  EXPECT_DOUBLE_EQ(r.payments[2], 30.0);
}

TEST(SubstOnTest, TruthfulInModelFreeWorstCase) {
  // With no future arrivals, underbidding value or hiding wanted
  // optimizations never beats truth-telling for user 1 of Example 8's
  // prefix game (users 0 and 1 only).
  SubstOnlineGame g = Example8Game();
  g.users.pop_back();  // Drop user 2: worst case for user 1 at her arrival.
  SubstOnlineUser truthful = g.users[1];
  const double truthful_utility = SubstOnUtilityUnderBid(g, 1, truthful);

  for (double v : {10.0, 25.0, 40.0, 60.0, 200.0}) {
    SubstOnlineUser dev = truthful;
    dev.stream = SlotValues::Constant(2, 3, v / 2.0);
    EXPECT_LE(SubstOnUtilityUnderBid(g, 1, dev), truthful_utility + 1e-9)
        << "value deviation " << v;
  }
  for (std::vector<OptId> subs :
       {std::vector<OptId>{0}, {1}, {2}, {0, 2}, {1, 2}}) {
    SubstOnlineUser dev = truthful;
    dev.substitutes = subs;
    EXPECT_LE(SubstOnUtilityUnderBid(g, 1, dev), truthful_utility + 1e-9);
  }
}

TEST(SubstOnTest, DepartedUserStillAnchorsCostShare) {
  // After user 0 leaves at t=2 having paid 30, user 1's share at t=3 stays
  // 30 (not 60): the departed user remains in the Shapley computation.
  SubstOnResult r = RunSubstOn(Example8Game());
  EXPECT_DOUBLE_EQ(r.payments[1], 30.0);
}

}  // namespace
}  // namespace optshare
