// Tests for the procedural universe and the FoF halo finder.
#include <gtest/gtest.h>

#include <set>

#include "astro/halo_finder.h"
#include "astro/universe.h"

namespace optshare::astro {
namespace {

UniverseParams SmallParams() {
  UniverseParams p;
  p.num_snapshots = 8;
  p.num_halos = 10;
  p.particles_per_halo = 32;
  p.seed = 7;
  return p;
}

TEST(UniverseTest, ParamValidation) {
  UniverseParams p = SmallParams();
  EXPECT_TRUE(p.Validate().ok());
  p.num_snapshots = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.merge_probability = 1.5;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.mass_min = 0.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(UniverseTest, ProducesRequestedShape) {
  UniverseSimulator sim(SmallParams());
  const auto snapshots = sim.Run();
  ASSERT_EQ(snapshots.size(), 8u);
  for (size_t k = 0; k < snapshots.size(); ++k) {
    EXPECT_EQ(snapshots[k].index, static_cast<int>(k) + 1);
    EXPECT_EQ(snapshots[k].particles.size(), 320u);
  }
}

TEST(UniverseTest, ParticleIdsPersistAcrossSnapshots) {
  UniverseSimulator sim(SmallParams());
  const auto snapshots = sim.Run();
  for (const auto& snap : snapshots) {
    std::set<int64_t> ids;
    for (const auto& p : snap.particles) ids.insert(p.id);
    EXPECT_EQ(ids.size(), snap.particles.size());
    EXPECT_EQ(*ids.begin(), 0);
    EXPECT_EQ(*ids.rbegin(), 319);
  }
}

TEST(UniverseTest, ParticlesStayInBox) {
  UniverseSimulator sim(SmallParams());
  const auto snapshots = sim.Run();
  for (const auto& snap : snapshots) {
    for (const auto& p : snap.particles) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LT(p.x, 100.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LT(p.y, 100.0);
      EXPECT_GE(p.z, 0.0);
      EXPECT_LT(p.z, 100.0);
      EXPECT_GT(p.mass, 0.0);
    }
  }
}

TEST(UniverseTest, DeterministicInSeed) {
  UniverseSimulator a(SmallParams()), b(SmallParams());
  const auto sa = a.Run();
  const auto sb = b.Run();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t k = 0; k < sa.size(); ++k) {
    for (size_t i = 0; i < sa[k].particles.size(); ++i) {
      EXPECT_DOUBLE_EQ(sa[k].particles[i].x, sb[k].particles[i].x);
    }
  }
}

TEST(UniverseTest, MergersOnlyReduceHaloCount) {
  UniverseParams p = SmallParams();
  p.num_snapshots = 20;
  p.merge_probability = 0.1;
  UniverseSimulator sim(p);
  sim.Run();
  const auto& membership = sim.TrueMembership();
  size_t prev = SIZE_MAX;
  for (const auto& owners : membership) {
    std::set<int> halos(owners.begin(), owners.end());
    EXPECT_LE(halos.size(), prev);
    prev = halos.size();
  }
}

TEST(DisjointSetsTest, UnionFindBasics) {
  DisjointSets sets(5);
  EXPECT_EQ(sets.num_components(), 5);
  sets.Union(0, 1);
  sets.Union(3, 4);
  EXPECT_EQ(sets.num_components(), 3);
  EXPECT_EQ(sets.Find(0), sets.Find(1));
  EXPECT_NE(sets.Find(0), sets.Find(3));
  sets.Union(1, 4);
  EXPECT_EQ(sets.Find(0), sets.Find(3));
  sets.Union(0, 3);  // Already joined: no change.
  EXPECT_EQ(sets.num_components(), 2);
}

TEST(HaloFinderTest, RecoversTrueClusters) {
  // With well-separated compact halos, FoF must reproduce the ground-truth
  // partition (up to label permutation).
  UniverseParams p = SmallParams();
  p.num_snapshots = 1;
  UniverseSimulator sim(p);
  const auto snapshots = sim.Run();
  const auto& truth = sim.TrueMembership()[0];

  auto catalog_r = FindHalos(snapshots[0], p.box_size);
  ASSERT_TRUE(catalog_r.ok());
  const HaloCatalog& catalog = *catalog_r;

  // Same-halo pairs must share FoF labels; cross-halo pairs must not.
  // (Sampled pairs keep the test O(n).)
  const int n = static_cast<int>(truth.size());
  int agree = 0, total = 0;
  for (int i = 0; i < n; i += 3) {
    for (int j = i + 1; j < n; j += 7) {
      const bool same_truth = truth[static_cast<size_t>(i)] ==
                              truth[static_cast<size_t>(j)];
      const bool same_fof = catalog.halo_of[static_cast<size_t>(i)] ==
                            catalog.halo_of[static_cast<size_t>(j)];
      agree += (same_truth == same_fof) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.97);
}

TEST(HaloFinderTest, MassAndSizeAggregates) {
  UniverseParams p = SmallParams();
  p.num_snapshots = 1;
  UniverseSimulator sim(p);
  const auto snapshots = sim.Run();
  const HaloCatalog catalog = *FindHalos(snapshots[0], p.box_size);

  double total_mass = 0.0;
  for (const auto& particle : snapshots[0].particles) {
    total_mass += particle.mass;
  }
  double catalog_mass = 0.0;
  int catalog_size = 0;
  for (int h = 0; h < catalog.num_halos(); ++h) {
    catalog_mass += catalog.halo_mass[static_cast<size_t>(h)];
    catalog_size += catalog.halo_size[static_cast<size_t>(h)];
  }
  EXPECT_NEAR(catalog_mass, total_mass, 1e-9);
  EXPECT_EQ(catalog_size, 320);
}

TEST(HaloFinderTest, HalosByMassIsSortedDescending) {
  UniverseParams p = SmallParams();
  p.num_snapshots = 1;
  UniverseSimulator sim(p);
  const auto snapshots = sim.Run();
  const HaloCatalog catalog = *FindHalos(snapshots[0], p.box_size);
  const auto order = catalog.HalosByMass();
  for (size_t k = 1; k < order.size(); ++k) {
    EXPECT_GE(catalog.halo_mass[static_cast<size_t>(order[k - 1])],
              catalog.halo_mass[static_cast<size_t>(order[k])]);
  }
}

TEST(HaloFinderTest, MinHaloSizeFiltersNoise) {
  UniverseParams p = SmallParams();
  p.num_snapshots = 1;
  UniverseSimulator sim(p);
  const auto snapshots = sim.Run();
  FofParams fof;
  fof.min_halo_size = 1000;  // Larger than any halo.
  const HaloCatalog catalog = *FindHalos(snapshots[0], p.box_size, fof);
  EXPECT_EQ(catalog.num_halos(), 0);
  for (int h : catalog.halo_of) EXPECT_EQ(h, -1);
}

TEST(HaloFinderTest, RejectsBadParams) {
  Snapshot empty;
  EXPECT_FALSE(FindHalos(empty, -1.0).ok());
  FofParams fof;
  fof.linking_length = 0.0;
  EXPECT_FALSE(FindHalos(empty, 100.0, fof).ok());
  fof.linking_length = 1.0;
  fof.min_halo_size = 0;
  EXPECT_FALSE(FindHalos(empty, 100.0, fof).ok());
}

TEST(HaloFinderTest, TinyLinkingLengthIsolatesParticles) {
  UniverseParams p = SmallParams();
  p.num_snapshots = 1;
  UniverseSimulator sim(p);
  const auto snapshots = sim.Run();
  FofParams fof;
  fof.linking_length = 1e-9;
  const HaloCatalog catalog = *FindHalos(snapshots[0], p.box_size, fof);
  EXPECT_EQ(catalog.num_halos(), 320);  // Every particle its own halo.
}

}  // namespace
}  // namespace optshare::astro
