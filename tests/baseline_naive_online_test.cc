// Tests for the naive online scheme of paper Example 2 — built to fail:
// cost-recovering but gameable by hiding early value.
#include "baseline/naive_online.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

// Example 2's game: cost 100; user 0 (1,1,[101]), user 1 (1,2,[26,26]).
AdditiveOnlineGame Example2Game() {
  AdditiveOnlineGame g;
  g.num_slots = 2;
  g.cost = 100.0;
  g.users = {SlotValues::Single(1, 101.0),
             *SlotValues::Make(1, 2, {26.0, 26.0})};
  return g;
}

TEST(NaiveOnlineTest, TruthfulPlayChargesBothFunders) {
  NaiveOnlineResult r = RunNaiveOnline(Example2Game());
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 1);
  // Both users fund at t=1, each paying 50 (Example 2's trace).
  EXPECT_DOUBLE_EQ(r.payments[0], 50.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 50.0);
  // User 1's utility: 52 - 50 = 2.
}

TEST(NaiveOnlineTest, Example2FreeRideExploit) {
  // User 1 hides her slot-1 value and bids (2,2,[26]). User 0 funds the
  // whole 100 at t=1; at t=2 user 1 rides for free with utility 26 > 2.
  AdditiveOnlineGame cheat = Example2Game();
  cheat.users[1] = SlotValues::Single(2, 26.0);
  NaiveOnlineResult r = RunNaiveOnline(cheat);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 1);
  EXPECT_DOUBLE_EQ(r.payments[0], 100.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 0.0);  // The free ride.
  // She is serviced at t=2 regardless.
  const auto& s2 = r.serviced[1];
  EXPECT_NE(std::find(s2.begin(), s2.end(), 1), s2.end());
  // The scheme is therefore not truthful: 26 - 0 > 52 - 50. AddOn closes
  // exactly this hole (see core_add_on_test.cc Example2 test).
}

TEST(NaiveOnlineTest, StillCostRecovering) {
  NaiveOnlineResult r = RunNaiveOnline(Example2Game());
  EXPECT_GE(r.TotalPayment(), 100.0 - 1e-9);
}

TEST(NaiveOnlineTest, NeverFundedMeansNoService) {
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 1000.0;
  g.users = {SlotValues::Constant(1, 3, 10.0)};
  NaiveOnlineResult r = RunNaiveOnline(g);
  EXPECT_FALSE(r.implemented);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
  for (const auto& s : r.serviced) EXPECT_TRUE(s.empty());
}

TEST(NaiveOnlineTest, LateArrivalsServedFreeAfterFunding) {
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 50.0;
  g.users = {SlotValues::Single(1, 60.0), SlotValues::Single(3, 10.0)};
  NaiveOnlineResult r = RunNaiveOnline(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_DOUBLE_EQ(r.payments[0], 50.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 0.0);
  const auto& s3 = r.serviced[2];
  EXPECT_NE(std::find(s3.begin(), s3.end(), 1), s3.end());
}

}  // namespace
}  // namespace optshare
