#include "core/game.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

TEST(AdditiveOfflineGameTest, ValidGame) {
  AdditiveOfflineGame g;
  g.costs = {10.0, 20.0};
  g.bids = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.num_users(), 2);
  EXPECT_EQ(g.num_opts(), 2);
}

TEST(AdditiveOfflineGameTest, RejectsNonPositiveCost) {
  AdditiveOfflineGame g;
  g.costs = {0.0};
  g.bids = {{1.0}};
  EXPECT_FALSE(g.Validate().ok());
  g.costs = {-5.0};
  EXPECT_FALSE(g.Validate().ok());
}

TEST(AdditiveOfflineGameTest, RejectsRaggedBids) {
  AdditiveOfflineGame g;
  g.costs = {10.0, 20.0};
  g.bids = {{1.0}};
  EXPECT_FALSE(g.Validate().ok());
}

TEST(AdditiveOfflineGameTest, RejectsNegativeBid) {
  AdditiveOfflineGame g;
  g.costs = {10.0};
  g.bids = {{-1.0}};
  EXPECT_FALSE(g.Validate().ok());
}

TEST(AdditiveOnlineGameTest, ValidGame) {
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 100.0;
  g.users = {SlotValues::Single(1, 101.0), SlotValues::Constant(1, 2, 26.0)};
  EXPECT_TRUE(g.Validate().ok());
}

TEST(AdditiveOnlineGameTest, RejectsIntervalPastHorizon) {
  AdditiveOnlineGame g;
  g.num_slots = 2;
  g.cost = 1.0;
  g.users = {SlotValues::Constant(1, 3, 1.0)};
  EXPECT_FALSE(g.Validate().ok());
}

TEST(AdditiveOnlineGameTest, RejectsZeroSlots) {
  AdditiveOnlineGame g;
  g.num_slots = 0;
  g.cost = 1.0;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(MultiAdditiveOnlineGameTest, ProjectOpt) {
  MultiAdditiveOnlineGame g;
  g.num_slots = 2;
  g.costs = {10.0, 20.0};
  g.bids = {
      {SlotValues::Single(1, 1.0), SlotValues::Single(2, 2.0)},
      {SlotValues::Single(2, 3.0), SlotValues::Single(1, 4.0)},
  };
  ASSERT_TRUE(g.Validate().ok());
  AdditiveOnlineGame p = g.ProjectOpt(1);
  EXPECT_DOUBLE_EQ(p.cost, 20.0);
  EXPECT_EQ(p.num_users(), 2);
  EXPECT_DOUBLE_EQ(p.users[0].At(2), 2.0);
  EXPECT_DOUBLE_EQ(p.users[1].At(1), 4.0);
}

TEST(SubstOfflineGameTest, ValidGame) {
  SubstOfflineGame g;
  g.costs = {60.0, 180.0, 100.0};
  g.users = {{{0, 1}, 100.0}, {{2}, 101.0}, {{0, 1, 2}, 60.0}, {{1}, 70.0}};
  EXPECT_TRUE(g.Validate().ok());
}

TEST(SubstOfflineGameTest, RejectsEmptySubstituteSet) {
  SubstOfflineGame g;
  g.costs = {60.0};
  g.users = {{{}, 10.0}};
  EXPECT_FALSE(g.Validate().ok());
}

TEST(SubstOfflineGameTest, RejectsOutOfRangeSubstitute) {
  SubstOfflineGame g;
  g.costs = {60.0};
  g.users = {{{1}, 10.0}};
  EXPECT_FALSE(g.Validate().ok());
}

TEST(SubstOfflineGameTest, RejectsDuplicateSubstitutes) {
  SubstOfflineGame g;
  g.costs = {60.0, 70.0};
  g.users = {{{0, 0}, 10.0}};
  EXPECT_FALSE(g.Validate().ok());
}

TEST(SubstOnlineGameTest, ValidGame) {
  SubstOnlineGame g;
  g.num_slots = 3;
  g.costs = {60.0, 100.0, 50.0};
  g.users = {
      {SlotValues::Constant(1, 2, 50.0), {0, 1}},
      {SlotValues::Constant(2, 3, 50.0), {0, 1, 2}},
      {SlotValues::Single(3, 100.0), {2}},
  };
  EXPECT_TRUE(g.Validate().ok());
}

TEST(ValidateSubstituteSetTest, Direct) {
  EXPECT_TRUE(ValidateSubstituteSet({0, 2, 1}, 3).ok());
  EXPECT_FALSE(ValidateSubstituteSet({}, 3).ok());
  EXPECT_FALSE(ValidateSubstituteSet({3}, 3).ok());
  EXPECT_FALSE(ValidateSubstituteSet({-1}, 3).ok());
  EXPECT_FALSE(ValidateSubstituteSet({1, 1}, 3).ok());
}

}  // namespace
}  // namespace optshare
