// Protocol fuzz battery: seeded-random mutation of valid wire request
// lines fed to the server — directly through HandleLine (the parser and
// dispatch surface) and over real localhost TCP through the NetServer
// event loop with torn, merged and corrupted frames. The invariant under
// fuzz is narrow and absolute:
//
//   - the server never crashes, and
//   - every request line is answered by exactly one well-formed response
//     line (a typed error for garbage), and
//   - framing never desyncs: after any batch of hostile input, a valid
//     canary request with a unique id still gets its own correct response.
//
// Mutations cover the classes ISSUE 5 names: truncation, byte flips,
// field drops and duplications, oversized lines, and frames split or
// merged across TCP reads. Seeds are fixed, so a failure replays
// deterministically. The suite runs under ASan/TSan in CI (the `net` job
// and the sanitizer jobs pick it up by glob/regex).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "service/fast_wire.h"
#include "service/marketplace_server.h"
#include "service/net_client.h"
#include "service/net_server.h"
#include "service/protocol.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

/// A corpus of valid request lines covering every op and both schema
/// versions — the seeds the mutators start from.
std::vector<std::string> BuildCorpus() {
  auto scenario = simdb::TelemetryScenario(3, 6);
  EXPECT_TRUE(scenario.ok());
  Rng rng(1234);
  const std::vector<simdb::SimUser> tenants =
      simdb::JitterTenants(scenario->tenants, 6, rng);

  std::vector<std::string> corpus;
  Request open;
  open.op = RequestOp::kOpenPeriod;
  open.tenancy = "fuzz";
  protocol::CatalogSpec catalog;
  catalog.scenario = "telemetry";
  catalog.scenario_tenants = 3;
  catalog.scenario_slots = 6;
  open.catalog = catalog;
  ServiceConfig config;
  config.slots_per_period = 6;
  open.config = config;
  corpus.push_back(protocol::ToJson(open).Dump());

  Request submit;
  submit.op = RequestOp::kSubmit;
  submit.tenancy = "fuzz";
  submit.tenants = tenants;
  corpus.push_back(protocol::ToJson(submit).Dump());

  Request depart;
  depart.op = RequestOp::kDepart;
  depart.tenancy = "fuzz";
  depart.tenant = 1;
  corpus.push_back(protocol::ToJson(depart).Dump());

  Request advance;
  advance.op = RequestOp::kAdvanceSlot;
  advance.tenancy = "fuzz";
  advance.slots = 2;
  corpus.push_back(protocol::ToJson(advance).Dump());

  Request close;
  close.op = RequestOp::kClosePeriod;
  close.tenancy = "fuzz";
  corpus.push_back(protocol::ToJson(close).Dump());

  Request report;
  report.op = RequestOp::kReport;
  report.tenancy = "fuzz";
  report.id = "rep";
  corpus.push_back(protocol::ToJson(report).Dump());

  Request list;
  list.op = RequestOp::kListMechanisms;
  corpus.push_back(protocol::ToJson(list).Dump());

  for (RequestOp op : {RequestOp::kSnapshot, RequestOp::kRestore,
                       RequestOp::kShutdown, RequestOp::kServerInfo}) {
    Request v2;
    v2.op = op;
    v2.version = 2;
    if (protocol::OpTakesTenancy(op)) v2.tenancy = "fuzz";
    // NOTE: the shutdown line stays in the corpus deliberately — mutated
    // forms must parse-fail or be handled; the TCP fuzz filters out exact
    // accepted shutdowns so the server stays up (tested separately).
    corpus.push_back(protocol::ToJson(v2).Dump());
  }

  // v3 batch frames: mixed-version members, duplicate ids, two tenancies
  // in one frame. These seed every mutator AND pin the fast scanner's
  // batch path against the tree parser in the differential battery.
  {
    Request batch;
    batch.op = RequestOp::kBatch;
    batch.version = 3;
    batch.id = "dup";
    Request member = depart;
    member.id = "dup";  // Duplicate of the envelope's AND its sibling's id.
    batch.requests.push_back(member);
    member.version = 1;  // Mixed-version member.
    batch.requests.push_back(member);
    Request other = advance;
    other.tenancy = "fuzz-2";  // Second tenancy in the same frame.
    other.id = "dup";
    batch.requests.push_back(other);
    batch.requests.push_back(report);
    corpus.push_back(protocol::ToJson(batch).Dump());
  }
  {
    Request batch;
    batch.op = RequestOp::kBatch;
    batch.version = 3;
    batch.requests.push_back(submit);
    batch.requests.push_back(advance);
    corpus.push_back(protocol::ToJson(batch).Dump());
  }
  return corpus;
}

/// One seeded mutation of `line`: the ISSUE 5 classes plus raw noise.
std::string Mutate(const std::string& line, Rng& rng) {
  std::string out = line;
  switch (rng.UniformInt(0, 6)) {
    case 0: {  // Truncation.
      if (!out.empty()) {
        out.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1)));
      }
      break;
    }
    case 1: {  // Byte flips.
      const int flips = static_cast<int>(rng.UniformInt(1, 8));
      for (int f = 0; f < flips && !out.empty(); ++f) {
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
        char byte = static_cast<char>(rng.UniformInt(1, 255));
        if (byte == '\n') byte = '?';  // Stay one frame.
        out[at] = byte;
      }
      break;
    }
    case 2: {  // Field drop: cut from one '"' to the next ','/'}'.
      const size_t start = out.find('"', static_cast<size_t>(rng.UniformInt(
                                             0, static_cast<int64_t>(
                                                    out.size()))));
      if (start != std::string::npos) {
        const size_t end = out.find_first_of(",}", start);
        if (end != std::string::npos) out.erase(start, end - start);
      }
      break;
    }
    case 3: {  // Field duplication: re-insert a key/value slice.
      const size_t comma = out.find(',');
      const size_t brace = out.find('{');
      if (comma != std::string::npos && brace != std::string::npos &&
          brace + 1 < comma) {
        out.insert(comma, "," + out.substr(brace + 1, comma - brace - 1));
      }
      break;
    }
    case 4: {  // Splice two corpus-shaped halves (merged documents).
      out += out.substr(out.size() / 2);
      break;
    }
    case 5: {  // Whitespace / control-character injection.
      const int count = static_cast<int>(rng.UniformInt(1, 5));
      for (int c = 0; c < count; ++c) {
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(out.size())));
        const char* junk[] = {" ", "\t", "\r", "\x01", "{", "}", "\""};
        out.insert(at, junk[rng.UniformInt(0, 6)]);
      }
      break;
    }
    default: {  // Pure noise line.
      const size_t len = static_cast<size_t>(rng.UniformInt(0, 200));
      out.clear();
      for (size_t c = 0; c < len; ++c) {
        char byte = static_cast<char>(rng.UniformInt(1, 255));
        if (byte == '\n') byte = '.';
        out.push_back(byte);
      }
      break;
    }
  }
  return out;
}

/// True when the line would be accepted as a live shutdown request (which
/// would intentionally stop the server mid-fuzz).
bool IsAcceptedShutdown(const std::string& line) {
  Result<Request> parsed = protocol::ParseRequestLine(line);
  return parsed.ok() && parsed->op == RequestOp::kShutdown;
}

// -- Parser / dispatch surface ----------------------------------------------

TEST(ProtocolFuzzTest, HandleLineAnswersOneWellFormedResponsePerMutation) {
  const std::vector<std::string> corpus = BuildCorpus();
  MarketplaceServer server(ServerOptions{2});
  Rng rng(20260730);
  int errors = 0;
  constexpr int kIterations = 20000;
  for (int i = 0; i < kIterations; ++i) {
    std::string line = corpus[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(corpus.size()) - 1))];
    line = Mutate(line, rng);
    if (rng.Bernoulli(0.3)) line = Mutate(line, rng);  // Stacked damage.
    if (IsAcceptedShutdown(line)) continue;

    const std::string response_line = server.HandleLine(line);
    // Exactly one well-formed, protocol-typed response per line, garbage
    // or not.
    Result<JsonValue> doc = JsonValue::Parse(response_line);
    ASSERT_TRUE(doc.ok()) << "unparseable response for input: " << line;
    Result<Response> response = protocol::ResponseFromJson(*doc);
    ASSERT_TRUE(response.ok()) << "untyped response for input: " << line;
    if (!response->ok()) ++errors;
  }
  // Sanity: the mutator really was hostile — the vast majority of mutated
  // lines must have been rejected with typed errors.
  EXPECT_GT(errors, kIterations / 2);
}

// Differential battery for the single-pass scanner (service/fast_wire.h):
// every mutated line runs through both the fast scanner and the JsonValue
// tree parser. The fast path is accept-only-when-certain, so the contract
// under fuzz is exact:
//
//   - fast accept  =>  tree accept with a byte-identical re-serialization
//     (same ops, fields, numbers, escapes — not merely "also ok"), and
//   - the combined ParseRequestLine (fast first, tree fallback) returns
//     the same ok-ness and the same status text as the tree parser alone,
//     so rejection semantics are untouched by the optimization.
TEST(ProtocolFuzzTest, FastAndTreeParsersAgreeByteForByteUnderMutation) {
  const std::vector<std::string> corpus = BuildCorpus();
  Rng rng(5150);
  int fast_accepts = 0;
  constexpr int kIterations = 30000;
  for (int i = 0; i < kIterations; ++i) {
    std::string line = corpus[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(corpus.size()) - 1))];
    // Leave some lines unmutated so the fast path demonstrably engages.
    if (rng.Bernoulli(0.9)) line = Mutate(line, rng);
    if (rng.Bernoulli(0.3)) line = Mutate(line, rng);

    const Result<Request> tree = protocol::ParseRequestLineTree(line);
    Request fast_out;
    if (protocol::TryFastParseRequestLine(line, &fast_out)) {
      ++fast_accepts;
      ASSERT_TRUE(tree.ok())
          << "fast accepted a line the tree rejects: " << line;
      ASSERT_EQ(protocol::ToJson(fast_out).Dump(),
                protocol::ToJson(*tree).Dump())
          << "fast/tree field divergence on: " << line;
    }
    const Result<Request> combined = protocol::ParseRequestLine(line);
    ASSERT_EQ(combined.ok(), tree.ok()) << line;
    if (!combined.ok()) {
      ASSERT_EQ(combined.status().ToString(), tree.status().ToString())
          << "rejection text diverged on: " << line;
    } else {
      ASSERT_EQ(protocol::ToJson(*combined).Dump(),
                protocol::ToJson(*tree).Dump())
          << line;
    }
  }
  // The battery must actually exercise the fast path, not just its
  // fallback: unmutated serving lines (submit/depart/advance/...) all
  // qualify, and some mutations keep lines scannable.
  EXPECT_GT(fast_accepts, 500);
}

TEST(ProtocolFuzzTest, OversizedLinesAreRejectedUnparsed) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_request_bytes = 512;
  MarketplaceServer server(std::move(options));
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const size_t len =
        static_cast<size_t>(rng.UniformInt(513, 64 * 1024));
    std::string line(len, 'a' + static_cast<char>(i % 26));
    const std::string response = server.HandleLine(line);
    EXPECT_NE(response.find("ResourceExhausted"), std::string::npos)
        << response;
  }
  // A regular request still works afterwards.
  const std::string ok =
      server.HandleLine(R"({"v":1,"op":"list_mechanisms"})");
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
}

// -- Real TCP: torn, merged, corrupted frames -------------------------------

/// Sends `payload` in random-sized chunks (1 byte .. whole thing) so lines
/// split and merge across the server's reads.
void SendChunked(NetClient& client, const std::string& payload, Rng& rng) {
  size_t sent = 0;
  while (sent < payload.size()) {
    const size_t n = std::min(
        payload.size() - sent,
        static_cast<size_t>(rng.UniformInt(
            1, std::max<int64_t>(1, static_cast<int64_t>(payload.size()) /
                                        3))));
    ASSERT_TRUE(client.SendRaw(payload.substr(sent, n)).ok());
    sent += n;
  }
}

TEST(ProtocolFuzzTest, TcpFramingSurvivesMutatedAndTornStreams) {
  const std::vector<std::string> corpus = BuildCorpus();
  ServerOptions options;
  options.num_workers = 2;
  options.max_request_bytes = 16 * 1024;  // Oversized lines in easy reach.
  MarketplaceServer server(std::move(options));
  NetServer net(&server, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  Rng rng(424242);
  constexpr int kRounds = 40;
  for (int round = 0; round < kRounds; ++round) {
    Result<NetClient> client = NetClient::Connect("127.0.0.1", net.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    // A batch of hostile lines...
    std::string payload;
    int lines_sent = 0;
    const int batch = static_cast<int>(rng.UniformInt(1, 30));
    for (int b = 0; b < batch; ++b) {
      std::string line = corpus[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(corpus.size()) - 1))];
      line = Mutate(line, rng);
      if (rng.Bernoulli(0.2)) {
        // An over-cap line: cap + noise, still one frame.
        line.append(static_cast<size_t>(17 * 1024), '!');
      }
      if (IsAcceptedShutdown(line)) continue;
      // Blank lines are skipped by the server, not answered; keep the
      // response count predictable by not sending effectively-blank lines.
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      payload += line;
      payload += "\n";
      ++lines_sent;
    }
    // ...then the canary: a valid request with a unique id. If framing
    // desynced anywhere above, this response comes back wrong or never.
    Request canary;
    canary.op = RequestOp::kListMechanisms;
    canary.id = "canary-" + std::to_string(round);
    payload += protocol::ToJson(canary).Dump();
    payload += "\n";
    SendChunked(*client, payload, rng);

    for (int b = 0; b < lines_sent; ++b) {
      Result<std::string> line = client->ReadLine();
      ASSERT_TRUE(line.ok())
          << "round " << round << ": connection died before response " << b
          << ": " << line.status().ToString();
      Result<JsonValue> doc = JsonValue::Parse(*line);
      ASSERT_TRUE(doc.ok()) << "round " << round << ": " << *line;
      ASSERT_TRUE(protocol::ResponseFromJson(*doc).ok())
          << "round " << round << ": " << *line;
    }
    Result<std::string> canary_line = client->ReadLine();
    ASSERT_TRUE(canary_line.ok()) << canary_line.status().ToString();
    EXPECT_NE(canary_line->find("\"id\":\"canary-" + std::to_string(round) +
                                "\""),
              std::string::npos)
        << "round " << round << ": framing desynced: " << *canary_line;
    EXPECT_NE(canary_line->find("\"ok\":true"), std::string::npos)
        << *canary_line;
  }

  // The server survived it all and still serves a fresh connection.
  Result<NetClient> fresh = NetClient::Connect("127.0.0.1", net.port());
  ASSERT_TRUE(fresh.ok());
  Result<std::string> alive =
      fresh->Call(std::string(R"({"v":1,"op":"list_mechanisms"})"));
  ASSERT_TRUE(alive.ok());
  EXPECT_NE(alive->find("\"ok\":true"), std::string::npos);
  net.Stop();
}

TEST(ProtocolFuzzTest, MidFrameDisconnectsLeaveServerServing) {
  MarketplaceServer server(ServerOptions{2});
  NetServer net(&server, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  Rng rng(90210);
  for (int round = 0; round < 30; ++round) {
    Result<NetClient> client = NetClient::Connect("127.0.0.1", net.port());
    ASSERT_TRUE(client.ok());
    // A torn frame: bytes with no terminating newline (sometimes a valid
    // prefix, sometimes noise), then an abrupt disconnect.
    std::string torn = R"({"v":1,"op":"list_mechanisms")";
    if (rng.Bernoulli(0.5)) {
      torn.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(torn.size()))));
    }
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(client->SendLine(torn + "}").ok());  // One whole frame,
      (void)client->ReadLine();                        // answered...
    }
    ASSERT_TRUE(client->SendRaw(torn).ok());  // ...then the torn one.
    client->Close();
  }

  Result<NetClient> fresh = NetClient::Connect("127.0.0.1", net.port());
  ASSERT_TRUE(fresh.ok());
  Result<std::string> alive =
      fresh->Call(std::string(R"({"v":1,"op":"list_mechanisms"})"));
  ASSERT_TRUE(alive.ok());
  EXPECT_NE(alive->find("\"ok\":true"), std::string::npos);
  net.Stop();
}

// -- Protocol v3: batch-frame battery ---------------------------------------

/// A random batch frame drawn from the member pool: 1..8 members, random
/// ids (duplicates likely), random member versions, sometimes a hostile
/// member op (nested batch / shutdown) the parser must reject whole.
std::string RandomBatchLine(const std::vector<Request>& pool, Rng& rng,
                            bool* expect_reject) {
  Request batch;
  batch.op = RequestOp::kBatch;
  batch.version = 3;
  if (rng.Bernoulli(0.5)) {
    batch.id = "b" + std::to_string(rng.UniformInt(0, 3));
  }
  *expect_reject = false;
  const int members = static_cast<int>(rng.UniformInt(1, 8));
  for (int m = 0; m < members; ++m) {
    Request member = pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    if (rng.Bernoulli(0.5)) {
      member.id = "m" + std::to_string(rng.UniformInt(0, 2));  // Duplicates.
    }
    if (rng.Bernoulli(0.1)) {
      member.op = RequestOp::kShutdown;  // Parse-rejected inside a batch.
      member.tenancy.clear();
      member.tenants.clear();
      member.tenant = -1;
      member.slots = 1;
      member.version = 2;
      *expect_reject = true;
    }
    batch.requests.push_back(std::move(member));
  }
  if (rng.Bernoulli(0.1)) {
    // Nested mutation splice: a batch spliced into its own member list.
    Request nested;
    nested.op = RequestOp::kBatch;
    nested.version = 3;
    Request inner = pool.front();
    nested.requests.push_back(std::move(inner));
    batch.requests.push_back(std::move(nested));
    *expect_reject = true;
  }
  return protocol::ToJson(batch).Dump();
}

TEST(ProtocolFuzzTest, BatchFramesAnswerOneOrderedResponseBatch) {
  MarketplaceServer server(ServerOptions{2});
  // Bootstrap the tenancies the member pool mutates.
  for (const char* tenancy : {"fuzz", "fuzz-2"}) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = tenancy;
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = 3;
    catalog.scenario_slots = 6;
    open.catalog = catalog;
    ASSERT_TRUE(server.Handle(std::move(open)).ok());
  }
  std::vector<Request> pool;
  for (const char* tenancy : {"fuzz", "fuzz-2"}) {
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = tenancy;
    pool.push_back(advance);
    Request report;
    report.op = RequestOp::kReport;
    report.tenancy = tenancy;
    pool.push_back(report);
    Request depart;
    depart.op = RequestOp::kDepart;
    depart.tenancy = tenancy;
    depart.tenant = 1;
    pool.push_back(depart);
  }
  Request list;
  list.op = RequestOp::kListMechanisms;
  list.version = 1;
  pool.push_back(list);

  Rng rng(33550336);
  int accepted = 0, rejected = 0, mutated_rounds = 0;
  for (int i = 0; i < 4000; ++i) {
    bool expect_reject = false;
    std::string line = RandomBatchLine(pool, rng, &expect_reject);
    const bool was_mutated = rng.Bernoulli(0.5);
    if (was_mutated) {
      line = Mutate(line, rng);
      ++mutated_rounds;
    }
    const size_t member_count = [&] {
      Result<Request> parsed = protocol::ParseRequestLine(line);
      return parsed.ok() && parsed->op == RequestOp::kBatch
                 ? parsed->requests.size()
                 : size_t{0};
    }();

    const std::string response_line = server.HandleLine(line);
    Result<JsonValue> doc = JsonValue::Parse(response_line);
    ASSERT_TRUE(doc.ok()) << "unparseable response for: " << line;
    Result<Response> response = protocol::ResponseFromJson(*doc);
    ASSERT_TRUE(response.ok()) << "untyped response for: " << line;
    if (!was_mutated && expect_reject) {
      EXPECT_FALSE(response->ok())
          << "hostile member accepted: " << line;
    }
    if (response->ok() && member_count > 0) {
      ++accepted;
      // The ordered-response invariant: exactly one document per member,
      // ids echoed positionally (duplicates included).
      const JsonValue* docs = response->payload.Find("responses");
      ASSERT_NE(docs, nullptr) << line;
      ASSERT_EQ(docs->AsArray().size(), member_count) << line;
      Result<Request> parsed = protocol::ParseRequestLine(line);
      ASSERT_TRUE(parsed.ok());
      for (size_t m = 0; m < member_count; ++m) {
        const JsonValue* id = docs->AsArray()[m].Find("id");
        if (parsed->requests[m].id.empty()) {
          EXPECT_EQ(id, nullptr) << line;
        } else {
          ASSERT_NE(id, nullptr) << line;
          EXPECT_EQ(id->AsString(), parsed->requests[m].id) << line;
        }
      }
    } else if (!response->ok()) {
      ++rejected;
    }
  }
  // The battery exercised both sides hard.
  EXPECT_GT(accepted, 500);
  EXPECT_GT(rejected, 500);
  EXPECT_GT(mutated_rounds, 1500);
}

TEST(ProtocolFuzzTest, TornMidBatchDisconnectsLeaveServerServing) {
  MarketplaceServer server(ServerOptions{2});
  NetServer net(&server, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());
  {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = "fuzz";
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = 3;
    catalog.scenario_slots = 6;
    open.catalog = catalog;
    ASSERT_TRUE(server.Handle(std::move(open)).ok());
  }
  Request batch;
  batch.op = RequestOp::kBatch;
  batch.version = 3;
  for (int m = 0; m < 6; ++m) {
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = "fuzz";
    advance.id = "m" + std::to_string(m);
    batch.requests.push_back(std::move(advance));
  }
  const std::string frame = protocol::ToJson(batch).Dump();

  Rng rng(8128);
  for (int round = 0; round < 30; ++round) {
    Result<NetClient> client = NetClient::Connect("127.0.0.1", net.port());
    ASSERT_TRUE(client.ok());
    // A batch frame torn mid-line (no newline), then an abrupt disconnect
    // — sometimes after a whole successful frame first.
    if (rng.Bernoulli(0.4)) {
      ASSERT_TRUE(client->SendLine(frame).ok());
      Result<std::string> answered = client->ReadLine();
      ASSERT_TRUE(answered.ok());
      EXPECT_NE(answered->find("\"responses\""), std::string::npos);
    }
    const std::string torn = frame.substr(
        0, static_cast<size_t>(
               rng.UniformInt(1, static_cast<int64_t>(frame.size()) - 1)));
    ASSERT_TRUE(client->SendRaw(torn).ok());
    client->Close();
  }

  // The torn frames died with their connections: never half-dispatched,
  // never desynced, and the server still answers a fresh batch.
  Result<NetClient> fresh = NetClient::Connect("127.0.0.1", net.port());
  ASSERT_TRUE(fresh.ok());
  Result<std::string> alive = fresh->Call(frame);
  ASSERT_TRUE(alive.ok());
  EXPECT_NE(alive->find("\"ok\":true"), std::string::npos);
  net.Stop();
}

}  // namespace
}  // namespace optshare::service
