// Property tests: cost recovery (paper Eq. 4) of all four mechanisms on
// seeded random games — the cloud never implements an optimization whose
// cost the collected payments fail to cover — plus AddOn share monotonicity
// and Proposition 2 (multi-identity bids never hurt other users).
#include <gtest/gtest.h>

#include "common/money.h"
#include "common/rng.h"
#include "core/accounting.h"
#include "workload/scenario.h"

namespace optshare {
namespace {

class AdditiveRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdditiveRecovery, AddOffRecoversEveryImplementedOpt) {
  Rng rng(GetParam() * 31);
  AdditiveOfflineGame g;
  const int m = 1 + static_cast<int>(rng.UniformInt(0, 7));
  const int n = 1 + static_cast<int>(rng.UniformInt(0, 4));
  for (int j = 0; j < n; ++j) g.costs.push_back(rng.Uniform(0.1, 3.0));
  for (int i = 0; i < m; ++i) {
    std::vector<double> row;
    for (int j = 0; j < n; ++j) row.push_back(rng.Uniform(0.0, 1.0));
    g.bids.push_back(row);
  }
  AddOffResult r = RunAddOff(g);
  for (OptId j = 0; j < n; ++j) {
    const auto& opt = r.per_opt[static_cast<size_t>(j)];
    if (opt.implemented) {
      EXPECT_NEAR(opt.TotalPayment(), g.costs[static_cast<size_t>(j)], 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(opt.TotalPayment(), 0.0);
    }
  }
  Accounting acc = AccountAddOff(g, r);
  EXPECT_TRUE(acc.CostRecovered());
}

TEST_P(AdditiveRecovery, AddOnRecoversAndSharesDecrease) {
  Rng rng(GetParam() * 37);
  AdditiveScenario scenario;
  scenario.num_users = 1 + static_cast<int>(rng.UniformInt(0, 9));
  scenario.num_slots = 1 + static_cast<int>(rng.UniformInt(0, 11));
  scenario.duration =
      1 + static_cast<int>(rng.UniformInt(0, scenario.num_slots - 1));
  AdditiveOnlineGame g =
      MakeAdditiveGame(scenario, rng.Uniform(0.05, 2.5), rng);
  AddOnResult r = RunAddOn(g);

  if (r.implemented) {
    EXPECT_TRUE(MoneyGe(r.TotalPayment(), g.cost))
        << "seed " << GetParam() << ": payments " << r.TotalPayment()
        << " < cost " << g.cost;
  } else {
    EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
  }

  // Cost-share is non-increasing once implemented.
  double prev = kInfiniteBid;
  for (double share : r.cost_share) {
    EXPECT_LE(share, prev * (1 + 1e-12));
    prev = share;
  }

  // The cumulative serviced set only grows.
  for (size_t t = 1; t < r.cumulative.size(); ++t) {
    for (UserId i : r.cumulative[t - 1]) {
      EXPECT_TRUE(r.InCumulative(i, static_cast<TimeSlot>(t + 1)));
    }
  }

  // No serviced user pays more than her declared total value.
  Accounting acc = AccountAddOn(g, r);
  for (UserId i = 0; i < g.num_users(); ++i) {
    if (r.payments[static_cast<size_t>(i)] > 0.0) {
      EXPECT_TRUE(MoneyLe(r.payments[static_cast<size_t>(i)],
                          g.users[static_cast<size_t>(i)].Total()));
    }
  }
  EXPECT_TRUE(acc.CostRecovered());
}

INSTANTIATE_TEST_SUITE_P(SeededGames, AdditiveRecovery,
                         ::testing::Range<uint64_t>(1, 101));

class SubstRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubstRecovery, SubstOffRecoversEveryImplementedOpt) {
  Rng rng(GetParam() * 41);
  SubstOfflineGame g;
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 6));
  const int m = 1 + static_cast<int>(rng.UniformInt(0, 9));
  for (int j = 0; j < n; ++j) g.costs.push_back(rng.Uniform(0.1, 2.0));
  for (int i = 0; i < m; ++i) {
    SubstOfflineUser u;
    const int k = 1 + static_cast<int>(rng.UniformInt(0, n - 1));
    auto picks = rng.SampleWithoutReplacement(n, k);
    std::sort(picks.begin(), picks.end());
    u.substitutes.assign(picks.begin(), picks.end());
    u.value = rng.Uniform(0.0, 1.5);
    g.users.push_back(u);
  }
  SubstOffResult r = RunSubstOff(g);

  // Per-optimization recovery: granted users of j pay exactly C_j.
  for (size_t k = 0; k < r.implemented.size(); ++k) {
    const OptId j = r.implemented[k];
    double collected = 0.0;
    for (UserId i : r.GrantedUsers(j)) {
      collected += r.payments[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(collected, g.costs[static_cast<size_t>(j)], 1e-9)
        << "opt " << j;
  }
  // Users granted nothing pay nothing.
  for (UserId i = 0; i < m; ++i) {
    if (r.grant[static_cast<size_t>(i)] == kNoOpt) {
      EXPECT_DOUBLE_EQ(r.payments[static_cast<size_t>(i)], 0.0);
    }
  }
  // Each user granted at most one optimization, from her substitute set.
  for (UserId i = 0; i < m; ++i) {
    const OptId gr = r.grant[static_cast<size_t>(i)];
    if (gr != kNoOpt) {
      const auto& subs = g.users[static_cast<size_t>(i)].substitutes;
      EXPECT_NE(std::find(subs.begin(), subs.end(), gr), subs.end());
    }
  }
}

TEST_P(SubstRecovery, SubstOnRecoversTotalCost) {
  Rng rng(GetParam() * 43);
  SubstScenario scenario;
  scenario.num_users = 1 + static_cast<int>(rng.UniformInt(0, 9));
  scenario.num_slots = 1 + static_cast<int>(rng.UniformInt(0, 7));
  scenario.num_opts = 2 + static_cast<int>(rng.UniformInt(0, 6));
  scenario.substitutes_per_user =
      1 + static_cast<int>(rng.UniformInt(0, scenario.num_opts - 1));
  SubstOnlineGame g = MakeSubstGame(scenario, rng.Uniform(0.05, 1.5), rng);
  SubstOnResult r = RunSubstOn(g);

  EXPECT_TRUE(MoneyGe(r.TotalPayment(), r.ImplementedCost(g.costs)))
      << "seed " << GetParam();

  Accounting acc = AccountSubstOn(g, r);
  EXPECT_TRUE(acc.CostRecovered());

  // Grants respect declared substitute sets.
  for (UserId i = 0; i < g.num_users(); ++i) {
    const OptId gr = r.grant[static_cast<size_t>(i)];
    if (gr != kNoOpt) {
      const auto& subs = g.users[static_cast<size_t>(i)].substitutes;
      EXPECT_NE(std::find(subs.begin(), subs.end(), gr), subs.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGames, SubstRecovery,
                         ::testing::Range<uint64_t>(1, 101));

class IdentityProposition : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdentityProposition, SplittingABidNeverHurtsOthersAdditive) {
  // Proposition 2: in AddOn, replacing one user's bid by several identities
  // never decreases any other user's utility.
  Rng rng(GetParam() * 53);
  AdditiveScenario scenario;
  scenario.num_users = 3 + static_cast<int>(rng.UniformInt(0, 4));
  scenario.num_slots = 4;
  AdditiveOnlineGame base =
      MakeAdditiveGame(scenario, rng.Uniform(0.2, 2.0), rng);
  AddOnResult r_base = RunAddOn(base);
  Accounting acc_base = AccountAddOn(base, r_base);

  // Split user 0 into k identities, each declaring a 1/k slice.
  const int k = 2 + static_cast<int>(rng.UniformInt(0, 2));
  AdditiveOnlineGame split = base;
  SlotValues slice = base.users[0];
  for (double& v : slice.values) v /= static_cast<double>(k);
  split.users[0] = slice;
  for (int c = 1; c < k; ++c) split.users.push_back(slice);

  AddOnResult r_split = RunAddOn(split);
  Accounting acc_split = AccountAddOn(split, r_split);

  // The splitter's utility: she realizes her full true value at any slot
  // where at least one identity is serviced, and pays for all identities.
  double split_value = 0.0;
  for (TimeSlot t = 1; t <= split.num_slots; ++t) {
    bool any = false;
    for (UserId id : r_split.serviced[static_cast<size_t>(t - 1)]) {
      if (id == 0 || id >= base.num_users()) any = true;
    }
    if (any) split_value += base.users[0].At(t);
  }
  double split_payment = r_split.payments[0];
  for (int c = 1; c < k; ++c) {
    split_payment +=
        r_split.payments[static_cast<size_t>(base.num_users() + c - 1)];
  }
  const double splitter_gain =
      (split_value - split_payment) - acc_base.UserUtility(0);

  // Proposition 2 is conditional: *when* the split benefits the splitter,
  // no other user is worse off. (An unprofitable split can hurt others —
  // e.g. slices too small to keep the optimization funded.)
  if (splitter_gain > 1e-9) {
    for (UserId i = 1; i < base.num_users(); ++i) {
      EXPECT_GE(acc_split.UserUtility(i) + 1e-9, acc_base.UserUtility(i))
          << "seed " << GetParam() << " user " << i
          << " harmed by a profitable identity split";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGames, IdentityProposition,
                         ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace optshare
