// Property tests: truthfulness of all four mechanisms on seeded random
// games. Offline mechanisms are checked directly (no unilateral deviation
// over a candidate grid beats truth-telling). Online mechanisms are checked
// in the paper's model-free sense (§5.2): the deviating user's utility is
// evaluated in the worst case over future arrivals, which Prop. 1 shows is
// the game where no bids arrive after hers — so deviations are tested in
// games truncated to the bidders present at her arrival.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/strategy.h"
#include "workload/scenario.h"

namespace optshare {
namespace {

class AddOffTruthfulness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AddOffTruthfulness, NoProfitableUnilateralDeviation) {
  Rng rng(GetParam());
  const int m = 2 + static_cast<int>(rng.UniformInt(0, 3));
  const int n = 1 + static_cast<int>(rng.UniformInt(0, 2));

  AdditiveOfflineGame truth;
  for (int j = 0; j < n; ++j) truth.costs.push_back(rng.Uniform(0.2, 2.0));
  for (int i = 0; i < m; ++i) {
    std::vector<double> row;
    for (int j = 0; j < n; ++j) row.push_back(rng.Uniform(0.0, 1.0));
    truth.bids.push_back(row);
  }
  ASSERT_TRUE(truth.Validate().ok());

  for (UserId i = 0; i < m; ++i) {
    const double truthful =
        AddOffUtilityUnderBid(truth, i, truth.bids[static_cast<size_t>(i)]);
    // Deviate on each optimization independently over the candidate grid
    // (additivity makes per-opt deviations exhaustive in effect).
    const std::vector<double> grid = CandidateDeviationBids(
        truth.costs, truth.bids[static_cast<size_t>(i)], m);
    for (OptId j = 0; j < n; ++j) {
      for (double bid : grid) {
        std::vector<double> dev = truth.bids[static_cast<size_t>(i)];
        dev[static_cast<size_t>(j)] = bid;
        EXPECT_LE(AddOffUtilityUnderBid(truth, i, dev), truthful + 1e-9)
            << "user " << i << " gains by bidding " << bid << " on opt " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGames, AddOffTruthfulness,
                         ::testing::Range<uint64_t>(1, 41));

class AddOnTruthfulness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AddOnTruthfulness, ModelFreeWorstCaseDeviations) {
  Rng rng(GetParam() * 7919);
  AdditiveScenario scenario;
  scenario.num_users = 2 + static_cast<int>(rng.UniformInt(0, 3));
  scenario.num_slots = 4;
  scenario.duration = 1 + static_cast<int>(rng.UniformInt(0, 2));
  AdditiveOnlineGame full =
      MakeAdditiveGame(scenario, rng.Uniform(0.2, 2.0), rng);

  for (UserId i = 0; i < full.num_users(); ++i) {
    const SlotValues truth_stream = full.users[static_cast<size_t>(i)];
    // Model-free worst case at user i's arrival: only users who arrived at
    // or before her are present.
    AdditiveOnlineGame worst;
    worst.num_slots = full.num_slots;
    worst.cost = full.cost;
    std::vector<UserId> kept;
    for (UserId k = 0; k < full.num_users(); ++k) {
      if (full.users[static_cast<size_t>(k)].start <= truth_stream.start) {
        if (k == i) kept.push_back(static_cast<UserId>(worst.users.size()));
        worst.users.push_back(full.users[static_cast<size_t>(k)]);
      }
    }
    const UserId me = kept[0];
    const double truthful = AddOnUtilityUnderBid(worst, me, truth_stream);

    // Value deviations: scale the declared stream.
    for (double scale : {0.0, 0.3, 0.7, 0.95, 1.05, 1.5, 3.0}) {
      SlotValues dev = truth_stream;
      for (double& v : dev.values) v *= scale;
      EXPECT_LE(AddOnUtilityUnderBid(worst, me, dev), truthful + 1e-9)
          << "seed " << GetParam() << " user " << i << " scale " << scale;
    }
    // Time deviations: declare a later arrival or earlier departure
    // (bids cannot be retroactive, so earlier-than-true arrival is not in
    // the strategy space; extending e_i only adds zero-value slots).
    for (TimeSlot s = truth_stream.start; s <= worst.num_slots; ++s) {
      for (TimeSlot e = s; e <= worst.num_slots; ++e) {
        SlotValues dev;
        dev.start = s;
        dev.end = e;
        dev.values.clear();
        for (TimeSlot t = s; t <= e; ++t) {
          dev.values.push_back(truth_stream.At(t));
        }
        EXPECT_LE(AddOnUtilityUnderBid(worst, me, dev), truthful + 1e-9)
            << "seed " << GetParam() << " user " << i << " declares [" << s
            << "," << e << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGames, AddOnTruthfulness,
                         ::testing::Range<uint64_t>(1, 31));

class SubstOffTruthfulness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubstOffTruthfulness, NoProfitableUnilateralDeviation) {
  Rng rng(GetParam() * 104729);
  const int m = 2 + static_cast<int>(rng.UniformInt(0, 3));
  const int n = 2 + static_cast<int>(rng.UniformInt(0, 2));

  SubstOfflineGame truth;
  for (int j = 0; j < n; ++j) truth.costs.push_back(rng.Uniform(0.2, 1.5));
  for (int i = 0; i < m; ++i) {
    SubstOfflineUser u;
    const int k = 1 + static_cast<int>(rng.UniformInt(0, n - 1));
    auto picks = rng.SampleWithoutReplacement(n, k);
    std::sort(picks.begin(), picks.end());
    u.substitutes.assign(picks.begin(), picks.end());
    u.value = rng.Uniform(0.05, 1.0);
    truth.users.push_back(u);
  }
  ASSERT_TRUE(truth.Validate().ok());

  std::vector<double> all_values;
  for (const auto& u : truth.users) all_values.push_back(u.value);

  for (UserId i = 0; i < m; ++i) {
    const auto& u = truth.users[static_cast<size_t>(i)];
    const double truthful =
        SubstOffUtilityUnderBid(truth, i, u.substitutes, u.value);
    // Value deviations on the true substitute set.
    for (double bid :
         CandidateDeviationBids(truth.costs, all_values, m)) {
      EXPECT_LE(SubstOffUtilityUnderBid(truth, i, u.substitutes, bid),
                truthful + 1e-9)
          << "user " << i << " value deviation " << bid;
    }
    // Set deviations: every non-empty subset of all optimizations (n <= 4
    // keeps this cheap), at the true value.
    for (int mask = 1; mask < (1 << n); ++mask) {
      std::vector<OptId> subs;
      for (OptId j = 0; j < n; ++j) {
        if (mask & (1 << j)) subs.push_back(j);
      }
      EXPECT_LE(SubstOffUtilityUnderBid(truth, i, subs, u.value),
                truthful + 1e-9)
          << "user " << i << " set deviation mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGames, SubstOffTruthfulness,
                         ::testing::Range<uint64_t>(1, 31));

class SubstOnTruthfulness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubstOnTruthfulness, ModelFreeWorstCaseDeviations) {
  Rng rng(GetParam() * 1299709);
  SubstScenario scenario;
  scenario.num_users = 2 + static_cast<int>(rng.UniformInt(0, 2));
  scenario.num_slots = 3;
  scenario.num_opts = 3;
  scenario.substitutes_per_user = 1 + static_cast<int>(rng.UniformInt(0, 2));
  SubstOnlineGame full = MakeSubstGame(scenario, rng.Uniform(0.2, 1.0), rng);

  for (UserId i = 0; i < full.num_users(); ++i) {
    const SubstOnlineUser truth_user = full.users[static_cast<size_t>(i)];
    SubstOnlineGame worst;
    worst.num_slots = full.num_slots;
    worst.costs = full.costs;
    UserId me = 0;
    for (UserId k = 0; k < full.num_users(); ++k) {
      if (full.users[static_cast<size_t>(k)].stream.start <=
          truth_user.stream.start) {
        if (k == i) me = static_cast<UserId>(worst.users.size());
        worst.users.push_back(full.users[static_cast<size_t>(k)]);
      }
    }
    const double truthful = SubstOnUtilityUnderBid(worst, me, truth_user);

    for (double scale : {0.0, 0.5, 0.9, 1.1, 2.0}) {
      SubstOnlineUser dev = truth_user;
      for (double& v : dev.stream.values) v *= scale;
      EXPECT_LE(SubstOnUtilityUnderBid(worst, me, dev), truthful + 1e-9)
          << "seed " << GetParam() << " user " << i << " scale " << scale;
    }
    const int n = static_cast<int>(worst.costs.size());
    for (int mask = 1; mask < (1 << n); ++mask) {
      SubstOnlineUser dev = truth_user;
      dev.substitutes.clear();
      for (OptId j = 0; j < n; ++j) {
        if (mask & (1 << j)) dev.substitutes.push_back(j);
      }
      EXPECT_LE(SubstOnUtilityUnderBid(worst, me, dev), truthful + 1e-9)
          << "seed " << GetParam() << " user " << i << " mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGames, SubstOnTruthfulness,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace optshare
