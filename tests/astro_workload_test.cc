// Tests for merger-tree queries and the §7.2 workload/game construction.
#include <gtest/gtest.h>

#include "astro/astro_workload.h"
#include "core/accounting.h"
#include "core/add_on.h"

namespace optshare::astro {
namespace {

class MergerTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    UniverseParams p;
    p.num_snapshots = 9;
    p.num_halos = 8;
    p.particles_per_halo = 32;
    p.merge_probability = 0.08;
    p.seed = 11;
    UniverseSimulator sim(p);
    snapshots_ = sim.Run();
    truth_ = sim.TrueMembership();
    box_ = p.box_size;
    for (const auto& s : snapshots_) {
      catalogs_.push_back(*FindHalos(s, box_));
    }
  }

  std::vector<Snapshot> snapshots_;
  std::vector<std::vector<int>> truth_;
  std::vector<HaloCatalog> catalogs_;
  double box_ = 0.0;
};

TEST_F(MergerTreeTest, ProgenitorMatchesGroundTruth) {
  MergerTreeEngine engine(&snapshots_, &catalogs_);
  const int last = static_cast<int>(snapshots_.size()) - 1;
  // For each final halo, the FoF progenitor at the first snapshot must be
  // the halo holding the plurality of its particles there (which we can
  // check against ground truth since memberships coincide for compact
  // halos).
  for (int g = 0; g < std::min(3, catalogs_.back().num_halos()); ++g) {
    auto progenitor = engine.ProgenitorByCount(last, g, 0);
    ASSERT_TRUE(progenitor.ok());
    EXPECT_GE(*progenitor, 0);
    EXPECT_LT(*progenitor, catalogs_[0].num_halos());
  }
}

TEST_F(MergerTreeTest, ChainIsMonotoneInSnapshots) {
  MergerTreeEngine engine(&snapshots_, &catalogs_);
  auto chain_r = engine.TraceChain(0, 1);
  ASSERT_TRUE(chain_r.ok());
  const auto& chain = *chain_r;
  ASSERT_GE(chain.size(), 2u);
  EXPECT_EQ(chain.front().snapshot_index, 9);
  for (size_t k = 1; k < chain.size(); ++k) {
    EXPECT_EQ(chain[k].snapshot_index, chain[k - 1].snapshot_index - 1);
    EXPECT_GT(chain[k].contributed_mass, 0.0);
  }
}

TEST_F(MergerTreeTest, StrideSkipsSnapshots) {
  MergerTreeEngine engine(&snapshots_, &catalogs_);
  auto chain = *engine.TraceChain(0, 4);
  // Snapshots 9, 5, 1.
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].snapshot_index, 9);
  EXPECT_EQ(chain[1].snapshot_index, 5);
  EXPECT_EQ(chain[2].snapshot_index, 1);
}

TEST_F(MergerTreeTest, ViewsReduceSimulatedCost) {
  MergerTreeEngine engine(&snapshots_, &catalogs_);
  QueryCosts costs;

  engine.ResetStats();
  (void)*engine.TraceChain(0, 1);
  const double without = costs.Seconds(engine.stats());

  engine.SetAvailableViews(std::vector<bool>(snapshots_.size(), true));
  engine.ResetStats();
  (void)*engine.TraceChain(0, 1);
  const double with = costs.Seconds(engine.stats());

  EXPECT_LT(with, without);
}

TEST_F(MergerTreeTest, StatsAccumulateAndReset) {
  MergerTreeEngine engine(&snapshots_, &catalogs_);
  (void)*engine.ProgenitorByCount(8, 0, 7);
  EXPECT_GT(engine.stats().rows_scanned, 0);
  EXPECT_EQ(engine.stats().queries_run, 1);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().rows_scanned, 0);
}

TEST_F(MergerTreeTest, ErrorsOnBadArguments) {
  MergerTreeEngine engine(&snapshots_, &catalogs_);
  EXPECT_FALSE(engine.ProgenitorByCount(99, 0, 0).ok());
  EXPECT_FALSE(engine.ProgenitorByCount(8, 0, 8).ok());  // Same snapshot.
  EXPECT_FALSE(engine.ProgenitorByCount(8, 9999, 0).ok());
  EXPECT_FALSE(engine.TraceChain(0, 0).ok());
  EXPECT_FALSE(engine.TraceChain(-1, 1).ok());
}

TEST(SnapshotsForStrideTest, PaperStrides) {
  EXPECT_EQ(SnapshotsForStride(1, 27).size(), 27u);
  EXPECT_EQ(SnapshotsForStride(2, 27).size(), 14u);  // 27, 25, ..., 1.
  EXPECT_EQ(SnapshotsForStride(4, 27).size(), 7u);   // 27, 23, ..., 3.
  EXPECT_EQ(SnapshotsForStride(2, 27).front(), 27);
  EXPECT_EQ(SnapshotsForStride(2, 27).back(), 1);
  EXPECT_EQ(SnapshotsForStride(4, 27).back(), 3);
}

TEST(PaperWorkloadModelTest, MatchesSection72Constants) {
  const AstroWorkloadModel m = PaperWorkloadModel();
  ASSERT_EQ(m.num_users(), 6);
  ASSERT_EQ(m.num_views(), 27);
  // Runtimes 81/36/16/83/44/17 minutes.
  EXPECT_DOUBLE_EQ(m.runtime_sec[0], 81 * 60.0);
  EXPECT_DOUBLE_EQ(m.runtime_sec[5], 17 * 60.0);
  // Snapshot-27 view savings 18/7/3/16/9/4 cents.
  EXPECT_DOUBLE_EQ(m.savings_dollars[0][26], 0.18);
  EXPECT_DOUBLE_EQ(m.savings_dollars[1][26], 0.07);
  EXPECT_DOUBLE_EQ(m.savings_dollars[5][26], 0.04);
  // Other consulted views save 1 cent; unconsulted save 0.
  EXPECT_DOUBLE_EQ(m.savings_dollars[0][0], 0.01);   // Stride 1 uses snap 1.
  EXPECT_DOUBLE_EQ(m.savings_dollars[1][0], 0.01);   // 27 odd chain hits 1.
  EXPECT_DOUBLE_EQ(m.savings_dollars[1][1], 0.0);    // Snap 2 unused.
  EXPECT_DOUBLE_EQ(m.savings_dollars[2][2], 0.01);   // Stride 4 uses snap 3.
  EXPECT_DOUBLE_EQ(m.savings_dollars[2][1], 0.0);
  // View costs $2.31 each.
  for (double c : m.view_cost_dollars) EXPECT_DOUBLE_EQ(c, 2.31);
  // Baseline dollars: 81 min at $0.50/h.
  EXPECT_NEAR(m.BaselineDollarsPerExecution(0), 81.0 / 60.0 * 0.5, 1e-12);
}

TEST(MeasureWorkloadsTest, ProducesConsistentModel) {
  UniverseParams p;
  p.num_snapshots = 27;
  p.num_halos = 14;
  p.particles_per_halo = 24;
  p.seed = 3;
  UniverseSimulator sim(p);
  const auto snapshots = sim.Run();
  std::vector<HaloCatalog> catalogs;
  for (const auto& s : snapshots) catalogs.push_back(*FindHalos(s, p.box_size));

  QueryCosts costs;
  auto model = MeasureWorkloads(snapshots, catalogs, costs, 0.5, 0.05);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_EQ(model->num_users(), 6);
  ASSERT_EQ(model->num_views(), 27);
  // Stride-1 users run more queries than stride-4 users.
  EXPECT_GT(model->runtime_sec[0], model->runtime_sec[2]);
  EXPECT_GT(model->runtime_sec[3], model->runtime_sec[5]);
  for (int u = 0; u < 6; ++u) {
    for (int j = 0; j < 27; ++j) {
      EXPECT_GE(model->savings_dollars[static_cast<size_t>(u)]
                                      [static_cast<size_t>(j)],
                0.0);
    }
    // The snapshot-27 view helps every user (all consult it).
    EXPECT_GT(model->savings_dollars[static_cast<size_t>(u)][26], 0.0);
  }
}

TEST(MeasureWorkloadsTest, RejectsMismatchedInputs) {
  std::vector<Snapshot> snaps(3);
  std::vector<HaloCatalog> catalogs(2);
  QueryCosts costs;
  EXPECT_FALSE(MeasureWorkloads(snaps, catalogs, costs, 0.5, 0.05).ok());
  EXPECT_FALSE(MeasureWorkloads({}, {}, costs, 0.5, 0.05).ok());
}

TEST(AstroGameTest, IntervalEnumeration) {
  const auto intervals = AllIntervals(4);
  EXPECT_EQ(intervals.size(), 10u);  // §7.2: 10 choices, 10^6 combinations.
  EXPECT_EQ(intervals.front(), (std::pair<TimeSlot, TimeSlot>{1, 1}));
  EXPECT_EQ(intervals.back(), (std::pair<TimeSlot, TimeSlot>{4, 4}));

  Rng rng(5);
  const auto sampled = SampleIntervals(4, 6, rng);
  ASSERT_EQ(sampled.size(), 6u);
  for (const auto& [s, e] : sampled) {
    EXPECT_GE(s, 1);
    EXPECT_LE(e, 4);
    EXPECT_LE(s, e);
  }
}

TEST(AstroGameTest, BuildGameSpreadsValueOverInterval) {
  const AstroWorkloadModel model = PaperWorkloadModel();
  AstroGameSpec spec;
  spec.num_slots = 4;
  spec.intervals.assign(6, {2, 3});
  spec.executions = 100.0;
  auto game = BuildAstroGame(model, spec);
  ASSERT_TRUE(game.ok());
  EXPECT_TRUE(game->Validate().ok());
  // User 0's snapshot-27 view value: 18c x 100 = $18 over slots 2..3.
  const SlotValues& sv = game->bids[0][26];
  EXPECT_EQ(sv.start, 2);
  EXPECT_EQ(sv.end, 3);
  EXPECT_NEAR(sv.Total(), 18.0, 1e-9);
  EXPECT_NEAR(sv.At(2), 9.0, 1e-9);
}

TEST(AstroGameTest, BuildGameValidatesSpec) {
  const AstroWorkloadModel model = PaperWorkloadModel();
  AstroGameSpec spec;
  spec.num_slots = 4;
  spec.intervals.assign(5, {1, 1});  // Wrong user count.
  EXPECT_FALSE(BuildAstroGame(model, spec).ok());
  spec.intervals.assign(6, {3, 5});  // Interval past horizon.
  EXPECT_FALSE(BuildAstroGame(model, spec).ok());
  spec.intervals.assign(6, {1, 2});
  spec.executions = -1.0;
  EXPECT_FALSE(BuildAstroGame(model, spec).ok());
}

TEST(AstroGameTest, EndToEndMechanismRun) {
  // The full §7.2 pipeline at one configuration: the snapshot-27 view is
  // worth 57c/execution across users, so at 100 executions it is funded;
  // AddOn recovers every implemented view's cost.
  const AstroWorkloadModel model = PaperWorkloadModel();
  AstroGameSpec spec;
  spec.num_slots = 4;
  spec.intervals.assign(6, {1, 4});
  spec.executions = 100.0;
  const MultiAdditiveOnlineGame game = *BuildAstroGame(model, spec);
  const auto outcomes = RunAddOnAll(game);
  EXPECT_TRUE(outcomes[26].implemented);
  const Accounting acc = AccountAddOnAll(game, outcomes);
  EXPECT_TRUE(acc.CostRecovered());
  EXPECT_GT(acc.TotalUtility(), 0.0);
}

}  // namespace
}  // namespace optshare::astro
