// fs helper coverage: atomic replacement, directory enumeration, and the
// reversible path-component encoding the FileStateStore builds tenancy
// directories from.
#include "common/fs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace optshare::fs {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Scratch dirs live under the working directory (the build tree when
    // run via ctest), so the suite never writes outside it.
    dir_ = std::string("optshare_fs_test_scratch/") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(RemoveAll(dir_).ok());
    ASSERT_TRUE(EnsureDir(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::string dir_;
};

TEST_F(FsTest, WriteAtomicReadBack) {
  const std::string path = dir_ + "/file.json";
  ASSERT_TRUE(WriteFileAtomic(path, "{\"a\":1}", /*sync=*/false).ok());
  Result<std::string> contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "{\"a\":1}");

  // Overwrite replaces wholesale and leaves no temp file behind.
  ASSERT_TRUE(WriteFileAtomic(path, "v2", /*sync=*/true).ok());
  contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "v2");
  EXPECT_FALSE(PathExists(path + ".tmp"));
}

TEST_F(FsTest, ReadMissingFileIsNotFound) {
  Result<std::string> contents = ReadFile(dir_ + "/absent");
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

TEST_F(FsTest, ListDirSortsAndRemovalsWork) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/b", "", false).ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/a", "", false).ok());
  ASSERT_TRUE(EnsureDir(dir_ + "/c").ok());
  Result<std::vector<std::string>> names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b", "c"}));

  ASSERT_TRUE(RemoveFile(dir_ + "/a").ok());
  ASSERT_TRUE(RemoveFile(dir_ + "/a").ok());  // Idempotent.
  ASSERT_TRUE(RemoveAll(dir_ + "/c").ok());
  names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"b"}));

  EXPECT_FALSE(ListDir(dir_ + "/nope").ok());
}

TEST(PathComponentEncoding, RoundTripsArbitraryNames) {
  for (const std::string name :
       {std::string("plain"), std::string("with space"),
        std::string("dots.and/slashes\\too"), std::string(".."),
        std::string("."), std::string("%already%"), std::string("acme-1_B"),
        std::string("\xc3\xa9t\xc3\xa9"), std::string("\n\t"),
        std::string()}) {
    const std::string encoded = EncodePathComponent(name);
    // Safe for a filesystem: no separators, no dot-only names, non-empty.
    EXPECT_FALSE(encoded.empty());
    EXPECT_EQ(encoded.find('/'), std::string::npos) << name;
    EXPECT_NE(encoded, ".");
    EXPECT_NE(encoded, "..");
    Result<std::string> decoded = DecodePathComponent(encoded);
    ASSERT_TRUE(decoded.ok()) << name;
    EXPECT_EQ(*decoded, name);
  }
  // Distinct names cannot collide (the encoding is injective).
  EXPECT_NE(EncodePathComponent("a b"), EncodePathComponent("a%20b"));
}

TEST(PathComponentEncoding, RejectsMalformedEscapes) {
  EXPECT_FALSE(DecodePathComponent("trailing%2").ok());
  EXPECT_FALSE(DecodePathComponent("bad%zz").ok());
}

}  // namespace
}  // namespace optshare::fs
