// HTAP read-path differential: the acceptance bar for the snapshot-serving
// read path. A server answering report / query_price inline from the
// published ReadView (enable_read_path = true, the default) must be
// indistinguishable — bit for bit, through the JSON encoding — from one
// that routes every read through the tenancy's FIFO shard
// (enable_read_path = false), at every period boundary AND mid-period,
// for the paper mechanism and both baselines. Plus: historical period
// reports from the retained history, the NotFound surfaces, the
// read_path counters, and a writer-storm test proving reads are
// torn-free while the write queue is deep (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "service/marketplace_server.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

std::vector<simdb::SimUser> JitterTenants(std::vector<simdb::SimUser> tenants,
                                          int slots, uint64_t seed) {
  Rng rng(seed);
  return simdb::JitterTenants(std::move(tenants), slots, rng);
}

Response Must(MarketplaceServer& server, Request request) {
  Response response = server.Handle(std::move(request));
  EXPECT_TRUE(response.ok()) << response.status.ToString();
  return response;
}

Request OpenRequest(const std::string& tenancy, int scenario_tenants,
                    int scenario_slots, const ServiceConfig& config,
                    bool first) {
  Request open;
  open.op = RequestOp::kOpenPeriod;
  open.tenancy = tenancy;
  if (first) {
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = scenario_tenants;
    catalog.scenario_slots = scenario_slots;
    open.catalog = catalog;
    open.config = config;
  }
  return open;
}

Request ReportRequest(const std::string& tenancy, int period = 0) {
  Request report;
  report.op = RequestOp::kReport;
  report.tenancy = tenancy;
  report.period = period;
  return report;
}

Request QueryPriceRequest(const std::string& tenancy,
                          std::vector<simdb::SimUser> tenants) {
  Request query;
  query.op = RequestOp::kQueryPrice;
  query.tenancy = tenancy;
  query.tenants = std::move(tenants);
  return query;
}

/// The differential drive: the same awaited request against both servers
/// must produce byte-identical payloads (JSON dumps round-trip doubles
/// exactly, so this is bit-for-bit equality of every balance).
void ExpectSamePayload(MarketplaceServer& read_path,
                       MarketplaceServer& write_path, const Request& request,
                       const std::string& where) {
  const Response a = Must(read_path, request);
  const Response b = Must(write_path, request);
  EXPECT_EQ(a.payload.Dump(), b.payload.Dump()) << where;
}

class ReadPathDifferentialTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ReadPathDifferentialTest, InlineReadsMatchShardReadsBitIdentically) {
  constexpr int kTenants = 6;
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.mechanism = GetParam();

  ServerOptions on_options;
  on_options.num_workers = 2;
  MarketplaceServer read_path(on_options);
  ServerOptions off_options;
  off_options.num_workers = 2;
  off_options.enable_read_path = false;
  MarketplaceServer write_path(off_options);

  for (int p = 0; p < 3; ++p) {
    const std::vector<simdb::SimUser> tenants = JitterTenants(
        scenario->tenants, kSlots, 9000 + static_cast<uint64_t>(p));
    for (MarketplaceServer* server : {&read_path, &write_path}) {
      Must(*server, OpenRequest("acme", kTenants, kSlots, config, p == 0));
      Request submit;
      submit.op = RequestOp::kSubmit;
      submit.tenancy = "acme";
      submit.tenants = tenants;
      Must(*server, submit);
      Request advance;
      advance.op = RequestOp::kAdvanceSlot;
      advance.tenancy = "acme";
      advance.slots = kSlots / 2;
      Must(*server, advance);
    }
    // Mid-period: the inline answer is boundary snapshot + published
    // delta; the shard answer is computed from the live session. Equality
    // here is the snapshot+delta freshness claim (read-your-writes for an
    // awaited client: the half-period advance is visible).
    ExpectSamePayload(read_path, write_path, ReportRequest("acme"),
                      "mid-period report, period " + std::to_string(p + 1));
    ExpectSamePayload(
        read_path, write_path,
        QueryPriceRequest("acme", JitterTenants(scenario->tenants, kSlots,
                                                9100 + static_cast<uint64_t>(p))),
        "mid-period query_price, period " + std::to_string(p + 1));
    for (MarketplaceServer* server : {&read_path, &write_path}) {
      Request advance;
      advance.op = RequestOp::kAdvanceSlot;
      advance.tenancy = "acme";
      advance.slots = kSlots - kSlots / 2;
      Must(*server, advance);
      Request close;
      close.op = RequestOp::kClosePeriod;
      close.tenancy = "acme";
      Must(*server, close);
    }
    // Period boundary: live report, every retained historical report, and
    // a what-if quote must all agree between the two paths.
    ExpectSamePayload(read_path, write_path, ReportRequest("acme"),
                      "boundary report, period " + std::to_string(p + 1));
    for (int closed = 1; closed <= p + 1; ++closed) {
      ExpectSamePayload(
          read_path, write_path, ReportRequest("acme", closed),
          "historical report " + std::to_string(closed) + " after period " +
              std::to_string(p + 1));
    }
    ExpectSamePayload(
        read_path, write_path,
        QueryPriceRequest("acme", scenario->tenants),
        "boundary query_price, period " + std::to_string(p + 1));
  }

  // The reads above were actually served inline on the read-path server —
  // the differential is vacuous if both servers took the shard.
  Request info;
  info.op = RequestOp::kServerInfo;
  info.version = 2;
  const Response on_info = Must(read_path, info);
  const JsonValue* on_read_path = on_info.payload.Find("read_path");
  ASSERT_NE(on_read_path, nullptr);
  EXPECT_TRUE(on_read_path->Find("enabled")->AsBool());
  EXPECT_GT(on_read_path->Find("reads_served")->AsNumber(), 0.0);
  EXPECT_EQ(on_read_path->Find("fallbacks")->AsNumber(), 0.0);
  const Response off_info = Must(write_path, info);
  const JsonValue* off_read_path = off_info.payload.Find("read_path");
  ASSERT_NE(off_read_path, nullptr);
  EXPECT_FALSE(off_read_path->Find("enabled")->AsBool());
  EXPECT_EQ(off_read_path->Find("reads_served")->AsNumber(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, ReadPathDifferentialTest,
                         ::testing::Values("addon", "naive_online",
                                           "regret"));

TEST(ReadPathErrorsTest, BothPathsAnswerTheSameTypedErrors) {
  ServerOptions off_options;
  off_options.enable_read_path = false;
  MarketplaceServer read_path{{}};
  MarketplaceServer write_path(off_options);
  auto scenario = simdb::TelemetryScenario(4, 6);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = 6;
  for (MarketplaceServer* server : {&read_path, &write_path}) {
    Must(*server, OpenRequest("acme", 4, 6, config, true));
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = "acme";
    advance.slots = 6;
    Must(*server, advance);
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = "acme";
    Must(*server, close);
  }
  for (MarketplaceServer* server : {&read_path, &write_path}) {
    // Unknown tenancies are NotFound on both paths (the inline path
    // falls back to the shard, which owns the error).
    Response report = server->Handle(ReportRequest("ghost"));
    EXPECT_EQ(report.status.code(), StatusCode::kNotFound)
        << report.status.ToString();
    Response query = server->Handle(QueryPriceRequest("ghost", {}));
    EXPECT_EQ(query.status.code(), StatusCode::kNotFound)
        << query.status.ToString();
    // A period that was never retained is NotFound with the retention
    // explanation, identically on both paths.
    Response missing = server->Handle(ReportRequest("acme", 99));
    EXPECT_EQ(missing.status.code(), StatusCode::kNotFound);
    EXPECT_NE(missing.status.message().find("no report retained"),
              std::string::npos)
        << missing.status.message();
  }
}

// The TSan target: a deep un-awaited write storm against one tenancy while
// reader threads hammer report. Every read must observe an untorn view —
// the period-1 boundary fields frozen mid-storm, the slot counter
// monotone — and none may block on (or be reordered behind) the write
// queue's contents.
TEST(ReadPathStormTest, WriterStormNeverTearsOrChangesBoundaryReads) {
  auto scenario = simdb::TelemetryScenario(4, 6);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = 6;
  ServerOptions options;
  options.num_workers = 4;
  MarketplaceServer server(options);

  Must(server, OpenRequest("acme", 4, 6, config, true));
  Request submit;
  submit.op = RequestOp::kSubmit;
  submit.tenancy = "acme";
  submit.tenants = JitterTenants(scenario->tenants, 6, 9500);
  Must(server, submit);
  Request advance;
  advance.op = RequestOp::kAdvanceSlot;
  advance.tenancy = "acme";
  advance.slots = 6;
  Must(server, advance);
  Request close;
  close.op = RequestOp::kClosePeriod;
  close.tenancy = "acme";
  Must(server, close);

  // Period 2 is wide enough that the storm's advances never close it; the
  // period-1 boundary is the frozen truth every mid-storm read must carry.
  ServiceConfig wide = config;
  wide.slots_per_period = 1 << 20;
  Request reopen;
  reopen.op = RequestOp::kOpenPeriod;
  reopen.tenancy = "acme";
  reopen.config = wide;
  Must(server, reopen);
  Must(server, submit);
  const Response boundary = Must(server, ReportRequest("acme"));
  const std::string expected_balance =
      boundary.payload.Find("cumulative_balance")->Dump();
  const std::string expected_built =
      boundary.payload.Find("built_structures")->Dump();

  constexpr int kWrites = 2000;
  constexpr int kReadsPerThread = 800;
  constexpr int kReaderThreads = 3;
  std::atomic<int> writes_acked{0};
  std::thread writer([&server, &writes_acked] {
    Request slot;
    slot.op = RequestOp::kAdvanceSlot;
    slot.tenancy = "acme";
    slot.slots = 1;
    for (int i = 0; i < kWrites; ++i) {
      server.DispatchCallback(slot, [&writes_acked](Response response) {
        EXPECT_TRUE(response.ok()) << response.status.ToString();
        writes_acked.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&server, &expected_balance, &expected_built] {
      double last_slot = 0.0;
      for (int i = 0; i < kReadsPerThread; ++i) {
        const Response read = server.Handle(ReportRequest("acme"));
        ASSERT_TRUE(read.ok()) << read.status.ToString();
        // Boundary fields are immutable mid-period: any other value is a
        // torn read of a half-published state.
        EXPECT_EQ(read.payload.Find("periods_run")->AsNumber(), 1.0);
        EXPECT_EQ(read.payload.Find("cumulative_balance")->Dump(),
                  expected_balance);
        EXPECT_EQ(read.payload.Find("built_structures")->Dump(),
                  expected_built);
        EXPECT_TRUE(read.payload.Find("period_open")->AsBool());
        // The delta may only move forward.
        const double slot = read.payload.Find("current_slot")->AsNumber();
        EXPECT_GE(slot, last_slot);
        last_slot = slot;
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  server.Drain();
  EXPECT_EQ(writes_acked.load(), kWrites);
  // After the dust settles the delta has read-your-writes freshness again.
  const Response settled = Must(server, ReportRequest("acme"));
  EXPECT_EQ(settled.payload.Find("current_slot")->AsNumber(),
            static_cast<double>(kWrites));
}

}  // namespace
}  // namespace optshare::service
