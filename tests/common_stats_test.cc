#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace optshare {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 0.0);
  EXPECT_EQ(rs.max(), 0.0);
}

TEST(RunningStatTest, SingleObservation) {
  RunningStat rs;
  rs.Add(4.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_EQ(rs.mean(), 4.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 4.5);
  EXPECT_EQ(rs.max(), 4.5);
}

TEST(RunningStatTest, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - 3.0 * i;
    all.Add(x);
    (i < 20 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptyIsIdentity) {
  RunningStat rs, empty;
  rs.Add(1.0);
  rs.Add(3.0);
  rs.Merge(empty);
  EXPECT_EQ(rs.count(), 2u);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.0);

  RunningStat empty2;
  empty2.Merge(rs);
  EXPECT_EQ(empty2.count(), 2u);
  EXPECT_DOUBLE_EQ(empty2.mean(), 2.0);
}

TEST(RunningStatTest, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: huge mean, tiny variance.
  RunningStat rs;
  for (double x : {1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}) rs.Add(x);
  EXPECT_NEAR(rs.mean(), 1e9 + 10, 1e-3);
  EXPECT_NEAR(rs.variance(), 30.0, 1e-6);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  // Sorted {10, 20}: q=0.25 -> 12.5.
  EXPECT_DOUBLE_EQ(Percentile({20.0, 10.0}, 0.25), 12.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.9), 7.0);
}

TEST(MeanTest, EmptyIsZero) { EXPECT_EQ(Mean({}), 0.0); }

TEST(MeanTest, Basic) { EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 6.0}), 3.0); }

TEST(SummarizeTest, EmptySample) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, FullSummary) {
  Summary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.p10, 1.4, 1e-12);
  EXPECT_NEAR(s.p90, 4.6, 1e-12);
}

}  // namespace
}  // namespace optshare
