#include "core/types.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

TEST(SlotValuesTest, ConstantStream) {
  SlotValues sv = SlotValues::Constant(2, 4, 5.0);
  EXPECT_EQ(sv.start, 2);
  EXPECT_EQ(sv.end, 4);
  EXPECT_EQ(sv.Length(), 3);
  EXPECT_DOUBLE_EQ(sv.Total(), 15.0);
  EXPECT_TRUE(sv.Validate().ok());
}

TEST(SlotValuesTest, SingleSlot) {
  SlotValues sv = SlotValues::Single(3, 7.0);
  EXPECT_EQ(sv.start, 3);
  EXPECT_EQ(sv.end, 3);
  EXPECT_DOUBLE_EQ(sv.Total(), 7.0);
}

TEST(SlotValuesTest, AtInsideAndOutsideInterval) {
  auto sv = SlotValues::Make(2, 4, {1.0, 2.0, 3.0});
  ASSERT_TRUE(sv.ok());
  EXPECT_DOUBLE_EQ(sv->At(1), 0.0);  // Before arrival.
  EXPECT_DOUBLE_EQ(sv->At(2), 1.0);
  EXPECT_DOUBLE_EQ(sv->At(3), 2.0);
  EXPECT_DOUBLE_EQ(sv->At(4), 3.0);
  EXPECT_DOUBLE_EQ(sv->At(5), 0.0);  // After departure.
}

TEST(SlotValuesTest, ResidualFrom) {
  auto sv = SlotValues::Make(1, 3, {10.0, 10.0, 10.0});
  ASSERT_TRUE(sv.ok());
  EXPECT_DOUBLE_EQ(sv->ResidualFrom(1), 30.0);
  EXPECT_DOUBLE_EQ(sv->ResidualFrom(2), 20.0);
  EXPECT_DOUBLE_EQ(sv->ResidualFrom(3), 10.0);
  EXPECT_DOUBLE_EQ(sv->ResidualFrom(4), 0.0);
  // Residual before the arrival is the full value.
  EXPECT_DOUBLE_EQ(sv->ResidualFrom(0), 30.0);
}

TEST(SlotValuesTest, MakeRejectsBadIntervals) {
  EXPECT_FALSE(SlotValues::Make(0, 1, {1.0, 1.0}).ok());  // Slot 0 invalid.
  EXPECT_FALSE(SlotValues::Make(3, 2, {}).ok());          // end < start.
  EXPECT_FALSE(SlotValues::Make(1, 2, {1.0}).ok());       // Wrong length.
}

TEST(SlotValuesTest, MakeRejectsBadValues) {
  EXPECT_FALSE(SlotValues::Make(1, 1, {-1.0}).ok());
  EXPECT_FALSE(
      SlotValues::Make(1, 1, {std::numeric_limits<double>::infinity()}).ok());
  EXPECT_FALSE(
      SlotValues::Make(1, 1, {std::numeric_limits<double>::quiet_NaN()}).ok());
}

TEST(SlotValuesTest, ZeroValuesAreAllowed) {
  // A user may value only a subset of her interval's slots (paper §5.1).
  auto sv = SlotValues::Make(1, 3, {0.0, 5.0, 0.0});
  ASSERT_TRUE(sv.ok());
  EXPECT_DOUBLE_EQ(sv->Total(), 5.0);
}

}  // namespace
}  // namespace optshare
