// Cross-mechanism property suite for the unified engine (core/mechanism.h):
//
//  * Differential parity: every engine-backed entry point must reproduce
//    the seed's dense-scan implementations (core/reference.h) exactly —
//    serviced sets, payments, shares, and even round counts — on seeded
//    random games (n up to 1k users, z up to 50 slots).
//  * Economic properties: budget balance (offline), cost recovery (online),
//    and cross-monotonicity of the sharing methods.
//  * Registry: name-based mechanism selection, Supports() enforcement, and
//    agreement between MechanismResult/AccountResult and the per-mechanism
//    legacy accounting.
#include "core/mechanism.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "baseline/baseline_mechanisms.h"
#include "baseline/naive_online.h"
#include "baseline/regret.h"
#include "common/money.h"
#include "common/rng.h"
#include "core/accounting.h"
#include "core/moulin.h"
#include "core/reference.h"
#include "workload/scenario.h"

namespace optshare {
namespace {

void ExpectSameShapley(const ShapleyResult& engine, const ShapleyResult& dense,
                       const std::string& context) {
  EXPECT_EQ(engine.implemented, dense.implemented) << context;
  EXPECT_EQ(engine.iterations, dense.iterations) << context;
  EXPECT_EQ(engine.serviced, dense.serviced) << context;
  // Shares and payments are C/k for the same k: bit-identical, not merely
  // within tolerance.
  EXPECT_EQ(engine.cost_share, dense.cost_share) << context;
  EXPECT_EQ(engine.payments, dense.payments) << context;
}

std::vector<double> RandomBids(Rng& rng, int m, double zero_fraction,
                               double inf_fraction) {
  std::vector<double> bids;
  bids.reserve(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const double roll = rng.NextDouble();
    if (roll < zero_fraction) {
      bids.push_back(0.0);
    } else if (roll < zero_fraction + inf_fraction) {
      bids.push_back(kInfiniteBid);
    } else {
      bids.push_back(rng.Uniform(0.0, 1.0));
    }
  }
  return bids;
}

// --- Shapley ---------------------------------------------------------------

TEST(MechanismEngineTest, ShapleyMatchesDenseOnRandomBids) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 999));
    const std::vector<double> bids = RandomBids(rng, m, 0.2, 0.02);
    const double cost = rng.Uniform(0.01, 0.6) * m;
    ExpectSameShapley(RunShapley(cost, bids),
                      reference::RunShapleyDense(cost, bids),
                      "trial " + std::to_string(trial));
  }
}

TEST(MechanismEngineTest, ShapleyMatchesDenseOnEvictionCascade) {
  // b_k = C/(k + 0.5) forces one eviction per dense round — the worst case
  // the sorted prefix scan eliminates. Nothing is implementable.
  const int m = 300;
  const double cost = 100.0;
  std::vector<double> bids;
  for (int k = 1; k <= m; ++k) bids.push_back(cost / (k + 0.5));
  ExpectSameShapley(RunShapley(cost, bids),
                    reference::RunShapleyDense(cost, bids), "cascade");
  EXPECT_FALSE(RunShapley(cost, bids).implemented);
  EXPECT_EQ(RunShapley(cost, bids).iterations, m);
}

TEST(MechanismEngineTest, ShapleyMatchesDenseOnTinyCost) {
  // Cost below m * epsilon: the share collapses under the money tolerance
  // and the dense loop services even zero bidders.
  const std::vector<double> bids = {0.0, 0.5, 0.0, kInfiniteBid};
  const double cost = 1e-12;
  const ShapleyResult engine = RunShapley(cost, bids);
  ExpectSameShapley(engine, reference::RunShapleyDense(cost, bids),
                    "tiny cost");
  EXPECT_EQ(engine.NumServiced(), 4);
}

TEST(MechanismEngineTest, ShapleyMatchesDenseOnEdgeCases) {
  ExpectSameShapley(RunShapley(10.0, {}), reference::RunShapleyDense(10.0, {}),
                    "no users");
  ExpectSameShapley(RunShapley(10.0, {0.0, 0.0}),
                    reference::RunShapleyDense(10.0, {0.0, 0.0}),
                    "all zero");
  ExpectSameShapley(RunShapley(10.0, {kInfiniteBid}),
                    reference::RunShapleyDense(10.0, {kInfiniteBid}),
                    "single pinned");
  // Bid exactly at the even share stays serviced.
  ExpectSameShapley(RunShapley(90.0, {30.0, 30.0, 30.0}),
                    reference::RunShapleyDense(90.0, {30.0, 30.0, 30.0}),
                    "exact share");
}

// --- Moulin ----------------------------------------------------------------

TEST(MechanismEngineTest, EgalitarianMoulinMatchesDense) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 200));
    const std::vector<double> bids = RandomBids(rng, m, 0.1, 0.0);
    const double cost = rng.Uniform(0.01, 0.5) * m;
    EgalitarianSharing method(cost);
    ExpectSameShapley(RunMoulin(method, bids),
                      reference::RunMoulinDense(method, bids),
                      "trial " + std::to_string(trial));
    // The egalitarian Moulin path and Mechanism 1 are one code path now.
    ExpectSameShapley(RunMoulin(method, bids), RunShapley(cost, bids),
                      "vs shapley, trial " + std::to_string(trial));
  }
}

TEST(MechanismEngineTest, WeightedMoulinStillMatchesDense) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 64));
    std::vector<double> weights;
    for (int i = 0; i < m; ++i) weights.push_back(rng.Uniform(0.5, 4.0));
    const auto method = WeightedSharing::Make(rng.Uniform(0.1, 10.0), weights);
    ASSERT_TRUE(method.ok());
    const std::vector<double> bids = RandomBids(rng, m, 0.1, 0.0);
    ExpectSameShapley(RunMoulin(*method, bids),
                      reference::RunMoulinDense(*method, bids),
                      "trial " + std::to_string(trial));
  }
}

TEST(MechanismEngineTest, SharingMethodsStayCrossMonotonic) {
  EXPECT_TRUE(IsCrossMonotonic(EgalitarianSharing(7.0), 6));
  const auto weighted = WeightedSharing::Make(7.0, {1.0, 2.5, 0.5, 3.0});
  ASSERT_TRUE(weighted.ok());
  EXPECT_TRUE(IsCrossMonotonic(*weighted, 4));
}

// --- AddOff ----------------------------------------------------------------

TEST(MechanismEngineTest, AddOffMatchesDense) {
  Rng rng(14);
  for (int trial = 0; trial < 30; ++trial) {
    AdditiveOfflineGame game;
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 300));
    const int n = 1 + static_cast<int>(rng.UniformInt(0, 8));
    for (int j = 0; j < n; ++j) {
      game.costs.push_back(rng.Uniform(0.01, 0.5) * m);
    }
    for (int i = 0; i < m; ++i) {
      std::vector<double> row;
      for (int j = 0; j < n; ++j) {
        row.push_back(rng.Bernoulli(0.3) ? 0.0 : rng.Uniform(0.0, 1.0));
      }
      game.bids.push_back(std::move(row));
    }
    ASSERT_TRUE(game.Validate().ok());

    const AddOffResult engine = RunAddOff(game);
    const AddOffResult dense = reference::RunAddOffDense(game);
    ASSERT_EQ(engine.per_opt.size(), dense.per_opt.size());
    EXPECT_EQ(engine.total_payment, dense.total_payment);
    for (size_t j = 0; j < dense.per_opt.size(); ++j) {
      ExpectSameShapley(engine.per_opt[j], dense.per_opt[j],
                        "trial " + std::to_string(trial) + " opt " +
                            std::to_string(j));
    }
    // Budget balance: payments exactly cover implemented costs.
    double paid = 0.0;
    for (double p : engine.total_payment) paid += p;
    EXPECT_NEAR(paid, engine.ImplementedCost(game.costs), 1e-6);
  }
}

// --- AddOn -----------------------------------------------------------------

AdditiveScenario RandomAdditiveScenario(Rng& rng, int max_users) {
  AdditiveScenario scenario;
  scenario.num_users = 1 + static_cast<int>(rng.UniformInt(0, max_users - 1));
  scenario.num_slots = 1 + static_cast<int>(rng.UniformInt(0, 49));
  scenario.duration =
      1 + static_cast<int>(rng.UniformInt(0, scenario.num_slots - 1));
  return scenario;
}

TEST(MechanismEngineTest, AddOnMatchesDenseOnRandomGames) {
  Rng rng(15);
  for (int trial = 0; trial < 25; ++trial) {
    const AdditiveScenario scenario = RandomAdditiveScenario(rng, 1000);
    const double cost =
        rng.Uniform(0.005, 0.3) * scenario.num_users + 0.001;
    const AdditiveOnlineGame game = MakeAdditiveGame(scenario, cost, rng);

    const AddOnResult engine = RunAddOn(game);
    const AddOnResult dense = reference::RunAddOnDense(game);
    const std::string context = "trial " + std::to_string(trial);
    EXPECT_EQ(engine.implemented, dense.implemented) << context;
    EXPECT_EQ(engine.implemented_at, dense.implemented_at) << context;
    EXPECT_EQ(engine.serviced, dense.serviced) << context;
    EXPECT_EQ(engine.cumulative, dense.cumulative) << context;
    EXPECT_EQ(engine.payments, dense.payments) << context;
    EXPECT_EQ(engine.cost_share, dense.cost_share) << context;

    // Cost recovery: departures pay at least the final share, so payments
    // cover the cost whenever the optimization was built.
    if (engine.implemented) {
      EXPECT_TRUE(MoneyGe(engine.TotalPayment(), game.cost)) << context;
    }
  }
}

TEST(MechanismEngineTest, AddOnMatchesDenseWithNonUniformStreams) {
  // Random (not evenly spread) per-slot values exercise the residual
  // suffix-sum state against the dense per-slot recomputation.
  Rng rng(16);
  for (int trial = 0; trial < 25; ++trial) {
    AdditiveOnlineGame game;
    game.num_slots = 1 + static_cast<int>(rng.UniformInt(0, 49));
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 499));
    game.cost = rng.Uniform(0.01, 0.4) * m + 0.001;
    for (int i = 0; i < m; ++i) {
      const TimeSlot start =
          1 + static_cast<TimeSlot>(rng.UniformInt(0, game.num_slots - 1));
      const TimeSlot end =
          start + static_cast<TimeSlot>(rng.UniformInt(0, game.num_slots - start));
      std::vector<double> values;
      for (TimeSlot t = start; t <= end; ++t) {
        values.push_back(rng.Bernoulli(0.2) ? 0.0 : rng.Uniform(0.0, 1.0));
      }
      game.users.push_back(*SlotValues::Make(start, end, std::move(values)));
    }
    ASSERT_TRUE(game.Validate().ok());

    const AddOnResult engine = RunAddOn(game);
    const AddOnResult dense = reference::RunAddOnDense(game);
    const std::string context = "trial " + std::to_string(trial);
    EXPECT_EQ(engine.serviced, dense.serviced) << context;
    EXPECT_EQ(engine.cumulative, dense.cumulative) << context;
    EXPECT_EQ(engine.payments, dense.payments) << context;
    EXPECT_EQ(engine.cost_share, dense.cost_share) << context;
  }
}

// --- SubstOff / SubstOn ----------------------------------------------------

TEST(MechanismEngineTest, SubstOffMatchesDenseOnRandomMatrices) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 300));
    const int n = 1 + static_cast<int>(rng.UniformInt(0, 10));
    std::vector<double> costs;
    for (int j = 0; j < n; ++j) costs.push_back(rng.Uniform(0.05, 0.3) * m);
    std::vector<std::vector<double>> bids(
        static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(n)));
    for (auto& row : bids) {
      for (double& b : row) {
        const double roll = rng.NextDouble();
        // Mix in pins (as SubstOn produces) and zeros.
        b = roll < 0.55 ? 0.0
            : roll < 0.57 ? kInfiniteBid
                          : rng.Uniform(0.0, 1.0);
      }
    }

    const SubstOffResult engine = RunSubstOffMatrix(costs, bids);
    const SubstOffResult dense =
        reference::RunSubstOffMatrixDense(costs, bids);
    const std::string context = "trial " + std::to_string(trial);
    EXPECT_EQ(engine.implemented, dense.implemented) << context;
    EXPECT_EQ(engine.grant, dense.grant) << context;
    EXPECT_EQ(engine.payments, dense.payments) << context;
    EXPECT_EQ(engine.cost_share, dense.cost_share) << context;
  }
}

TEST(MechanismEngineTest, SubstOffMatchesDenseOnGames) {
  Rng rng(18);
  for (int trial = 0; trial < 30; ++trial) {
    SubstOfflineGame game;
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 400));
    const int n = 2 + static_cast<int>(rng.UniformInt(0, 10));
    for (int j = 0; j < n; ++j) {
      game.costs.push_back(rng.Uniform(0.02, 0.2) * m);
    }
    for (int i = 0; i < m; ++i) {
      SubstOfflineUser user;
      user.value = rng.Uniform(0.01, 1.0);
      const int subs = 1 + static_cast<int>(rng.UniformInt(0, n - 1));
      for (int s : rng.SampleWithoutReplacement(n, subs)) {
        user.substitutes.push_back(s);
      }
      game.users.push_back(std::move(user));
    }
    ASSERT_TRUE(game.Validate().ok());

    const SubstOffResult engine = RunSubstOff(game);
    const SubstOffResult dense = reference::RunSubstOffDense(game);
    const std::string context = "trial " + std::to_string(trial);
    EXPECT_EQ(engine.implemented, dense.implemented) << context;
    EXPECT_EQ(engine.grant, dense.grant) << context;
    EXPECT_EQ(engine.payments, dense.payments) << context;
    EXPECT_EQ(engine.cost_share, dense.cost_share) << context;

    // Budget balance per phase: every granted user pays the phase share.
    EXPECT_NEAR(engine.TotalPayment(), engine.ImplementedCost(game.costs),
                1e-6)
        << context;
  }
}

TEST(MechanismEngineTest, SubstOnMatchesDenseOnRandomGames) {
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    SubstScenario scenario;
    scenario.num_users = 1 + static_cast<int>(rng.UniformInt(0, 499));
    scenario.num_slots = 1 + static_cast<int>(rng.UniformInt(0, 49));
    scenario.num_opts = 2 + static_cast<int>(rng.UniformInt(0, 10));
    scenario.substitutes_per_user =
        1 + static_cast<int>(rng.UniformInt(0, scenario.num_opts - 1));
    scenario.duration =
        1 + static_cast<int>(rng.UniformInt(0, scenario.num_slots - 1));
    const double mean_cost =
        rng.Uniform(0.01, 0.2) * scenario.num_users + 0.001;
    const SubstOnlineGame game = MakeSubstGame(scenario, mean_cost, rng);

    const SubstOnResult engine = RunSubstOn(game);
    const SubstOnResult dense = reference::RunSubstOnDense(game);
    const std::string context = "trial " + std::to_string(trial);
    EXPECT_EQ(engine.grant, dense.grant) << context;
    EXPECT_EQ(engine.grant_slot, dense.grant_slot) << context;
    EXPECT_EQ(engine.payments, dense.payments) << context;
    EXPECT_EQ(engine.implemented_at, dense.implemented_at) << context;
    EXPECT_EQ(engine.serviced, dense.serviced) << context;

    // Cost recovery across the horizon.
    EXPECT_TRUE(MoneyGe(engine.TotalPayment(),
                        engine.ImplementedCost(game.costs)))
        << context;
  }
}

// --- Registry / MechanismResult -------------------------------------------

TEST(MechanismRegistryTest, CoreAndBaselineNamesResolve) {
  RegisterBaselineMechanisms();
  MechanismRegistry& registry = MechanismRegistry::Global();
  for (const char* name : {"addoff", "shapley", "addon", "substoff",
                           "subston", "naive", "naive_online", "vcg",
                           "regret"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    auto mech = registry.Create(name);
    ASSERT_TRUE(mech.ok()) << name;
  }
  EXPECT_FALSE(registry.Create("no_such_mechanism").ok());
}

TEST(MechanismRegistryTest, SupportsIsEnforced) {
  RegisterBaselineMechanisms();
  AdditiveOfflineGame offline;
  offline.costs = {10.0};
  offline.bids = {{12.0}};
  // An online-only mechanism must reject an offline game.
  const auto result = RunMechanism("addon", GameView(offline));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MechanismRegistryTest, AddOnResultAgreesWithLegacyAccounting) {
  Rng rng(20);
  for (int trial = 0; trial < 10; ++trial) {
    const AdditiveScenario scenario = RandomAdditiveScenario(rng, 300);
    const double cost = rng.Uniform(0.01, 0.3) * scenario.num_users + 0.001;
    const AdditiveOnlineGame game = MakeAdditiveGame(scenario, cost, rng);

    const auto result = RunMechanism("addon", GameView(game));
    ASSERT_TRUE(result.ok());
    const AddOnResult legacy = RunAddOn(game);

    EXPECT_EQ(result->payments, legacy.payments);
    EXPECT_EQ(result->implemented, legacy.implemented);
    const Accounting uniform = AccountResult(GameView(game), *result);
    const Accounting direct = AccountAddOn(game, legacy);
    EXPECT_EQ(uniform.user_value, direct.user_value);
    EXPECT_EQ(uniform.user_payment, direct.user_payment);
    EXPECT_EQ(uniform.total_cost, direct.total_cost);
  }
}

TEST(MechanismRegistryTest, SubstOnResultAgreesWithLegacyAccounting) {
  Rng rng(21);
  SubstScenario scenario;
  scenario.num_users = 60;
  scenario.num_slots = 20;
  scenario.num_opts = 6;
  scenario.substitutes_per_user = 2;
  for (int trial = 0; trial < 10; ++trial) {
    const SubstOnlineGame game = MakeSubstGame(scenario, 2.0, rng);
    const auto result = RunMechanism("subston", GameView(game));
    ASSERT_TRUE(result.ok());
    const SubstOnResult legacy = RunSubstOn(game);

    EXPECT_EQ(result->payments, legacy.payments);
    EXPECT_EQ(result->grant, legacy.grant);
    EXPECT_EQ(result->grant_slot, legacy.grant_slot);
    const Accounting uniform = AccountResult(GameView(game), *result);
    const Accounting direct = AccountSubstOn(game, legacy);
    EXPECT_EQ(uniform.user_value, direct.user_value);
    EXPECT_EQ(uniform.user_payment, direct.user_payment);
    EXPECT_EQ(uniform.total_cost, direct.total_cost);
  }
}

TEST(MechanismRegistryTest, AddOffResultAgreesWithLegacyAccounting) {
  AdditiveOfflineGame game;
  game.costs = {90.0, 50.0};
  game.bids = {{40.0, 0.0}, {30.0, 60.0}, {35.0, 10.0}};
  const auto result = RunMechanism("addoff", GameView(game));
  ASSERT_TRUE(result.ok());
  const Accounting uniform = AccountResult(GameView(game), *result);
  const Accounting direct = AccountAddOff(game, RunAddOff(game));
  EXPECT_EQ(uniform.user_value, direct.user_value);
  EXPECT_EQ(uniform.user_payment, direct.user_payment);
  EXPECT_EQ(uniform.total_cost, direct.total_cost);
}

TEST(MechanismRegistryTest, BaselineResultsFlowThroughUniformAccounting) {
  RegisterBaselineMechanisms();
  Rng rng(22);
  AdditiveScenario scenario;
  scenario.num_users = 40;
  scenario.num_slots = 12;
  scenario.duration = 3;
  const AdditiveOnlineGame game = MakeAdditiveGame(scenario, 2.0, rng);

  // Regret through the registry must reproduce its own ledger.
  const auto regret = RunMechanism("regret", GameView(game));
  ASSERT_TRUE(regret.ok());
  const Accounting acc = AccountResult(GameView(game), *regret);
  const RegretAdditiveResult direct = RunRegretAdditive(game);
  EXPECT_NEAR(acc.TotalValue(), direct.total_value, 1e-9);
  EXPECT_NEAR(acc.TotalPayment(), direct.total_payment, 1e-9);
  EXPECT_NEAR(acc.total_cost, direct.total_cost, 1e-9);

  // NaiveOnline through the registry keeps its payments.
  const auto naive = RunMechanism("naive_online", GameView(game));
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->payments, RunNaiveOnline(game).payments);
}

/// Minimal mechanism for registry-churn tests.
class TransientMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "transient"; }
  bool Supports(GameKind) const override { return false; }
  Result<MechanismResult> Run(const GameView& game) const override {
    return UnsupportedKind("transient", game.kind());
  }
};

TEST(MechanismRegistryTest, ConcurrentCreateAndListingIsSafe) {
  // Regression for the multi-tenant server: shards resolve mechanisms by
  // name concurrently while late registrations may still be arriving. Every
  // Create must return a working instance (or a clean NotFound), and no
  // call may crash or corrupt the entry list. Run under TSan in CI.
  RegisterBaselineMechanisms();
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::atomic<int> registered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures, &registered] {
      for (int i = 0; i < kIters; ++i) {
        Result<std::unique_ptr<Mechanism>> mech =
            MechanismRegistry::Global().Create(i % 2 == 0 ? "addon"
                                                          : "naive_online");
        if (!mech.ok() || *mech == nullptr) failures.fetch_add(1);
        if (MechanismRegistry::Global().Names().empty()) failures.fetch_add(1);
        if (!MechanismRegistry::Global().Contains("addoff")) {
          failures.fetch_add(1);
        }
        // Unknown names stay clean NotFounds mid-churn.
        if (MechanismRegistry::Global().Create("no_such_mech").ok()) {
          failures.fetch_add(1);
        }
        // Concurrent registration of thread-unique names must never
        // collide with lookups (registration-before-serving is the
        // documented contract, but racing must stay memory-safe).
        const std::string name =
            "transient_" + std::to_string(t) + "_" + std::to_string(i);
        Status st = MechanismRegistry::Global().Register(
            name, [] { return std::make_unique<TransientMechanism>(); });
        if (st.ok()) registered.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registered.load(), kThreads * kIters);
  // Every transient registration is visible afterwards.
  EXPECT_TRUE(MechanismRegistry::Global().Contains("transient_0_0"));
  EXPECT_TRUE(
      MechanismRegistry::Global().Create("transient_7_199").ok());
}

TEST(MechanismResultTest, MembershipUsesSortedSpans) {
  AdditiveOfflineGame game;
  game.costs = {90.0};
  game.bids = {{40.0}, {10.0}, {35.0}, {45.0}};
  const auto result = RunMechanism("addoff", GameView(game));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Serviced(0, 0));
  EXPECT_FALSE(result->Serviced(1, 0));
  EXPECT_TRUE(result->Serviced(3, 0));
  EXPECT_FALSE(result->Serviced(0, 5));  // Out-of-range opt.
  EXPECT_EQ(result->ImplementedOpts(), std::vector<OptId>{0});
  EXPECT_NEAR(result->TotalPayment(), 90.0, 1e-9);
}

}  // namespace
}  // namespace optshare
