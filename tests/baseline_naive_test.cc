// Tests for the naive pay-your-bid mechanism (paper Example 1): it recovers
// costs but is not truthful.
#include "baseline/naive.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

TEST(NaiveTest, ImplementsWhenBidsCoverCost) {
  NaiveResult r = RunNaive(100.0, {60.0, 50.0});
  EXPECT_TRUE(r.implemented);
  EXPECT_DOUBLE_EQ(r.payments[0], 60.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 50.0);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 110.0);
}

TEST(NaiveTest, NotImplementedWhenBidsFallShort) {
  NaiveResult r = RunNaive(100.0, {60.0, 30.0});
  EXPECT_FALSE(r.implemented);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
}

TEST(NaiveTest, ExactCoverageImplements) {
  NaiveResult r = RunNaive(100.0, {50.0, 50.0});
  EXPECT_TRUE(r.implemented);
}

TEST(NaiveTest, CostRecoveringByConstruction) {
  NaiveResult r = RunNaive(80.0, {50.0, 40.0, 30.0});
  ASSERT_TRUE(r.implemented);
  EXPECT_GE(r.TotalPayment(), 80.0);
}

TEST(NaiveTest, Example1UnderbiddingPays) {
  // Example 1: a user with value 60 who shades her bid to 20 still gets the
  // optimization (others cover it) and pays 40 less — the mechanism is
  // gameable, which motivates the Shapley approach.
  const double value = 60.0;
  NaiveResult truthful = RunNaive(100.0, {value, 50.0});
  ASSERT_TRUE(truthful.implemented);
  const double truthful_utility = value - truthful.payments[0];

  NaiveResult shaded = RunNaive(100.0, {20.0, 80.0});
  ASSERT_TRUE(shaded.implemented);
  const double shaded_utility = value - shaded.payments[0];
  EXPECT_GT(shaded_utility, truthful_utility);
}

TEST(NaiveTest, EmptyBids) {
  NaiveResult r = RunNaive(10.0, {});
  EXPECT_FALSE(r.implemented);
}

}  // namespace
}  // namespace optshare
