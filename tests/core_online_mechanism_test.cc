// Streaming/batch parity and event semantics of the OnlineMechanism
// surface: feeding a mechanism the event stream of a batch game must
// reproduce the batch results bit-identically (native engines and the
// buffering adapter alike), and the event vocabulary (arrive / declare /
// depart / opt add / opt retire) must be validated and priced per the
// paper's online rules.
#include "core/online_mechanism.h"

#include <gtest/gtest.h>

#include "baseline/baseline_mechanisms.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/serialization.h"
#include "workload/scenario.h"

namespace optshare {
namespace {

void ExpectSameResult(const MechanismResult& a, const MechanismResult& b) {
  EXPECT_EQ(a.num_users, b.num_users);
  EXPECT_EQ(a.num_opts, b.num_opts);
  EXPECT_EQ(a.num_slots, b.num_slots);
  EXPECT_EQ(a.implemented, b.implemented);
  EXPECT_EQ(a.implemented_at, b.implemented_at);
  ASSERT_EQ(a.cost_share.size(), b.cost_share.size());
  for (size_t j = 0; j < a.cost_share.size(); ++j) {
    EXPECT_EQ(a.cost_share[j], b.cost_share[j]) << "cost_share opt " << j;
  }
  ASSERT_EQ(a.payments.size(), b.payments.size());
  for (size_t i = 0; i < a.payments.size(); ++i) {
    EXPECT_EQ(a.payments[i], b.payments[i]) << "payment of user " << i;
  }
  ASSERT_EQ(a.serviced.size(), b.serviced.size());
  for (size_t j = 0; j < a.serviced.size(); ++j) {
    EXPECT_TRUE(a.serviced[j] == b.serviced[j]) << "serviced set opt " << j;
  }
  ASSERT_EQ(a.active.size(), b.active.size());
  for (size_t j = 0; j < a.active.size(); ++j) {
    ASSERT_EQ(a.active[j].size(), b.active[j].size());
    for (size_t t = 0; t < a.active[j].size(); ++t) {
      EXPECT_TRUE(a.active[j][t] == b.active[j][t])
          << "active set opt " << j << " slot " << t + 1;
    }
  }
  EXPECT_EQ(a.grant, b.grant);
  EXPECT_EQ(a.grant_slot, b.grant_slot);
}

TEST(OnlineMechanismParity, AdditiveStreamingMatchesBatchBitIdentical) {
  for (int n : {7, 60, 400, 1000}) {
    AdditiveScenario scenario;
    scenario.num_users = n;
    scenario.num_slots = 12;
    scenario.duration = 4;
    for (uint64_t seed : {1u, 2u, 3u}) {
      for (double cost : {0.4, 3.0, 0.08 * n}) {
        Rng rng(seed);
        const AdditiveOnlineGame game = MakeAdditiveGame(scenario, cost, rng);
        Result<MechanismResult> batch = RunMechanism("addon", GameView(game));
        ASSERT_TRUE(batch.ok()) << batch.status().ToString();
        Result<MechanismResult> stream =
            ReplayLog(EventLogFromGame(game), "addon");
        ASSERT_TRUE(stream.ok()) << stream.status().ToString();
        ExpectSameResult(*batch, *stream);
      }
    }
  }
}

TEST(OnlineMechanismParity, MultiAdditiveStreamingMatchesBatchBitIdentical) {
  MultiAdditiveOnlineGame game;
  game.num_slots = 6;
  game.costs = {90.0, 40.0, 500.0};
  const auto user = [&](TimeSlot s, TimeSlot e, double v0, double v1,
                        double v2) {
    game.bids.push_back({SlotValues::Constant(s, e, v0),
                         SlotValues::Constant(s, e, v1),
                         SlotValues::Constant(s, e, v2)});
  };
  user(1, 6, 10.0, 0.0, 1.0);
  user(2, 4, 25.0, 12.0, 0.0);
  user(3, 3, 0.0, 45.0, 2.0);
  user(1, 2, 40.0, 8.0, 0.0);
  user(5, 6, 30.0, 0.0, 0.5);
  ASSERT_TRUE(game.Validate().ok());

  Result<MechanismResult> batch = RunMechanism("addon", GameView(game));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  Result<MechanismResult> stream = ReplayLog(EventLogFromGame(game), "addon");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  ExpectSameResult(*batch, *stream);
}

TEST(OnlineMechanismParity, SubstStreamingMatchesBatchBitIdentical) {
  for (int n : {6, 50, 300, 1000}) {
    SubstScenario scenario;
    scenario.num_users = n;
    scenario.num_slots = 12;
    scenario.num_opts = 8;
    scenario.substitutes_per_user = 3;
    scenario.duration = 3;
    for (uint64_t seed : {4u, 5u}) {
      Rng rng(seed);
      const SubstOnlineGame game =
          MakeSubstGame(scenario, 0.05 * n + 0.2, rng);
      Result<MechanismResult> batch = RunMechanism("subston", GameView(game));
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      Result<MechanismResult> stream =
          ReplayLog(EventLogFromGame(game), "subston");
      ASSERT_TRUE(stream.ok()) << stream.status().ToString();
      ExpectSameResult(*batch, *stream);
    }
  }
}

TEST(OnlineMechanismParity, BufferedAdapterMatchesBatch) {
  RegisterBaselineMechanisms();
  AdditiveScenario scenario;
  scenario.num_users = 40;
  scenario.num_slots = 10;
  scenario.duration = 5;
  Rng rng(11);
  const AdditiveOnlineGame game = MakeAdditiveGame(scenario, 2.0, rng);
  const SlotEventLog log = EventLogFromGame(game);

  for (const char* name : {"naive_online", "regret"}) {
    Result<std::unique_ptr<OnlineMechanism>> mech =
        ResolveOnlineMechanism(name, GameKind::kAdditiveOnline);
    ASSERT_TRUE(mech.ok()) << mech.status().ToString();
    EXPECT_FALSE((*mech)->native());
    Result<MechanismResult> batch = RunMechanism(name, GameView(game));
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    Result<MechanismResult> stream = ReplayLog(log, **mech);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    ExpectSameResult(*batch, *stream);
  }
}

TEST(OnlineMechanismParity, OfflineMechanismCollapsesStreamsAtFinalize) {
  RegisterBaselineMechanisms();
  AdditiveScenario scenario;
  scenario.num_users = 25;
  scenario.num_slots = 8;
  scenario.duration = 4;
  Rng rng(12);
  const AdditiveOnlineGame game = MakeAdditiveGame(scenario, 1.5, rng);

  // The streamed period collapsed to per-user totals...
  Result<MechanismResult> stream =
      ReplayLog(EventLogFromGame(game), "shapley");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream->num_slots, 0);  // Offline result: no slot structure.

  // ...must equal the offline mechanism run on the collapsed batch game.
  AdditiveOfflineGame off;
  off.costs = {game.cost};
  for (const auto& u : game.users) off.bids.push_back({u.Total()});
  Result<MechanismResult> batch = RunMechanism("shapley", GameView(off));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ExpectSameResult(*batch, *stream);
}

TEST(OnlineMechanismEvents, EarlyDepartureChargesAtDepartureSlot) {
  SlotEventLog log;
  log.kind = GameKind::kAdditiveOnline;
  log.num_slots = 4;
  log.costs = {100.0};
  log.events.resize(4);
  log.events[0].push_back(
      SlotEvent::DeclareValues(0, 0, SlotValues::Constant(1, 4, 30.0)));
  log.events[1].push_back(
      SlotEvent::DeclareValues(1, 0, SlotValues::Constant(2, 4, 40.0)));
  // User 1 departs at slot 3: she is present (and charged) there, gone at 4.
  log.events[2].push_back(SlotEvent::UserDepart(1));

  Result<MechanismResult> r = ReplayLog(log, "addon");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->implemented);
  EXPECT_EQ(r->implemented_at[0], 1);
  ASSERT_EQ(r->payments.size(), 2u);
  // Slot 3 share: C / |CS| = 100 / 2.
  EXPECT_DOUBLE_EQ(r->payments[1], 50.0);
  // User 0 pays the final-slot share at her declared departure (slot 4).
  EXPECT_DOUBLE_EQ(r->payments[0], 50.0);
  // User 1 is not active at slot 4.
  EXPECT_FALSE(r->active[0][3].Contains(1));
  EXPECT_TRUE(r->active[0][3].Contains(0));
  EXPECT_TRUE(r->active[0][2].Contains(1));
}

TEST(OnlineMechanismEvents, OptAddPricesFromItsSlotAndRetireFreezes) {
  // A multi-opt stream: opt 0 exists from slot 1; opt 1 appears at slot 2
  // and is retired before slot 4 is priced.
  SlotEventLog log;
  log.kind = GameKind::kMultiAdditiveOnline;
  log.num_slots = 4;
  log.costs = {80.0};
  log.events.resize(4);
  log.events[0].push_back(SlotEvent::UserArrive(0, 1, 4));
  log.events[0].push_back(
      SlotEvent::DeclareValues(0, 0, SlotValues::Constant(1, 4, 25.0)));
  log.events[1].push_back(SlotEvent::OptAdd(1, 60.0));
  log.events[1].push_back(
      SlotEvent::DeclareValues(0, 1, SlotValues::Constant(2, 4, 30.0)));
  log.events[3].push_back(SlotEvent::OptRetire(1));

  Result<std::unique_ptr<OnlineMechanism>> mech =
      ResolveOnlineMechanism("addon", GameKind::kMultiAdditiveOnline);
  ASSERT_TRUE(mech.ok());
  Result<MechanismResult> r = ReplayLog(log, **mech);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ASSERT_EQ(r->num_opts, 2);
  // Opt 0: residual 100 >= 80 at slot 1.
  EXPECT_EQ(r->implemented_at[0], 1);
  // Opt 1: first priced at slot 2 (residual 90 >= 60).
  EXPECT_EQ(r->implemented_at[1], 2);
  // Retired before slot 4: the pending member pays the slot-3 share (60,
  // sole member), and is not active at slot 4.
  EXPECT_DOUBLE_EQ(r->payments[0], 80.0 + 60.0);
  EXPECT_TRUE(r->active[1][2].Contains(0));
  EXPECT_TRUE(r->active[1][3].empty());
  EXPECT_TRUE(r->active[0][3].Contains(0));
  // The retired structure reports its last *priced* share, not infinity.
  EXPECT_DOUBLE_EQ(r->cost_share[1], 60.0);
  EXPECT_DOUBLE_EQ(r->cost_share[0], 80.0);
}

TEST(OnlineMechanismEvents, RejectsNegativeUserIdsOnEveryPath) {
  RegisterBaselineMechanisms();
  SlotEventLog log;
  log.kind = GameKind::kAdditiveOnline;
  log.num_slots = 2;
  log.costs = {10.0};
  log.events.resize(2);
  log.events[0].push_back(
      SlotEvent::DeclareValues(-1, 0, SlotValues::Constant(1, 2, 8.0)));

  // Native engine, buffered adapter, and materializer all reject with a
  // Status (regression: the buffered path used to corrupt the heap).
  EXPECT_FALSE(ReplayLog(log, "addon").ok());
  EXPECT_FALSE(ReplayLog(log, "regret").ok());
  EXPECT_FALSE(MaterializeAdditiveLog(log).ok());

  log.events[0][0] = SlotEvent::UserArrive(-3, 1, 2);
  EXPECT_FALSE(ReplayLog(log, "addon").ok());
  EXPECT_FALSE(ReplayLog(log, "regret").ok());
  EXPECT_FALSE(MaterializeAdditiveLog(log).ok());
}

TEST(OnlineMechanismEvents, DeclareAfterDepartRejectedByEveryPath) {
  RegisterBaselineMechanisms();
  SlotEventLog log;
  log.kind = GameKind::kAdditiveOnline;
  log.num_slots = 3;
  log.costs = {10.0};
  log.events.resize(3);
  log.events[0].push_back(SlotEvent::UserArrive(0, 1, 3));
  log.events[1].push_back(SlotEvent::UserDepart(0));
  log.events[2].push_back(
      SlotEvent::DeclareValues(0, 0, SlotValues::Single(3, 9.0)));

  // The same log is invalid regardless of the mechanism's streaming form.
  EXPECT_FALSE(ReplayLog(log, "addon").ok());
  EXPECT_FALSE(ReplayLog(log, "regret").ok());
  EXPECT_FALSE(ReplayLog(log, "shapley").ok());
  EXPECT_FALSE(MaterializeAdditiveLog(log).ok());
}

TEST(OnlineMechanismEvents, ValidatesStreamDiscipline) {
  OnlineGameMeta meta;
  meta.kind = GameKind::kAdditiveOnline;
  meta.num_slots = 3;
  meta.costs = {50.0};

  Result<std::unique_ptr<OnlineMechanism>> mech_r =
      ResolveOnlineMechanism("addon", GameKind::kAdditiveOnline);
  ASSERT_TRUE(mech_r.ok());
  OnlineMechanism& mech = **mech_r;

  // OnSlot before Begin.
  EXPECT_FALSE(mech.OnSlot(1, {}).ok());
  ASSERT_TRUE(mech.Begin(meta).ok());
  // Slots must be consecutive from 1.
  EXPECT_FALSE(mech.OnSlot(2, {}).ok());
  ASSERT_TRUE(mech.OnSlot(1, {SlotEvent::DeclareValues(
                                 0, 0, SlotValues::Constant(1, 3, 20.0))})
                  .ok());
  // Duplicate declaration.
  EXPECT_FALSE(mech.OnSlot(2, {SlotEvent::DeclareValues(
                                  0, 0, SlotValues::Constant(2, 3, 5.0))})
                   .ok());

  // Fresh stream: Begin resets.
  ASSERT_TRUE(mech.Begin(meta).ok());
  // Unknown optimization.
  EXPECT_FALSE(mech.OnSlot(1, {SlotEvent::DeclareValues(
                                  0, 7, SlotValues::Constant(1, 3, 20.0))})
                   .ok());
  ASSERT_TRUE(mech.Begin(meta).ok());
  // Unknown user departing.
  EXPECT_FALSE(mech.OnSlot(1, {SlotEvent::UserDepart(4)}).ok());
  ASSERT_TRUE(mech.Begin(meta).ok());
  // Interval past the horizon.
  EXPECT_FALSE(mech.OnSlot(1, {SlotEvent::UserArrive(0, 1, 9)}).ok());
  ASSERT_TRUE(mech.Begin(meta).ok());
  // Finalize before the period completes.
  ASSERT_TRUE(mech.OnSlot(1, {}).ok());
  EXPECT_FALSE(mech.Finalize().ok());
}

TEST(OnlineMechanismEvents, BufferedAdapterEnforcesSingleOptStreams) {
  RegisterBaselineMechanisms();
  Result<std::unique_ptr<OnlineMechanism>> mech =
      ResolveOnlineMechanism("regret", GameKind::kAdditiveOnline);
  ASSERT_TRUE(mech.ok());

  // A single-opt stream must carry exactly one cost...
  OnlineGameMeta meta;
  meta.kind = GameKind::kAdditiveOnline;
  meta.num_slots = 3;
  meta.costs = {50.0, 60.0};
  EXPECT_FALSE((*mech)->Begin(meta).ok());

  // ...and cannot grow more structures mid-period.
  meta.costs = {50.0};
  ASSERT_TRUE((*mech)->Begin(meta).ok());
  EXPECT_FALSE((*mech)->OnSlot(1, {SlotEvent::OptAdd(1, 60.0)}).ok());
}

TEST(OnlineMechanismEvents, EventLogJsonRoundtrip) {
  AdditiveScenario scenario;
  scenario.num_users = 15;
  scenario.num_slots = 6;
  scenario.duration = 3;
  Rng rng(21);
  const AdditiveOnlineGame game = MakeAdditiveGame(scenario, 1.0, rng);
  SlotEventLog log = EventLogFromGame(game);
  log.events[3].push_back(SlotEvent::UserDepart(0));

  Result<JsonValue> parsed = JsonValue::Parse(ToJson(log).Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Result<SlotEventLog> round = EventLogFromJson(*parsed);
  ASSERT_TRUE(round.ok()) << round.status().ToString();

  Result<MechanismResult> a = ReplayLog(log, "addon");
  Result<MechanismResult> b = ReplayLog(*round, "addon");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameResult(*a, *b);
}

TEST(OnlineMechanismEvents, SubstEventLogJsonRoundtrip) {
  SubstScenario scenario;
  scenario.num_users = 10;
  scenario.num_slots = 5;
  scenario.num_opts = 4;
  scenario.substitutes_per_user = 2;
  Rng rng(22);
  const SubstOnlineGame game = MakeSubstGame(scenario, 0.5, rng);
  const SlotEventLog log = EventLogFromGame(game);

  Result<JsonValue> parsed = JsonValue::Parse(ToJson(log).Dump(2));
  ASSERT_TRUE(parsed.ok());
  Result<SlotEventLog> round = EventLogFromJson(*parsed);
  ASSERT_TRUE(round.ok()) << round.status().ToString();

  Result<MechanismResult> a = ReplayLog(log, "subston");
  Result<MechanismResult> b = ReplayLog(*round, "subston");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameResult(*a, *b);
}

TEST(MechanismRegistryErrors, UnknownNameListsRegisteredMechanisms) {
  RegisterBaselineMechanisms();
  Result<std::unique_ptr<Mechanism>> mech =
      MechanismRegistry::Global().Create("no_such_mechanism");
  ASSERT_FALSE(mech.ok());
  EXPECT_EQ(mech.status().code(), StatusCode::kNotFound);
  const std::string& msg = mech.status().message();
  EXPECT_NE(msg.find("registered mechanisms:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("addon"), std::string::npos) << msg;
  EXPECT_NE(msg.find("subston"), std::string::npos) << msg;
  EXPECT_NE(msg.find("regret"), std::string::npos) << msg;

  // The streaming resolver surfaces the same self-fixing message.
  Result<std::unique_ptr<OnlineMechanism>> online =
      ResolveOnlineMechanism("no_such_mechanism", GameKind::kAdditiveOnline);
  ASSERT_FALSE(online.ok());
  EXPECT_NE(online.status().message().find("registered mechanisms:"),
            std::string::npos);
}

TEST(OnlineMechanismResolution, NativeVsBufferedCapabilities) {
  RegisterBaselineMechanisms();
  EXPECT_TRUE(NativelyOnline("addon", GameKind::kAdditiveOnline));
  EXPECT_TRUE(NativelyOnline("addon", GameKind::kMultiAdditiveOnline));
  EXPECT_TRUE(NativelyOnline("subston", GameKind::kSubstOnline));
  EXPECT_FALSE(NativelyOnline("naive_online", GameKind::kAdditiveOnline));
  EXPECT_FALSE(NativelyOnline("addon", GameKind::kSubstOnline));

  Result<std::unique_ptr<OnlineMechanism>> native =
      ResolveOnlineMechanism("addon", GameKind::kAdditiveOnline);
  ASSERT_TRUE(native.ok());
  EXPECT_TRUE((*native)->native());

  Result<std::unique_ptr<OnlineMechanism>> buffered =
      ResolveOnlineMechanism("regret", GameKind::kAdditiveOnline);
  ASSERT_TRUE(buffered.ok());
  EXPECT_FALSE((*buffered)->native());

  // Offline-only mechanisms stream through the collapsing adapter.
  Result<std::unique_ptr<OnlineMechanism>> collapsed =
      ResolveOnlineMechanism("vcg", GameKind::kAdditiveOnline);
  ASSERT_TRUE(collapsed.ok()) << collapsed.status().ToString();
  EXPECT_FALSE((*collapsed)->native());

  // Offline game classes have no streaming form.
  EXPECT_FALSE(
      ResolveOnlineMechanism("addon", GameKind::kAdditiveOffline).ok());
}

}  // namespace
}  // namespace optshare
