// Tests for §5.1 upward bid revisions.
#include "core/revisions.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

RevisionSchedule SingleDeclaration(TimeSlot submitted, SlotValues stream) {
  RevisionSchedule s;
  s.revisions.push_back({submitted, std::move(stream)});
  return s;
}

TEST(RevisionScheduleTest, EffectiveAtPicksLatestSubmission) {
  RevisionSchedule s;
  s.revisions.push_back({1, *SlotValues::Make(1, 3, {10, 10, 10})});
  s.revisions.push_back({2, *SlotValues::Make(1, 3, {10, 20, 10})});
  EXPECT_EQ(s.EffectiveAt(0), nullptr);
  EXPECT_DOUBLE_EQ(s.EffectiveAt(1)->At(2), 10.0);
  EXPECT_DOUBLE_EQ(s.EffectiveAt(2)->At(2), 20.0);
  EXPECT_DOUBLE_EQ(s.EffectiveAt(3)->At(2), 20.0);
  EXPECT_EQ(s.FinalEnd(), 3);
}

TEST(RevisionScheduleTest, PaperSection51Example) {
  // "at time t = 1, let user 1 bid (1, 3, [10, 10, 10]); at time t = 2 she
  // may revise her bids as b(2) = 20, b(3) = 10."
  RevisionSchedule s;
  s.revisions.push_back({1, *SlotValues::Make(1, 3, {10, 10, 10})});
  s.revisions.push_back({2, *SlotValues::Make(1, 3, {10, 20, 10})});
  EXPECT_TRUE(s.Validate(3).ok());
}

TEST(RevisionScheduleTest, ValidationRejectsRetroactiveInitialBid) {
  // First declaration submitted at t=2 claiming value from t=1.
  RevisionSchedule s =
      SingleDeclaration(2, *SlotValues::Make(1, 3, {5, 5, 5}));
  EXPECT_FALSE(s.Validate(3).ok());
}

TEST(RevisionScheduleTest, ValidationRejectsPastEdits) {
  RevisionSchedule s;
  s.revisions.push_back({1, *SlotValues::Make(1, 3, {10, 10, 10})});
  // Submitted at t=3 but changes the value at t=2.
  s.revisions.push_back({3, *SlotValues::Make(1, 3, {10, 99, 10})});
  EXPECT_FALSE(s.Validate(3).ok());
}

TEST(RevisionScheduleTest, ValidationRejectsDownwardRevision) {
  RevisionSchedule s;
  s.revisions.push_back({1, *SlotValues::Make(1, 3, {10, 10, 10})});
  s.revisions.push_back({2, *SlotValues::Make(1, 3, {10, 5, 10})});
  EXPECT_FALSE(s.Validate(3).ok());
}

TEST(RevisionScheduleTest, ValidationRejectsShrinkingInterval) {
  RevisionSchedule s;
  s.revisions.push_back({1, *SlotValues::Make(1, 3, {10, 10, 10})});
  s.revisions.push_back({2, *SlotValues::Make(1, 2, {10, 10})});
  EXPECT_FALSE(s.Validate(3).ok());
}

TEST(RevisionScheduleTest, ValidationRejectsChangedArrival) {
  RevisionSchedule s;
  s.revisions.push_back({1, *SlotValues::Make(1, 3, {10, 10, 10})});
  s.revisions.push_back({2, *SlotValues::Make(2, 3, {20, 10})});
  EXPECT_FALSE(s.Validate(3).ok());
}

TEST(RevisionScheduleTest, ValidationRejectsNonIncreasingSubmissions) {
  RevisionSchedule s;
  s.revisions.push_back({2, *SlotValues::Make(2, 3, {10, 10})});
  s.revisions.push_back({2, *SlotValues::Make(2, 3, {20, 10})});
  EXPECT_FALSE(s.Validate(3).ok());
}

TEST(RunAddOnWithRevisionsTest, MatchesPlainAddOnWithoutRevisions) {
  RevisableOnlineGame g;
  g.num_slots = 3;
  g.cost = 100.0;
  g.users = {
      SingleDeclaration(1, SlotValues::Single(1, 101.0)),
      SingleDeclaration(1, *SlotValues::Make(1, 3, {16, 16, 16})),
      SingleDeclaration(2, SlotValues::Single(2, 26.0)),
      SingleDeclaration(2, SlotValues::Single(2, 26.0)),
  };
  ASSERT_TRUE(g.Validate().ok());
  const AddOnResult revised = RunAddOnWithRevisions(g);

  AdditiveOnlineGame plain;
  plain.num_slots = 3;
  plain.cost = 100.0;
  plain.users = {SlotValues::Single(1, 101.0),
                 *SlotValues::Make(1, 3, {16, 16, 16}),
                 SlotValues::Single(2, 26.0), SlotValues::Single(2, 26.0)};
  const AddOnResult direct = RunAddOn(plain);

  EXPECT_EQ(revised.payments, direct.payments);
  EXPECT_EQ(revised.cumulative, direct.cumulative);
  EXPECT_EQ(revised.serviced, direct.serviced);
}

TEST(RunAddOnWithRevisionsTest, UpwardRevisionCanFundTheOptimization) {
  // Initially nobody can cover 60; at t=2 user 0 raises her remaining
  // value and the optimization is built then.
  RevisableOnlineGame g;
  g.num_slots = 3;
  g.cost = 60.0;
  RevisionSchedule u0;
  u0.revisions.push_back({1, *SlotValues::Make(1, 3, {10, 10, 10})});
  u0.revisions.push_back({2, *SlotValues::Make(1, 3, {10, 40, 40})});
  g.users = {u0};
  ASSERT_TRUE(g.Validate().ok());

  const AddOnResult r = RunAddOnWithRevisions(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 2);  // Residual 80 >= 60 only after revising.
  EXPECT_DOUBLE_EQ(r.payments[0], 60.0);
}

TEST(RunAddOnWithRevisionsTest, ExtendedIntervalMovesPaymentSlot) {
  // User 0 initially leaves at t=1; a revision at t=2 keeps her through
  // t=3, so she pays the (lower) share current at her *final* departure.
  RevisableOnlineGame g;
  g.num_slots = 3;
  g.cost = 100.0;
  RevisionSchedule u0;
  u0.revisions.push_back({1, SlotValues::Single(1, 120.0)});
  u0.revisions.push_back({2, *SlotValues::Make(1, 3, {120, 5, 5})});
  g.users = {u0,
             SingleDeclaration(3, SlotValues::Single(3, 60.0))};
  ASSERT_TRUE(g.Validate().ok());

  const AddOnResult r = RunAddOnWithRevisions(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 1);
  // At t=3 user 1 joins CS; the share halves and user 0 pays 50, not 100.
  EXPECT_DOUBLE_EQ(r.payments[0], 50.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 50.0);
}

TEST(RevisableGameTest, Validation) {
  RevisableOnlineGame g;
  g.num_slots = 0;
  EXPECT_FALSE(g.Validate().ok());
  g.num_slots = 2;
  g.cost = 0.0;
  EXPECT_FALSE(g.Validate().ok());
  g.cost = 5.0;
  g.users = {RevisionSchedule{}};
  EXPECT_FALSE(g.Validate().ok());  // Empty schedule.
  g.users = {SingleDeclaration(1, SlotValues::Single(1, 1.0))};
  EXPECT_TRUE(g.Validate().ok());
}

}  // namespace
}  // namespace optshare
