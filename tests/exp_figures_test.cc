// Integration tests: the experiment drivers must reproduce the qualitative
// shapes of the paper's figures (DESIGN.md §4 lists the targets). Reduced
// trial counts keep the suite fast; shapes are robust at this scale.
#include <gtest/gtest.h>

#include "exp/figures.h"
#include "exp/report.h"

#include <sstream>

namespace optshare::exp {
namespace {

TEST(ExperimentTest, SweepHelpers) {
  const auto sweep = LinearSweep(0.03, 0.18, 17);
  ASSERT_EQ(sweep.size(), 17u);
  EXPECT_DOUBLE_EQ(sweep.front(), 0.03);
  EXPECT_NEAR(sweep.back(), 2.91, 1e-12);
  EXPECT_EQ(Fig2SmallCosts().size(), 17u);
  EXPECT_EQ(Fig2LargeCosts().size(), 17u);
  EXPECT_NEAR(Fig2LargeCosts().back(), 11.64, 1e-12);
  EXPECT_NEAR(Fig4Costs().back(), 1.71, 1e-12);
}

TEST(Fig1Test, ShapeMatchesPaper) {
  Fig1Config config;
  config.sampled_alternatives = 120;
  config.executions = {1, 20, 50, 90};
  const auto points = RunFig1(astro::PaperWorkloadModel(), config);
  ASSERT_EQ(points.size(), 4u);

  // Baseline cost grows linearly with executions.
  EXPECT_NEAR(points[0].baseline_cost * 90.0, points[3].baseline_cost, 1e-6);

  // At meaningful usage, AddOn beats Regret and never drives a loss; the
  // paper reports 18%-118% higher utility at 40-90 executions.
  const auto& p90 = points[3];
  EXPECT_GT(p90.addon_mean, p90.regret_mean);
  EXPECT_GT(p90.addon_mean, 0.0);
  // AddOn utility lands in the paper's 28%-47%-of-baseline band at high
  // usage (we assert a safe superset).
  EXPECT_GT(p90.addon_mean / p90.baseline_cost, 0.15);
  EXPECT_LT(p90.addon_mean / p90.baseline_cost, 0.60);
  // Regret's balance goes negative (cloud loss) at some usage level.
  bool regret_loses = false;
  for (const auto& p : points) {
    if (p.regret_balance_mean < -1e-9) regret_loses = true;
  }
  EXPECT_TRUE(regret_loses);
}

TEST(Fig1Test, MeasuredModelPreservesGuarantees) {
  // Figure 1 with the *measured* astro model (full pipeline: universe ->
  // FoF -> merger-tree timings) instead of the paper constants: the
  // mechanism-side guarantees must be substrate-independent.
  astro::UniverseParams params;
  params.num_snapshots = astro::kAstroSnapshots;
  params.num_halos = 12;
  params.particles_per_halo = 24;
  params.seed = 9;
  astro::UniverseSimulator sim(params);
  const auto snapshots = sim.Run();
  std::vector<astro::HaloCatalog> catalogs;
  for (const auto& s : snapshots) {
    catalogs.push_back(*astro::FindHalos(s, params.box_size));
  }
  astro::QueryCosts costs;
  auto model = astro::MeasureWorkloads(snapshots, catalogs, costs, 0.5,
                                       /*view_cost_dollars=*/0.01);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  Fig1Config config;
  config.sampled_alternatives = 60;
  config.executions = {200, 2000};
  const auto points = RunFig1(*model, config);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_GE(p.addon_mean, -1e-9) << "AddOn utility must not be negative";
  }
  // At high usage the views fund themselves and AddOn produces utility.
  EXPECT_GT(points[1].addon_mean, 0.0);
  EXPECT_GT(points[1].addon_mean, points[0].addon_mean);
}

TEST(Fig2Test, AdditiveShapes) {
  Fig2Config config;
  config.trials = 150;
  const Fig2Series series = RunFig2(config);

  // (a) small: AddOn utility is never negative; Regret utility eventually
  // goes negative while its balance dips below zero.
  double regret_min = 1e9, balance_min = 1e9;
  for (const auto& p : series.additive_small) {
    EXPECT_GE(p.mech_utility, -1e-9);
    EXPECT_GE(p.mech_balance, -1e-9);  // Cost recovery in expectation too.
    regret_min = std::min(regret_min, p.regret_utility);
    balance_min = std::min(balance_min, p.regret_balance);
  }
  EXPECT_LT(regret_min, 0.0);
  EXPECT_LT(balance_min, 0.0);

  // At cheap costs AddOn beats Regret (Regret wastes value accumulating
  // regret before implementing).
  EXPECT_GT(series.additive_small.front().mech_utility,
            series.additive_small.front().regret_utility);

  // (b) large: there exists a mid-cost band where Regret beats AddOn (the
  // paper's "AddOn is more cautious" effect).
  bool regret_wins_somewhere = false;
  for (const auto& p : series.additive_large) {
    if (p.regret_utility > p.mech_utility + 1e-9) regret_wins_somewhere = true;
  }
  EXPECT_TRUE(regret_wins_somewhere);

  // Large-group utilities dominate small-group utilities at low cost.
  EXPECT_GT(series.additive_large.front().mech_utility,
            series.additive_small.front().mech_utility);
}

TEST(Fig2Test, SubstitutiveShapes) {
  Fig2Config config;
  config.trials = 150;
  const Fig2Series series = RunFig2(config);

  for (const auto& p : series.subst_small) {
    EXPECT_GE(p.mech_utility, -1e-9);
    EXPECT_GE(p.mech_balance, -1e-9);
  }
  // Substitutes yield less utility than the additive single-opt setting at
  // matching costs (paper: fewer users per optimization).
  EXPECT_LT(series.subst_small[3].mech_utility + 1e-9,
            series.additive_small[3].mech_utility);

  // Averaged over Regret's positive range, SubstOn multiplies Regret's
  // utility severalfold (paper: 1.63x large, 3x small).
  double mech_sum = 0.0, regret_sum = 0.0;
  for (const auto& p : series.subst_small) {
    if (p.regret_utility > 0.0) {
      mech_sum += p.mech_utility;
      regret_sum += p.regret_utility;
    }
  }
  ASSERT_GT(regret_sum, 0.0);
  EXPECT_GT(mech_sum / regret_sum, 1.5);
}

TEST(Fig3Test, OverlapShapes) {
  Fig3Config config;
  config.trials = 150;
  const auto single = RunFig3SingleSlot(config);
  ASSERT_EQ(single.size(), 12u);
  // Gap is positive everywhere and larger with maximal overlap (1 slot)
  // than with 12 slots.
  for (const auto& p : single) EXPECT_GT(p.gap, 0.0);
  EXPECT_GT(single.front().gap, single.back().gap);

  const auto multi = RunFig3MultiSlot(config);
  ASSERT_EQ(multi.size(), 12u);
  for (const auto& p : multi) EXPECT_GT(p.gap, 0.0);
  // Spreading value over longer durations widens the gap (d=12 vs d=1).
  EXPECT_GT(multi.back().gap, multi.front().gap);
}

TEST(Fig4Test, SkewShapes) {
  Fig4Config config;
  config.trials = 300;
  const auto points = RunFig4(config);
  ASSERT_FALSE(points.empty());

  // AddOn improves with skew: early-AddOn (the ratio denominator) beats
  // uniform-AddOn at every cost beyond the trivial ones; Regret worsens
  // with early skew (early-Regret below uniform-Regret).
  int early_addon_wins = 0, uniform_regret_wins = 0;
  for (const auto& p : points) {
    if (p.early_addon >= p.uniform_addon - 1e-9) ++early_addon_wins;
    if (p.uniform_regret >= p.early_regret - 1e-9) ++uniform_regret_wins;
  }
  EXPECT_GE(early_addon_wins, static_cast<int>(points.size()) - 2);
  EXPECT_GE(uniform_regret_wins, static_cast<int>(points.size()) - 2);

  // Ratio helper: early-AddOn is the unit.
  EXPECT_DOUBLE_EQ(Fig4Ratio(points[2], points[2].early_addon), 1.0);
}

TEST(Fig5Test, SelectivityShapes) {
  Fig5Config config;
  config.trials = 200;
  const Fig5Series series = RunFig5(config);

  // Higher selectivity (3 of 12) lowers both algorithms' utilities
  // compared to lower selectivity (3 of 4) at the same mid-range cost.
  const size_t mid = series.low_selectivity.size() / 2;
  EXPECT_GT(series.low_selectivity[mid].mech_utility,
            series.high_selectivity[mid].mech_utility);
  EXPECT_GT(series.low_selectivity[mid].regret_utility,
            series.high_selectivity[mid].regret_utility);

  // SubstOn stays positive throughout; Regret goes negative somewhere in
  // the high-selectivity panel.
  double regret_min = 1e9;
  for (const auto& p : series.high_selectivity) {
    EXPECT_GE(p.mech_utility, -1e-9);
    regret_min = std::min(regret_min, p.regret_utility);
  }
  EXPECT_LT(regret_min, 0.0);
}

TEST(ReportTest, TablesRenderEveryRow) {
  Fig1Config config;
  config.sampled_alternatives = 10;
  config.executions = {1, 5};
  const auto fig1 = RunFig1(astro::PaperWorkloadModel(), config);
  const std::string table = RenderFig1(fig1);
  EXPECT_NE(table.find("baseline_cost"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);  // hdr+sep+2.

  std::vector<UtilityPoint> curve = {{0.1, 1.0, 0.5, 0.0, 0.0}};
  const std::string curve_table = RenderUtilityCurve(curve, "AddOn");
  EXPECT_NE(curve_table.find("AddOn_utility"), std::string::npos);

  const std::string fig3 = RenderFig3({{1, 0.5}}, "num_slots");
  EXPECT_NE(fig3.find("addon_minus_regret"), std::string::npos);
}

TEST(ReportTest, CsvExports) {
  std::ostringstream out;
  std::vector<UtilityPoint> curve = {{0.1, 1.0, 0.5, -0.1, 0.0}};
  ASSERT_TRUE(WriteUtilityCurveCsv(&out, curve).ok());
  EXPECT_EQ(out.str(),
            "cost,mech_utility,regret_utility,regret_balance\n"
            "0.1,1,0.5,-0.1\n");

  std::ostringstream f3;
  ASSERT_TRUE(WriteFig3Csv(&f3, {{3, 1.25}}).ok());
  EXPECT_EQ(f3.str(), "x,addon_minus_regret\n3,1.25\n");
}

}  // namespace
}  // namespace optshare::exp
