// Pins the allocation-free serving hot path (service/fast_wire.h +
// protocol::AppendResponseLine) against the tree parser/serializer it
// shadows:
//
//   1. Differential parity — every corpus line through ParseRequestLineTree
//      and the combined ParseRequestLine yields the same accept/reject
//      decision, the identical Request (compared as canonical JSON), and
//      the identical error Status. The corpus covers every op, both
//      protocol versions, permuted field orders, whitespace, escapes,
//      duplicates, unknown fields, bad versions, and type confusion.
//   2. Fast-accept soundness — whenever TryFastParseRequestLine accepts,
//      the tree parser accepts with a bit-identical Request; and the fast
//      path demonstrably engages on the canonical serving lines (no silent
//      always-fallback).
//   3. AppendResponseLine emits exactly ToJson(response).Dump()'s bytes,
//      appending after any existing prefix.
//   4. Zero heap allocations per request, steady-state, for parse +
//      response serialization of the fixed-size ops — counted by the
//      operator-new hook (common/alloc_count.h), not eyeballed.
#include "common/alloc_count.h"  // Must be first: defines operator new.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/fast_wire.h"
#include "service/protocol.h"

namespace optshare::service::protocol {
namespace {

simdb::SimUser SampleTenant() {
  simdb::SimUser tenant;
  tenant.start = 2;
  tenant.end = 9;
  tenant.executions_per_slot = 137.5;
  simdb::Workload::Entry entry;
  entry.frequency = 2.5;
  entry.query.table = "telemetry";
  entry.query.aggregate = true;
  entry.query.predicates = {{"device", 2e-7}, {"metric", 0.015625}};
  tenant.workload.entries.push_back(entry);
  simdb::Workload::Entry scan;
  scan.frequency = 1.0;
  scan.query.table = "telemetry";
  scan.query.aggregate = false;
  tenant.workload.entries.push_back(scan);
  return tenant;
}

/// Canonical serialized lines for every op and version that speaks it.
std::vector<std::string> CanonicalLines() {
  std::vector<std::string> lines;
  const std::vector<RequestOp> ops = {
      RequestOp::kOpenPeriod,   RequestOp::kSubmit,
      RequestOp::kDepart,       RequestOp::kAdvanceSlot,
      RequestOp::kClosePeriod,  RequestOp::kReport,
      RequestOp::kQueryPrice,   RequestOp::kListMechanisms,
      RequestOp::kSnapshot,     RequestOp::kRestore,
      RequestOp::kShutdown,     RequestOp::kServerInfo};
  for (const RequestOp op : ops) {
    for (int version = RequestOpMinVersion(op); version <= kProtocolVersion;
         ++version) {
      for (const bool with_id : {false, true}) {
        Request request;
        request.op = op;
        request.version = version;
        if (with_id) request.id = "req-42";
        if (OpTakesTenancy(op)) request.tenancy = "acme";
        switch (op) {
          case RequestOp::kOpenPeriod: {
            CatalogSpec catalog;
            catalog.scenario = "telemetry";
            request.catalog = catalog;
            break;
          }
          case RequestOp::kSubmit:
          case RequestOp::kQueryPrice:
            request.tenants = {SampleTenant(), SampleTenant()};
            break;
          case RequestOp::kDepart:
            request.tenant = 3;
            break;
          case RequestOp::kAdvanceSlot:
            request.slots = 4;
            break;
          default:
            break;
        }
        lines.push_back(ToJson(request).Dump());
      }
    }
  }
  // Historical reads: v2 report with an explicit period.
  for (const bool with_id : {false, true}) {
    Request request;
    request.op = RequestOp::kReport;
    request.version = 2;
    request.tenancy = "acme";
    request.period = 2;
    if (with_id) request.id = "req-42";
    lines.push_back(ToJson(request).Dump());
  }
  return lines;
}

/// The adversarial corpus: hand-written lines that probe every divergence
/// the fast scanner could introduce.
std::vector<std::string> AdversarialLines() {
  return {
      // Field-order permutations and whitespace.
      R"({"op":"report","tenancy":"acme","v":1})",
      R"({"tenancy":"acme","v":2,"op":"snapshot","id":"x"})",
      "{ \"v\" : 1 , \"op\" : \"report\" , \"tenancy\" : \"acme\" }",
      "\t{\"v\":1,\"op\":\"list_mechanisms\"}\r\n",
      R"(  {"v":1,"op":"advance_slot","tenancy":"a","slots":1}  )",
      // Escapes in keys and values.
      R"({"v":1,"op":"report","tenancy":"ac\nme"})",
      R"({"\u006fp":"report","v":1,"tenancy":"acme"})",
      R"({"v":1,"op":"re\u0070ort","tenancy":"acme"})",
      R"({"v":1,"op":"report","tenancy":"ac\u006de"})",
      R"({"v":1,"op":"report","tenancy":"\u00e9\u20ac"})",
      R"({"v":1,"op":"report","tenancy":"tab\tquote\"slash\\"})",
      R"({"v":1,"op":"report","tenancy":"€é"})",
      R"({"v":1,"op":"report","tenancy":"bad\qescape"})",
      R"({"v":1,"op":"report","tenancy":"short\u00"})",
      // Duplicate keys (tree: last wins; fast must fall back, not reject).
      R"({"v":1,"v":2,"op":"server_info"})",
      R"({"v":1,"op":"report","op":"close_period","tenancy":"acme"})",
      R"({"v":1,"op":"report","tenancy":"a","tenancy":"b"})",
      R"({"v":1,"op":"advance_slot","tenancy":"a","slots":2,"slots":3})",
      // Unknown fields / wrong-op fields.
      R"({"v":1,"op":"list_mechanisms","bogus":true})",
      R"({"v":1,"op":"report","tenancy":"acme","slots":2})",
      R"({"v":1,"op":"submit","tenancy":"acme","tenant":1,"tenants":[]})",
      R"({"v":1,"op":"list_mechanisms","tenancy":"acme"})",
      R"({"v":1,"op":"report"})",
      R"({"v":1,"op":"report","tenancy":""})",
      // Version abuse.
      R"({"op":"report","tenancy":"acme"})",
      R"({"v":0,"op":"report","tenancy":"acme"})",
      R"({"v":3,"op":"report","tenancy":"acme"})",
      R"({"v":1.5,"op":"report","tenancy":"acme"})",
      R"({"v":"1","op":"report","tenancy":"acme"})",
      R"({"v":2.0,"op":"snapshot","tenancy":"acme"})",
      R"({"v":1e0,"op":"report","tenancy":"acme"})",
      R"({"v":1,"op":"snapshot","tenancy":"acme"})",
      R"({"v":-1,"op":"report","tenancy":"acme"})",
      // Type confusion.
      R"({"v":1,"op":42,"tenancy":"acme"})",
      R"({"v":1,"op":"depart","tenancy":"a","tenant":"3"})",
      R"({"v":1,"op":"depart","tenancy":"a","tenant":3.5})",
      R"({"v":1,"op":"depart","tenancy":"a","tenant":3000000000})",
      R"({"v":1,"op":"depart","tenancy":"a","tenant":-2})",
      R"({"v":1,"op":"advance_slot","tenancy":"a","slots":0})",
      R"({"v":1,"op":"advance_slot","tenancy":"a","slots":-3})",
      R"({"v":1,"op":"advance_slot","tenancy":"a","slots":2.5})",
      R"({"v":1,"op":"advance_slot","tenancy":"a","slots":true})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":{}})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[1]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[]})",
      // Submit payload strictness.
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1,"end":2,)"
      R"("executions_per_slot":3,"workload":[]}]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1,"end":2,)"
      R"("workload":[]}]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1,"end":2,)"
      R"("executions_per_slot":3,"workload":[],"extra":0}]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1.5,"end":2,)"
      R"("executions_per_slot":3,"workload":[]}]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1,"end":2,)"
      R"("executions_per_slot":3,"workload":[{"frequency":1}]}]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1,"end":2,)"
      R"("executions_per_slot":3,"workload":[{"frequency":1,"query":)"
      R"({"table":"t","aggregate":true,"predicates":[]}}]}]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1,"end":2,)"
      R"("executions_per_slot":3,"workload":[{"frequency":1,"query":)"
      R"({"table":"t","aggregate":"yes","predicates":[]}}]}]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1,"end":2,)"
      R"("executions_per_slot":3,"workload":[{"frequency":1,"query":)"
      R"({"table":"t","aggregate":false,"predicates":[{"column":"c",)"
      R"("selectivity":0.5}]}}]}]})",
      R"({"v":1,"op":"submit","tenancy":"a","tenants":[{"start":1,"end":2,)"
      R"("executions_per_slot":3,"workload":[{"frequency":1,"query":)"
      R"({"table":"t","aggregate":false,"predicates":[{"column":"c"}]}}]}]})",
      // Historical-report period field: bounds, types, wrong ops.
      R"({"v":2,"op":"report","tenancy":"acme","period":0})",
      R"({"v":2,"op":"report","tenancy":"acme","period":-1})",
      R"({"v":2,"op":"report","tenancy":"acme","period":2.5})",
      R"({"v":2,"op":"report","tenancy":"acme","period":"2"})",
      R"({"v":2,"op":"report","tenancy":"acme","period":true})",
      R"({"v":2,"op":"report","tenancy":"acme","period":3000000000})",
      R"({"v":1,"op":"report","tenancy":"acme","period":2})",
      R"({"v":2,"op":"report","tenancy":"acme","period":1,"period":2})",
      R"({"v":1,"op":"advance_slot","tenancy":"a","slots":1,"period":2})",
      R"({"v":1,"op":"close_period","tenancy":"a","period":1})",
      R"({"v":2,"op":"report","period":1})",
      // query_price: version gate, payload strictness, wrong-op fields.
      R"({"v":2,"op":"query_price","tenancy":"a"})",
      R"({"v":2,"op":"query_price","tenancy":"a","tenants":[]})",
      R"({"v":2,"op":"query_price","tenancy":"a","tenants":{}})",
      R"({"v":1,"op":"query_price","tenancy":"a","tenants":[{"start":1,)"
      R"("end":2,"executions_per_slot":3,"workload":[]}]})",
      R"({"v":2,"op":"query_price","tenancy":"a","slots":1,"tenants":)"
      R"([{"start":1,"end":2,"executions_per_slot":3,"workload":[]}]})",
      R"({"v":2,"op":"query_price","tenancy":"a","tenant":1})",
      R"({"v":2,"op":"query_price","tenancy":"a","period":1,"tenants":)"
      R"([{"start":1,"end":2,"executions_per_slot":3,"workload":[]}]})",
      R"({"op":"query_price","tenancy":"a","v":2,"tenants":[{"start":1,)"
      R"("end":2,"executions_per_slot":3,"workload":[]}]})",
      // Malformed JSON and structural abuse.
      "",
      "   ",
      "{",
      "}",
      "[]",
      "null",
      "true",
      "42",
      R"("report")",
      R"({"v":1,"op":"report","tenancy":"acme"} trailing)",
      R"({"v":1,"op":"report","tenancy":"acme"}{"v":1})",
      R"({"v":1 "op":"report"})",
      R"({"v":1,,"op":"report"})",
      R"({"v":1,"op":"report","tenancy":"acme")",
      R"({"v":1,"op":"report","tenancy":"acme",})",
      R"({"v":01,"op":"report","tenancy":"acme"})",
      R"({"v":+1,"op":"report","tenancy":"acme"})",
      R"({"v":1,"op":"report","tenancy":"acme","slots":1e})",
      R"({"v":1,"op":"report","tenancy":"acme","slots":--1})",
      R"({"v":nan,"op":"report","tenancy":"acme"})",
      // open_period must route through the tree parser.
      R"({"v":1,"op":"open_period","tenancy":"acme"})",
      R"({"v":1,"op":"open_period","tenancy":"acme","catalog":)"
      R"({"scenario":"telemetry","tenants":6,"slots":12}})",
      R"({"v":1,"op":"open_period","tenancy":"acme","config":)"
      R"({"mechanism":"addon"}})",
  };
}

std::vector<std::string> FullCorpus() {
  std::vector<std::string> corpus = CanonicalLines();
  const std::vector<std::string> adversarial = AdversarialLines();
  corpus.insert(corpus.end(), adversarial.begin(), adversarial.end());
  return corpus;
}

void ExpectParity(const std::string& line) {
  SCOPED_TRACE("line: " + line);
  const Result<Request> tree = ParseRequestLineTree(line);
  const Result<Request> combined = ParseRequestLine(line);
  ASSERT_EQ(tree.ok(), combined.ok());
  if (tree.ok()) {
    EXPECT_EQ(ToJson(*tree).Dump(), ToJson(*combined).Dump());
    EXPECT_EQ(tree->version, combined->version);
    EXPECT_EQ(tree->op, combined->op);
  } else {
    EXPECT_EQ(tree.status().ToString(), combined.status().ToString());
  }
}

TEST(FastWireDifferentialTest, CorpusParity) {
  for (const std::string& line : FullCorpus()) ExpectParity(line);
}

TEST(FastWireDifferentialTest, FastAcceptImpliesIdenticalTreeParse) {
  size_t accepted = 0;
  for (const std::string& line : FullCorpus()) {
    SCOPED_TRACE("line: " + line);
    Request fast;
    if (!TryFastParseRequestLine(line, &fast)) continue;
    ++accepted;
    const Result<Request> tree = ParseRequestLineTree(line);
    ASSERT_TRUE(tree.ok()) << "fast accepted what the tree rejects: "
                           << tree.status().ToString();
    EXPECT_EQ(ToJson(*tree).Dump(), ToJson(fast).Dump());
  }
  // The scanner must actually engage — a scanner that always falls back
  // would pass every parity test while optimizing nothing.
  EXPECT_GE(accepted, 20u);
}

TEST(FastWireDifferentialTest, FastPathHandlesCanonicalServingLines) {
  // The high-volume lines the optimization exists for must not fall back.
  const std::vector<std::string> hot = {
      R"({"v":1,"op":"advance_slot","tenancy":"acme","slots":3})",
      R"({"v":1,"op":"report","tenancy":"acme"})",
      R"({"v":1,"op":"close_period","tenancy":"acme"})",
      R"({"v":2,"op":"snapshot","tenancy":"acme","id":"s1"})",
      R"({"v":1,"op":"depart","tenancy":"acme","tenant":0})",
      R"({"v":2,"op":"server_info"})",
      R"({"v":2,"op":"report","tenancy":"acme","period":3})",
      ToJson([] {
        Request request;
        request.op = RequestOp::kSubmit;
        request.tenancy = "acme";
        request.tenants = {SampleTenant()};
        return request;
      }()).Dump(),
      ToJson([] {
        Request request;
        request.op = RequestOp::kQueryPrice;
        request.version = 2;
        request.tenancy = "acme";
        request.tenants = {SampleTenant()};
        return request;
      }()).Dump(),
  };
  for (const std::string& line : hot) {
    SCOPED_TRACE("line: " + line);
    Request fast;
    EXPECT_TRUE(TryFastParseRequestLine(line, &fast));
  }
}

TEST(AppendResponseLineTest, MatchesTreeSerializerBytes) {
  std::vector<Response> responses;
  responses.push_back(OkResponse("", JsonValue::Null()));
  responses.push_back(OkResponse("req-1", JsonValue::Null()));
  {
    JsonValue payload = JsonValue::MakeObject();
    payload.Set("mechanisms", JsonValue::MakeArray());
    payload.AsObject()["mechanisms"].Append(JsonValue::Str("addon"));
    payload.Set("count", JsonValue::Number(1));
    payload.Set("ratio", JsonValue::Number(0.015625));
    payload.Set("exact", JsonValue::Number(137.5));
    payload.Set("tiny", JsonValue::Number(2e-7));
    payload.Set("flag", JsonValue::Bool(true));
    payload.Set("name", JsonValue::Str("esc \"q\" \\ \n \t \x01"));
    responses.push_back(OkResponse("id with \"quotes\"", std::move(payload)));
  }
  responses.push_back(
      ErrorResponse("e1", Status::NotFound("tenancy \"acme\" unknown")));
  responses.push_back(ErrorResponse(
      "", Status::InvalidArgument("line\nwith\tcontrol \x02 bytes")));
  responses.back().version = kMinProtocolVersion;

  for (Response& response : responses) {
    for (int version = kMinProtocolVersion; version <= kProtocolVersion;
         ++version) {
      response.version = version;
      const std::string expected = ToJson(response).Dump();
      EXPECT_EQ(FormatResponseLine(response), expected);
      std::string appended = "prefix|";
      AppendResponseLine(response, &appended);
      EXPECT_EQ(appended, "prefix|" + expected);
    }
  }
}

TEST(ZeroAllocationTest, FixedSizeOpsParseAndSerializeWithoutHeap) {
  if (!alloc_count::AllocationCountingAvailable()) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  const std::vector<std::string> lines = {
      R"({"v":1,"op":"advance_slot","tenancy":"acme","slots":3})",
      R"({"v":1,"op":"report","tenancy":"acme","id":"r7"})",
      R"({"v":2,"op":"report","tenancy":"acme","period":2})",
      R"({"v":1,"op":"close_period","tenancy":"acme"})",
      R"({"v":2,"op":"snapshot","tenancy":"acme"})",
      R"({"v":2,"op":"server_info"})",
      R"({"v":1,"op":"depart","tenancy":"acme","tenant":0})",
  };
  Response response = OkResponse("r7", JsonValue::Bool(true));
  std::string scratch;

  // Warm-up: let every lazily-grown buffer reach steady-state capacity.
  for (int i = 0; i < 4; ++i) {
    for (const std::string& line : lines) {
      const Result<Request> parsed = ParseRequestLine(line);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      scratch.clear();
      AppendResponseLine(response, &scratch);
    }
  }

  constexpr int kIterations = 256;
  bool all_ok = true;
  const uint64_t before = alloc_count::ThreadAllocations();
  for (int i = 0; i < kIterations; ++i) {
    for (const std::string& line : lines) {
      const Result<Request> parsed = ParseRequestLine(line);
      all_ok = all_ok && parsed.ok();
      scratch.clear();
      AppendResponseLine(response, &scratch);
    }
  }
  const uint64_t after = alloc_count::ThreadAllocations();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(after - before, 0u)
      << "the wire hot path allocated " << (after - before) << " times over "
      << kIterations * lines.size() << " requests";
}

}  // namespace
}  // namespace optshare::service::protocol
