// Tests for the VCG reference: efficient + truthful, but NOT
// cost-recovering — the third corner of the Moulin-Shenker impossibility
// triangle the paper's §3 invokes.
#include "baseline/vcg.h"

#include <gtest/gtest.h>

#include "common/money.h"
#include "common/rng.h"
#include "core/accounting.h"
#include "core/add_off.h"
#include "core/subst_off.h"

namespace optshare {
namespace {

AdditiveOfflineGame SimpleGame() {
  AdditiveOfflineGame g;
  g.costs = {100.0};
  g.bids = {{60.0}, {50.0}, {30.0}};
  return g;
}

TEST(VcgTest, ImplementsWheneverWelfarePositive) {
  VcgResult r = RunVcg(SimpleGame());
  ASSERT_TRUE(r.per_opt[0].implemented);
  // Every positive bidder is serviced (efficiency excludes no one).
  EXPECT_TRUE(r.per_opt[0].serviced[0]);
  EXPECT_TRUE(r.per_opt[0].serviced[1]);
  EXPECT_TRUE(r.per_opt[0].serviced[2]);
}

TEST(VcgTest, ClarkeTaxes) {
  VcgResult r = RunVcg(SimpleGame());
  // User 0: others bid 80, shortfall 20. User 1: others 90, shortfall 10.
  // User 2: others 110 >= 100, no externality.
  EXPECT_DOUBLE_EQ(r.per_opt[0].payments[0], 20.0);
  EXPECT_DOUBLE_EQ(r.per_opt[0].payments[1], 10.0);
  EXPECT_DOUBLE_EQ(r.per_opt[0].payments[2], 0.0);
}

TEST(VcgTest, NotCostRecovering) {
  // The classic deficit: payments sum to 30 < cost 100.
  VcgResult r = RunVcg(SimpleGame());
  EXPECT_LT(r.per_opt[0].TotalPayment(), 100.0);
}

TEST(VcgTest, NotImplementedWhenWelfareNegative) {
  AdditiveOfflineGame g;
  g.costs = {100.0};
  g.bids = {{40.0}, {30.0}};
  VcgResult r = RunVcg(g);
  EXPECT_FALSE(r.per_opt[0].implemented);
  EXPECT_DOUBLE_EQ(r.per_opt[0].TotalPayment(), 0.0);
}

TEST(VcgTest, TruthfulOnRandomGames) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 3;
    AdditiveOfflineGame g;
    g.costs = {rng.Uniform(0.3, 2.0)};
    for (int i = 0; i < m; ++i) g.bids.push_back({rng.Uniform(0.0, 1.0)});

    VcgResult truthful = RunVcg(g);
    for (int i = 0; i < m; ++i) {
      const double value = g.bids[static_cast<size_t>(i)][0];
      const double truthful_utility =
          truthful.per_opt[0].implemented && value > 0.0
              ? value - truthful.per_opt[0].payments[static_cast<size_t>(i)]
              : 0.0;
      for (double bid : {0.0, value * 0.5, value * 2.0, 5.0}) {
        AdditiveOfflineGame dev = g;
        dev.bids[static_cast<size_t>(i)][0] = bid;
        VcgResult r = RunVcg(dev);
        const double utility =
            r.per_opt[0].implemented && bid > 0.0 &&
                    r.per_opt[0].serviced[static_cast<size_t>(i)]
                ? value - r.per_opt[0].payments[static_cast<size_t>(i)]
                : 0.0;
        EXPECT_LE(utility, truthful_utility + 1e-9)
            << "trial " << trial << " user " << i << " bid " << bid;
      }
    }
  }
}

TEST(VcgTest, EfficiencyDominatesShapley) {
  // VCG implements whenever total value covers cost; Shapley can fail to
  // (the efficiency loss the paper accepts for cost recovery). Bids
  // {60, 45, 30} against cost 100 have welfare 35, but every even split
  // prices someone out: 33.3 evicts 30, 50 evicts 45, 100 evicts 60.
  AdditiveOfflineGame g;
  g.costs = {100.0};
  g.bids = {{60.0}, {45.0}, {30.0}};
  VcgResult vcg = RunVcg(g);
  AddOffResult shapley = RunAddOff(g);
  EXPECT_TRUE(vcg.per_opt[0].implemented);
  EXPECT_FALSE(shapley.per_opt[0].implemented);
  EXPECT_DOUBLE_EQ(OptimalAdditiveWelfare(g), 35.0);
}

TEST(VcgTest, WelfareUpperBoundsShapleyOnRandomGames) {
  Rng rng(37);
  for (int trial = 0; trial < 300; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 7));
    AdditiveOfflineGame g;
    g.costs = {rng.Uniform(0.2, 3.0)};
    for (int i = 0; i < m; ++i) g.bids.push_back({rng.Uniform(0.0, 1.0)});

    const double optimal = OptimalAdditiveWelfare(g);
    AddOffResult shapley = RunAddOff(g);
    double shapley_welfare = 0.0;
    if (shapley.per_opt[0].implemented) {
      for (int i = 0; i < m; ++i) {
        if (shapley.per_opt[0].serviced[static_cast<size_t>(i)]) {
          shapley_welfare += g.bids[static_cast<size_t>(i)][0];
        }
      }
      shapley_welfare -= g.costs[0];
    }
    EXPECT_LE(shapley_welfare, optimal + 1e-9);
    EXPECT_GE(optimal, 0.0);
  }
}

TEST(VcgTest, OptimalOnlineWelfare) {
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 100.0;
  g.users = {SlotValues::Single(1, 101.0),
             *SlotValues::Make(1, 3, {16.0, 16.0, 16.0})};
  // Total value 149 - 100.
  EXPECT_DOUBLE_EQ(OptimalOnlineWelfare(g), 49.0);
  g.cost = 200.0;
  EXPECT_DOUBLE_EQ(OptimalOnlineWelfare(g), 0.0);
}

TEST(VcgTest, OptimalSubstWelfareEnumerates) {
  // Example 5's game: optimum implements opts 0 and 2, servicing users
  // {0, 2} (via opt 0) and user 1 (via opt 2); user 3's 70 < any way of
  // adding opt 1's 180 cost... implementing opt 1 instead would serve
  // users 0, 2, 3 (100+60+70=230) at cost 180 plus opt 2 for user 1.
  SubstOfflineGame g;
  g.costs = {60.0, 180.0, 100.0};
  g.users = {{{0, 1}, 100.0}, {{2}, 101.0}, {{0, 1, 2}, 60.0}, {{1}, 70.0}};
  // Candidates: {0,2}: 100+101+60 - 160 = 101. {0,1,2}: 331 - 340 < 0...
  // {1,2}: 100+101+60+70 - 280 = 51. {0}: 160-60=100. {2}: 161-100=61.
  EXPECT_DOUBLE_EQ(OptimalSubstWelfare(g), 101.0);

  // SubstOff achieves exactly the optimum here (utility 101).
  SubstOffResult r = RunSubstOff(g);
  Accounting acc = AccountSubstOff(g, r);
  EXPECT_DOUBLE_EQ(acc.TotalUtility(), 101.0);
}

TEST(VcgTest, OptimalSubstWelfareUpperBoundsSubstOff) {
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    SubstOfflineGame g;
    const int n = 2 + static_cast<int>(rng.UniformInt(0, 4));
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 7));
    for (int j = 0; j < n; ++j) g.costs.push_back(rng.Uniform(0.1, 1.5));
    for (int i = 0; i < m; ++i) {
      SubstOfflineUser u;
      const int k = 1 + static_cast<int>(rng.UniformInt(0, n - 1));
      auto picks = rng.SampleWithoutReplacement(n, k);
      std::sort(picks.begin(), picks.end());
      u.substitutes.assign(picks.begin(), picks.end());
      u.value = rng.Uniform(0.0, 1.0);
      g.users.push_back(u);
    }
    const double optimal = OptimalSubstWelfare(g);
    Accounting acc = AccountSubstOff(g, RunSubstOff(g));
    EXPECT_LE(acc.TotalUtility(), optimal + 1e-9) << "seed trial " << trial;
    EXPECT_GE(optimal, 0.0);
  }
}

TEST(VcgTest, MultiOptAggregation) {
  AdditiveOfflineGame g;
  g.costs = {100.0, 10.0};
  g.bids = {{60.0, 20.0}, {50.0, 0.0}};
  VcgResult r = RunVcg(g);
  ASSERT_TRUE(r.per_opt[0].implemented);
  ASSERT_TRUE(r.per_opt[1].implemented);
  EXPECT_DOUBLE_EQ(r.total_payment[0], 50.0 + 10.0);  // 100-50; 10-0.
  EXPECT_DOUBLE_EQ(r.total_payment[1], 40.0);         // 100-60; not on opt 1.
  EXPECT_DOUBLE_EQ(r.ImplementedCost(g.costs), 110.0);
}

}  // namespace
}  // namespace optshare
