// Tests for the workload generators of §7.3-§7.6.
#include <gtest/gtest.h>

#include "workload/arrival.h"
#include "workload/scenario.h"

namespace optshare {
namespace {

TEST(ArrivalTest, UniformCoversAllSlots) {
  Rng rng(1);
  std::vector<int> counts(12, 0);
  for (int i = 0; i < 12000; ++i) {
    const TimeSlot s = SampleArrival(rng, ArrivalProcess::kUniform, 12);
    ASSERT_GE(s, 1);
    ASSERT_LE(s, 12);
    ++counts[static_cast<size_t>(s - 1)];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(ArrivalTest, EarlySkewsTowardSlotOne) {
  Rng rng(2);
  int first_two = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const TimeSlot s = SampleArrival(rng, ArrivalProcess::kEarly, 12);
    ASSERT_GE(s, 1);
    ASSERT_LE(s, 12);
    if (s <= 2) ++first_two;
  }
  // Exp(mean 1.28): P(floor(x) <= 1) = 1 - exp(-2/1.28) ~ 0.79.
  EXPECT_GT(first_two, n * 7 / 10);
}

TEST(ArrivalTest, LateSkewsTowardLastSlot) {
  Rng rng(3);
  int last_two = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const TimeSlot s = SampleArrival(rng, ArrivalProcess::kLate, 12);
    ASSERT_GE(s, 1);
    ASSERT_LE(s, 12);
    if (s >= 11) ++last_two;
  }
  EXPECT_GT(last_two, n * 7 / 10);
}

TEST(ArrivalTest, Names) {
  EXPECT_STREQ(ArrivalProcessName(ArrivalProcess::kUniform), "uniform");
  EXPECT_STREQ(ArrivalProcessName(ArrivalProcess::kEarly), "early");
  EXPECT_STREQ(ArrivalProcessName(ArrivalProcess::kLate), "late");
}

TEST(SpreadValueTest, SplitsEvenly) {
  SlotValues sv = SpreadValue(3, 4, 12, 2.0);
  EXPECT_EQ(sv.start, 3);
  EXPECT_EQ(sv.end, 6);
  EXPECT_DOUBLE_EQ(sv.At(4), 0.5);
  EXPECT_DOUBLE_EQ(sv.Total(), 2.0);
}

TEST(SpreadValueTest, ClipsAtHorizon) {
  // §7.4: interval (s, s+d-1) clipped at the last slot; the value is split
  // over the clipped length, preserving the total.
  SlotValues sv = SpreadValue(11, 4, 12, 1.0);
  EXPECT_EQ(sv.start, 11);
  EXPECT_EQ(sv.end, 12);
  EXPECT_DOUBLE_EQ(sv.At(11), 0.5);
  EXPECT_DOUBLE_EQ(sv.Total(), 1.0);
}

TEST(ScenarioTest, AdditiveValidation) {
  AdditiveScenario s;
  EXPECT_TRUE(s.Validate().ok());
  s.duration = 13;
  EXPECT_FALSE(s.Validate().ok());
  s.duration = 1;
  s.num_users = 0;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(ScenarioTest, SubstValidation) {
  SubstScenario s;
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_DOUBLE_EQ(s.Selectivity(), 0.25);  // 3 of 12.
  s.substitutes_per_user = 13;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(ScenarioTest, MakeAdditiveGameIsValid) {
  Rng rng(5);
  AdditiveScenario scenario;  // Paper defaults: 6 users, 12 slots.
  for (int trial = 0; trial < 50; ++trial) {
    AdditiveOnlineGame g = MakeAdditiveGame(scenario, 0.5, rng);
    ASSERT_TRUE(g.Validate().ok());
    EXPECT_EQ(g.num_users(), 6);
    EXPECT_EQ(g.num_slots, 12);
    for (const auto& u : g.users) {
      EXPECT_EQ(u.Length(), 1);  // duration 1.
      EXPECT_GE(u.Total(), 0.0);
      EXPECT_LT(u.Total(), 1.0);
    }
  }
}

TEST(ScenarioTest, MakeAdditiveGameRespectsDuration) {
  Rng rng(6);
  AdditiveScenario scenario;
  scenario.duration = 5;
  AdditiveOnlineGame g = MakeAdditiveGame(scenario, 0.5, rng);
  for (const auto& u : g.users) {
    EXPECT_LE(u.Length(), 5);
    EXPECT_EQ(u.end, std::min(u.start + 4, 12));
  }
}

TEST(ScenarioTest, MakeSubstGameIsValid) {
  Rng rng(7);
  SubstScenario scenario;  // 6 users, 12 opts, 3 substitutes.
  for (int trial = 0; trial < 50; ++trial) {
    SubstOnlineGame g = MakeSubstGame(scenario, 0.5, rng);
    ASSERT_TRUE(g.Validate().ok());
    EXPECT_EQ(g.num_opts(), 12);
    for (const auto& u : g.users) {
      EXPECT_EQ(u.substitutes.size(), 3u);
    }
    for (double c : g.costs) {
      EXPECT_GT(c, 0.0);
      EXPECT_LT(c, 1.0);  // U[0, 2*0.5).
    }
  }
}

TEST(ScenarioTest, SubstCostsAverageToMeanCost) {
  Rng rng(8);
  SubstScenario scenario;
  double sum = 0.0;
  int count = 0;
  for (int trial = 0; trial < 400; ++trial) {
    SubstOnlineGame g = MakeSubstGame(scenario, 0.75, rng);
    for (double c : g.costs) {
      sum += c;
      ++count;
    }
  }
  EXPECT_NEAR(sum / count, 0.75, 0.02);
}

TEST(ScenarioTest, GenerationIsDeterministicPerSeed) {
  AdditiveScenario scenario;
  Rng rng1(99), rng2(99);
  AdditiveOnlineGame a = MakeAdditiveGame(scenario, 0.5, rng1);
  AdditiveOnlineGame b = MakeAdditiveGame(scenario, 0.5, rng2);
  for (int i = 0; i < a.num_users(); ++i) {
    EXPECT_EQ(a.users[static_cast<size_t>(i)].start,
              b.users[static_cast<size_t>(i)].start);
    EXPECT_DOUBLE_EQ(a.users[static_cast<size_t>(i)].Total(),
                     b.users[static_cast<size_t>(i)].Total());
  }
}

}  // namespace
}  // namespace optshare
