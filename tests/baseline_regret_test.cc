// Tests for the Regret baseline (paper §7.1): greedy trigger, omniscient
// loss-minimizing price, lack of cost-recovery guarantees, and the
// substitutable variant's capture semantics.
#include "baseline/regret.h"

#include <gtest/gtest.h>

#include "common/money.h"

namespace optshare {
namespace {

TEST(RegretAdditiveTest, TriggersWhenRegretReachesCost) {
  // Values: 10 per slot from one user; cost 25. R(1)=0, R(2)=10, R(3)=20,
  // R(4)=30 >= 25 -> implemented at t=4.
  AdditiveOnlineGame g;
  g.num_slots = 6;
  g.cost = 25.0;
  g.users = {SlotValues::Constant(1, 6, 10.0)};
  RegretAdditiveResult r = RunRegretAdditive(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 4);
  EXPECT_DOUBLE_EQ(r.regret[0], 0.0);
  EXPECT_DOUBLE_EQ(r.regret[3], 30.0);
}

TEST(RegretAdditiveTest, RegretExcludesCurrentSlot) {
  // R(t) sums strictly past slots: with cost exactly 10 and one 10-valued
  // slot stream, the trigger is t=2, not t=1.
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 10.0;
  g.users = {SlotValues::Constant(1, 3, 10.0)};
  RegretAdditiveResult r = RunRegretAdditive(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 2);
}

TEST(RegretAdditiveTest, NeverTriggersWhenValueTooLow) {
  AdditiveOnlineGame g;
  g.num_slots = 4;
  g.cost = 1000.0;
  g.users = {SlotValues::Constant(1, 4, 1.0)};
  RegretAdditiveResult r = RunRegretAdditive(g);
  EXPECT_FALSE(r.implemented);
  EXPECT_DOUBLE_EQ(r.TotalUtility(), 0.0);
  EXPECT_DOUBLE_EQ(r.CloudBalance(), 0.0);
}

TEST(RegretAdditiveTest, PriceMinimizesCloudLoss) {
  // Cost 30. One user worth 10/slot over [1,6] triggers at t=4 with
  // residual 20; a second user worth 15 in slot 5 has residual 15.
  // Candidate prices {15, 20}: p=15 -> 2 buyers, revenue 30 (loss 0);
  // p=20 -> 1 buyer, revenue 20 (loss 10). Price 15 wins.
  AdditiveOnlineGame g;
  g.num_slots = 6;
  g.cost = 30.0;
  g.users = {SlotValues::Constant(1, 6, 10.0), SlotValues::Single(5, 15.0)};
  RegretAdditiveResult r = RunRegretAdditive(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 4);  // R(4) = 10+10+10 = 30.
  // Residuals from t=5: user 0 -> 20, user 1 -> 15.
  EXPECT_DOUBLE_EQ(r.price, 15.0);
  EXPECT_EQ(r.NumBuyers(), 2);
  EXPECT_DOUBLE_EQ(r.total_payment, 30.0);
  EXPECT_DOUBLE_EQ(r.CloudBalance(), 0.0);
  EXPECT_DOUBLE_EQ(r.total_value, 35.0);
}

TEST(RegretAdditiveTest, SmallestPriceAmongTies) {
  // Cost 10, residuals {10, 10}: p=10 -> revenue 20, p=5? not candidate.
  // Candidates {10}: single. Make a tie: residuals {10, 20}; p=10 ->
  // revenue 20 loss 0; p=20 -> revenue 20 loss 0. Smallest (10) chosen.
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 10.0;
  g.users = {*SlotValues::Make(1, 2, {10.0, 10.0}),
             *SlotValues::Make(1, 3, {0.0, 10.0, 10.0})};
  RegretAdditiveResult r = RunRegretAdditive(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 2);  // R(2) = 10.
  // Residuals from t=3: user 0 -> 0, user 1 -> 10.
  EXPECT_DOUBLE_EQ(r.price, 10.0);
  EXPECT_EQ(r.NumBuyers(), 1);
}

TEST(RegretAdditiveTest, CloudLossWhenResidualInsufficient) {
  // The key failure mode the paper highlights: regret builds up, the
  // optimization is implemented, but too little future value remains.
  AdditiveOnlineGame g;
  g.num_slots = 4;
  g.cost = 30.0;
  g.users = {*SlotValues::Make(1, 4, {10.0, 10.0, 10.0, 2.0})};
  RegretAdditiveResult r = RunRegretAdditive(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 4);
  // Residual after t=4 is 0: no buyers, full loss.
  EXPECT_EQ(r.NumBuyers(), 0);
  EXPECT_DOUBLE_EQ(r.CloudBalance(), -30.0);
  EXPECT_DOUBLE_EQ(r.TotalUtility(), -30.0);
  EXPECT_FALSE(MoneyGe(r.CloudBalance(), 0.0));
}

TEST(RegretAdditiveTest, BuyersPayOnceAndValueIsResidualOnly) {
  AdditiveOnlineGame g;
  g.num_slots = 4;
  g.cost = 10.0;
  g.users = {SlotValues::Constant(1, 4, 10.0)};
  RegretAdditiveResult r = RunRegretAdditive(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 2);
  // Value realized is only t=3..4 (post-trigger): 20, not 40. The
  // break-even price 10 (= C/1) undercuts the residual 20.
  EXPECT_DOUBLE_EQ(r.total_value, 20.0);
  EXPECT_DOUBLE_EQ(r.price, 10.0);
  EXPECT_DOUBLE_EQ(r.total_payment, 10.0);
}

TEST(RegretAdditiveTest, MultiOptIndependence) {
  MultiAdditiveOnlineGame g;
  g.num_slots = 3;
  g.costs = {5.0, 500.0};
  g.bids = {
      {SlotValues::Constant(1, 3, 10.0), SlotValues::Constant(1, 3, 1.0)},
  };
  auto results = RunRegretAdditiveAll(g);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].implemented);
  EXPECT_FALSE(results[1].implemented);
  RegretLedger ledger = SumLedgers(results);
  EXPECT_DOUBLE_EQ(ledger.total_cost, 5.0);
}

TEST(RegretSubstTest, CapturedUsersStopAccruingRegret) {
  // Two substitutable opts, one user wanting both. Once opt 0 triggers and
  // captures her, opt 1 must never trigger from her later value.
  SubstOnlineGame g;
  g.num_slots = 8;
  g.costs = {20.0, 25.0};
  g.users = {{SlotValues::Constant(1, 8, 10.0), {0, 1}}};
  RegretSubstResult r = RunRegretSubst(g);
  EXPECT_EQ(r.implemented_at[0], 3);  // R(3) = 20.
  EXPECT_EQ(r.bought[0], 0);
  EXPECT_EQ(r.implemented_at[1], 0) << "opt 1 must not trigger";
  EXPECT_DOUBLE_EQ(r.total_cost, 20.0);
  // Residual from t=4: 50.
  EXPECT_DOUBLE_EQ(r.total_value, 50.0);
}

TEST(RegretSubstTest, UncapturedUsersKeepAccruing) {
  // User 0 wants only opt 0; user 1 wants only opt 1. Both trigger
  // independently.
  SubstOnlineGame g;
  g.num_slots = 6;
  g.costs = {20.0, 20.0};
  g.users = {
      {SlotValues::Constant(1, 6, 10.0), {0}},
      {SlotValues::Constant(1, 6, 5.0), {1}},
  };
  RegretSubstResult r = RunRegretSubst(g);
  EXPECT_EQ(r.implemented_at[0], 3);
  EXPECT_EQ(r.implemented_at[1], 5);
  EXPECT_EQ(r.bought[0], 0);
  EXPECT_EQ(r.bought[1], 1);
}

TEST(RegretSubstTest, NonBuyerRemainsEligibleForOtherOpts) {
  // User 1's residual at opt 0's trigger is below the chosen price, so she
  // is not captured and may later support/buy opt 1.
  SubstOnlineGame g;
  g.num_slots = 10;
  g.costs = {30.0, 8.0};
  g.users = {
      {SlotValues::Constant(1, 10, 10.0), {0}},   // Drives opt 0.
      {*SlotValues::Make(1, 10, {1, 1, 1, 1, 1, 1, 1, 1, 1, 1}), {1}},
  };
  RegretSubstResult r = RunRegretSubst(g);
  ASSERT_GT(r.implemented_at[0], 0);
  ASSERT_GT(r.implemented_at[1], 0);
  EXPECT_EQ(r.bought[1], 1);
}

TEST(RegretSubstTest, LedgerConsistency) {
  SubstOnlineGame g;
  g.num_slots = 6;
  g.costs = {15.0, 12.0};
  g.users = {
      {SlotValues::Constant(1, 6, 4.0), {0, 1}},
      {SlotValues::Constant(2, 6, 5.0), {0}},
      {SlotValues::Constant(1, 5, 3.0), {1}},
  };
  RegretSubstResult r = RunRegretSubst(g);
  double payments = 0.0;
  for (double p : r.payments) payments += p;
  EXPECT_NEAR(payments, r.total_payment, 1e-9);
  EXPECT_DOUBLE_EQ(r.TotalUtility(), r.total_value - r.total_cost);
  EXPECT_DOUBLE_EQ(r.CloudBalance(), r.total_payment - r.total_cost);
}

}  // namespace
}  // namespace optshare
