// System-level incentive acceptance: StrategyHarness drives a real
// MarketplaceServer over the wire for three periods (so periods 2+ carry
// funded structures) and measures what each attack actually buys in
// realized utility. The paper mechanism ("addon") must keep every attack's
// gain at ~zero while recovering cost exactly; the naive online baseline
// must be measurably exploitable by the free-rider under the same seeds —
// that contrast, reproduced end-to-end rather than on hand-built games, is
// the acceptance criterion of the strategy lab. All draws are seeded and
// the server schedules deterministically, so outcomes are bit-identical
// run to run, which the determinism case pins at the report-byte level.
#include "strategy/harness.h"

#include <gtest/gtest.h>

#include <string>

#include "service/protocol.h"
#include "strategy/player.h"
#include "strategy/trace.h"

namespace optshare::strategy {
namespace {

constexpr double kEpsilon = 1e-6;

/// The standard lab bench: telemetry preset background over three periods,
/// one strategist modeled on the background class (the same scenario
/// bench/strategy_sweep.cc pins in the perf gate).
StrategyOptions LabOptions(const std::string& mechanism) {
  Result<JsonValue> preset = PresetConfigDocument("telemetry", 6, 12);
  EXPECT_TRUE(preset.ok());
  Result<TraceConfig> config = TraceConfigFromJson(*preset);
  EXPECT_TRUE(config.ok());
  StrategyOptions options;
  options.background = std::move(*config);
  options.background.name = "incentive-lab";
  options.background.periods = 3;
  options.background.mechanism = mechanism;

  simdb::Workload::Entry entry;
  entry.frequency = 1.0;
  entry.query.table = "telemetry";
  entry.query.aggregate = true;
  entry.query.predicates = {{"device", 2e-7}};
  options.strategist.workload.entries.push_back(std::move(entry));
  options.strategist.executions_per_slot = 150.0;
  options.strategist.start = 1;
  options.strategist.end = options.background.slots_per_period;
  options.num_workers = 2;
  return options;
}

Result<AttackOutcome> RunAttack(const std::string& mechanism,
                                const std::string& spec) {
  Result<StrategyHarness> harness = StrategyHarness::Make(LabOptions(mechanism));
  if (!harness.ok()) return harness.status();
  Result<std::unique_ptr<StrategyPlayer>> player = MakePlayer(spec);
  if (!player.ok()) return player.status();
  return harness->Run(**player);
}

TEST(StrategyIncentivesTest, TruthfulMechanismResistsEveryAttack) {
  for (const std::string& spec : DefaultAttackSpecs()) {
    Result<AttackOutcome> outcome = RunAttack("addon", spec);
    ASSERT_TRUE(outcome.ok()) << spec << ": " << outcome.status().ToString();
    EXPECT_EQ(outcome->mechanism, "addon");
    EXPECT_EQ(outcome->periods, 3);
    // No attack buys more than epsilon over truth-telling.
    EXPECT_LE(outcome->gain, kEpsilon) << spec;
    // The cost-sharing mechanism recovers structure cost exactly.
    EXPECT_LE(outcome->cost_recovery_error, 1e-9) << spec;
    EXPECT_GE(outcome->regret, 0.0) << spec;
  }
}

TEST(StrategyIncentivesTest, NaiveBaselinePaysTheFreeRider) {
  Result<AttackOutcome> outcome = RunAttack("naive_online", "freeride");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Under the naive baseline the free-rider declines to fund, still gets
  // serviced from structures the others paid for, and pockets her dodged
  // payments: a measurably positive gain under the very seeds where the
  // addon mechanism concedes nothing.
  EXPECT_GT(outcome->gain, 1.0);
  EXPECT_GT(outcome->strategic_utility, outcome->truthful_utility);
}

TEST(StrategyIncentivesTest, StructuresCarryAcrossPeriods) {
  Result<AttackOutcome> outcome = RunAttack("addon", "freeride");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->truthful_report_lines.size(), 3u);
  // Multi-period economics are real: later periods reuse structures built
  // earlier (paper §6 carry-over), visible in the period reports.
  bool carried = false;
  for (size_t p = 1; p < outcome->truthful_report_lines.size(); ++p) {
    Result<JsonValue> parsed =
        JsonValue::Parse(outcome->truthful_report_lines[p]);
    ASSERT_TRUE(parsed.ok());
    Result<service::PeriodReport> report =
        service::protocol::PeriodReportFromJson(*parsed);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    for (const auto& structure : report->structures) {
      carried |= structure.carried_over;
    }
  }
  EXPECT_TRUE(carried);
}

TEST(StrategyIncentivesTest, IdenticalOptionsReproduceIdenticalReports) {
  Result<StrategyHarness> first = StrategyHarness::Make(LabOptions("addon"));
  Result<StrategyHarness> second = StrategyHarness::Make(LabOptions("addon"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  Result<std::unique_ptr<StrategyPlayer>> player = MakePlayer("sybil:3");
  ASSERT_TRUE(player.ok());
  Result<AttackOutcome> a = first->Run(**player);
  Result<AttackOutcome> b = second->Run(**player);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  // Bit-identical: both the truthful and the attacked world reproduce
  // their report bytes, and therefore every derived measurement.
  EXPECT_EQ(a->truthful_report_lines, b->truthful_report_lines);
  EXPECT_EQ(a->strategic_report_lines, b->strategic_report_lines);
  EXPECT_EQ(a->gain, b->gain);
  EXPECT_EQ(a->regret, b->regret);
}

}  // namespace
}  // namespace optshare::strategy
