// Streaming/batch parity for the PricingSession API: a session fed the
// event stream of a tenant set must produce payments, ledger, and
// built-structure set bit-identical to the legacy batch RunPeriod — whose
// pre-redesign implementation is retained below as the differential
// reference — plus the session-only behaviors the batch API could not
// express (mid-period arrival, early departure, idle periods) and the
// ServiceConfig::Validate rejection paths.
#include "service/pricing_session.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/baseline_mechanisms.h"
#include "common/rng.h"
#include "core/accounting.h"
#include "core/mechanism.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

/// The pre-redesign batch implementation of one billing period, verbatim:
/// advisor, one materialized AddOn game per proposal, AccountResult ledger.
/// The streaming session must reproduce it bit for bit when every tenant
/// is submitted before the first slot.
Result<PeriodReport> LegacyRunPeriod(const simdb::Catalog& catalog,
                                     const ServiceConfig& config,
                                     const std::vector<simdb::SimUser>& tenants,
                                     std::vector<std::string>* built_names,
                                     int period) {
  if (tenants.empty()) {
    return Status::InvalidArgument("a period needs at least one tenant");
  }
  RegisterBaselineMechanisms();
  Result<std::unique_ptr<Mechanism>> mechanism_r =
      ResolveMechanism(config.mechanism, GameKind::kAdditiveOnline);
  if (!mechanism_r.ok()) return mechanism_r.status();
  const Mechanism& mechanism = **mechanism_r;
  for (const auto& t : tenants) {
    if (t.start < 1 || t.end < t.start || t.end > config.slots_per_period) {
      return Status::InvalidArgument(
          "tenant interval outside the period's slots");
    }
  }

  simdb::CostModel model(&catalog);
  simdb::PricingModel pricing(config.pricing);
  Result<std::vector<simdb::Proposal>> proposals_r =
      simdb::ProposeOptimizations(catalog, model, pricing, tenants,
                                  config.advisor);
  if (!proposals_r.ok()) return proposals_r.status();

  PeriodReport report;
  report.period = period;

  std::vector<std::string> next_built;
  Accounting ledger;
  ledger.user_value.assign(tenants.size(), 0.0);
  ledger.user_payment.assign(tenants.size(), 0.0);

  for (const auto& proposal : *proposals_r) {
    StructureOutcome outcome;
    outcome.name = proposal.spec.DisplayName();
    outcome.num_candidates = proposal.beneficiaries.size();
    outcome.carried_over =
        std::find(built_names->begin(), built_names->end(), outcome.name) !=
        built_names->end();
    outcome.cost = outcome.carried_over
                       ? std::max(proposal.cost * config.maintenance_fraction,
                                  1e-12)
                       : proposal.cost;

    AdditiveOnlineGame game;
    game.num_slots = config.slots_per_period;
    game.cost = outcome.cost;
    for (size_t i = 0; i < tenants.size(); ++i) {
      const double per_slot =
          proposal.user_savings[i] /
          static_cast<double>(tenants[i].end - tenants[i].start + 1);
      game.users.push_back(
          SlotValues::Constant(tenants[i].start, tenants[i].end, per_slot));
    }
    Status st = game.Validate();
    if (!st.ok()) return st;

    Result<MechanismResult> result_r = mechanism.Run(GameView(game));
    if (!result_r.ok()) return result_r.status();
    const MechanismResult& result = *result_r;
    const Accounting acc = AccountResult(GameView(game), result);
    outcome.active = result.implemented;
    if (result.implemented) {
      int subscribers = 0;
      for (double p : result.payments) subscribers += p > 0.0 ? 1 : 0;
      outcome.num_subscribers = subscribers;
      next_built.push_back(outcome.name);
      ledger.total_cost += acc.total_cost;
      for (size_t i = 0; i < tenants.size(); ++i) {
        ledger.user_value[i] += acc.user_value[i];
        ledger.user_payment[i] += acc.user_payment[i];
      }
    }
    report.structures.push_back(std::move(outcome));
  }

  *built_names = std::move(next_built);
  report.ledger = std::move(ledger);
  return report;
}

void ExpectSameReport(const PeriodReport& legacy, const PeriodReport& got) {
  EXPECT_EQ(legacy.period, got.period);
  ASSERT_EQ(legacy.structures.size(), got.structures.size());
  for (size_t s = 0; s < legacy.structures.size(); ++s) {
    const StructureOutcome& a = legacy.structures[s];
    const StructureOutcome& b = got.structures[s];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.cost, b.cost) << a.name;
    EXPECT_EQ(a.active, b.active) << a.name;
    EXPECT_EQ(a.carried_over, b.carried_over) << a.name;
    EXPECT_EQ(a.num_candidates, b.num_candidates) << a.name;
    EXPECT_EQ(a.num_subscribers, b.num_subscribers) << a.name;
  }
  EXPECT_EQ(legacy.ledger.total_cost, got.ledger.total_cost);
  ASSERT_EQ(legacy.ledger.user_value.size(), got.ledger.user_value.size());
  for (size_t i = 0; i < legacy.ledger.user_value.size(); ++i) {
    EXPECT_EQ(legacy.ledger.user_value[i], got.ledger.user_value[i])
        << "value of tenant " << i;
    EXPECT_EQ(legacy.ledger.user_payment[i], got.ledger.user_payment[i])
        << "payment of tenant " << i;
  }
}

class PricingSessionParityTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PricingSessionParityTest, SessionBitIdenticalToLegacyRunPeriod) {
  const std::string mechanism = GetParam();
  auto scenario = simdb::TelemetryScenario(6, 12);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.mechanism = mechanism;

  Rng rng(99);
  std::vector<std::string> legacy_built;
  std::vector<std::string> session_built;
  for (int trial = 0; trial < 6; ++trial) {
    const std::vector<simdb::SimUser> tenants =
        simdb::JitterTenants(scenario->tenants, config.slots_per_period, rng);

    std::vector<std::string> legacy_before = legacy_built;
    Result<PeriodReport> legacy =
        LegacyRunPeriod(scenario->catalog, config, tenants, &legacy_built,
                        trial + 1);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

    Result<PricingSession> session = PricingSession::Open(
        &scenario->catalog, config, session_built, trial + 1);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE(session->Submit(tenants).ok());
    for (int slot = 0; slot < config.slots_per_period; ++slot) {
      ASSERT_TRUE(session->AdvanceSlot().ok());
    }
    Result<PeriodReport> report = session->Close();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    session_built = session->built_structures();

    ExpectSameReport(*legacy, *report);
    EXPECT_EQ(legacy_built, session_built) << "built set after trial "
                                           << trial;
  }
}

// "addon" exercises the native slot-incremental path, "naive_online" and
// "regret" the buffering adapter.
INSTANTIATE_TEST_SUITE_P(Mechanisms, PricingSessionParityTest,
                         ::testing::Values("addon", "naive_online", "regret"));

TEST(PricingSessionParity, CloudServiceAdapterMatchesLegacyAcrossPeriods) {
  auto scenario = simdb::ClickstreamScenario(6, 12);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;

  CloudService service(scenario->catalog, config);
  std::vector<std::string> legacy_built;
  const double drift[3] = {1.0, 1.7, 0.4};
  for (int period = 0; period < 3; ++period) {
    std::vector<simdb::SimUser> tenants = scenario->tenants;
    for (auto& t : tenants) t.executions_per_slot *= drift[period];

    Result<PeriodReport> legacy = LegacyRunPeriod(
        scenario->catalog, config, tenants, &legacy_built, period + 1);
    ASSERT_TRUE(legacy.ok());
    Result<PeriodReport> got = service.RunPeriod(tenants);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameReport(*legacy, *got);
    EXPECT_EQ(legacy_built, service.built_structures());
  }
}

TEST(PricingSessionStreaming, MidPeriodArrivalJoinsRunningGames) {
  auto scenario = simdb::TelemetryScenario(5, 12);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;

  Result<PricingSession> session =
      PricingSession::Open(&scenario->catalog, config);
  ASSERT_TRUE(session.ok());

  // Four tenants open the period; the fifth signs up after slot 6.
  simdb::SimUser late = scenario->tenants.back();
  scenario->tenants.pop_back();
  ASSERT_TRUE(session->Submit(scenario->tenants).ok());
  for (int slot = 0; slot < 6; ++slot) {
    ASSERT_TRUE(session->AdvanceSlot().ok());
  }
  late.start = 7;
  late.end = 12;
  Result<UserId> id = session->Submit(late);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 4);

  // Retroactive arrivals are rejected.
  simdb::SimUser stale = late;
  stale.start = 3;
  EXPECT_FALSE(session->Submit(stale).ok());

  for (int slot = 6; slot < 12; ++slot) {
    ASSERT_TRUE(session->AdvanceSlot().ok());
  }
  Result<PeriodReport> report = session->Close();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->ledger.user_value.size(), 5u);
  EXPECT_GT(report->ActiveStructures(), 0);
  // AddOn keeps cost recovery even with the latecomer.
  EXPECT_TRUE(report->ledger.CostRecovered());
  // The latecomer derived value and was charged.
  EXPECT_GT(report->ledger.user_value[4], 0.0);
  EXPECT_GT(report->ledger.user_payment[4], 0.0);
}

TEST(PricingSessionStreaming, EarlyDepartureStopsValueAndCharges) {
  auto scenario = simdb::TelemetryScenario(5, 12);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;

  Result<PricingSession> session =
      PricingSession::Open(&scenario->catalog, config);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Submit(scenario->tenants).ok());
  for (int slot = 0; slot < 4; ++slot) {
    ASSERT_TRUE(session->AdvanceSlot().ok());
  }
  ASSERT_TRUE(session->Depart(0).ok());
  EXPECT_FALSE(session->Depart(99).ok());
  for (int slot = 4; slot < 12; ++slot) {
    ASSERT_TRUE(session->AdvanceSlot().ok());
  }
  Result<PeriodReport> report = session->Close();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ledger.CostRecovered());
}

TEST(PricingSessionStreaming, DepartBeforeIntegrationDoesNotWedge) {
  auto scenario = simdb::TelemetryScenario(4, 12);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;

  Result<PricingSession> session =
      PricingSession::Open(&scenario->catalog, config);
  ASSERT_TRUE(session.ok());
  simdb::SimUser brief = scenario->tenants.back();
  scenario->tenants.pop_back();
  ASSERT_TRUE(session->Submit(scenario->tenants).ok());
  ASSERT_TRUE(session->AdvanceSlot().ok());

  // A tenant submitted after slot 1 departs before the advisor ever
  // integrated her: the session must stay consistent (regression — this
  // used to enqueue her departure ahead of her arrival and wedge every
  // subsequent AdvanceSlot).
  brief.start = 2;
  brief.end = 12;
  Result<UserId> id = session->Submit(brief);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(session->Depart(*id).ok());
  for (int slot = 1; slot < 12; ++slot) {
    ASSERT_TRUE(session->AdvanceSlot().ok()) << "slot " << slot + 1;
  }
  Result<PeriodReport> report = session->Close();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->ledger.user_value.size(), 4u);
  EXPECT_TRUE(report->ledger.CostRecovered());
}

TEST(PricingSessionLifecycle, EmptyPeriodClosesCleanly) {
  auto scenario = simdb::TelemetryScenario(3, 12);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;

  Result<PricingSession> session =
      PricingSession::Open(&scenario->catalog, config);
  ASSERT_TRUE(session.ok());
  for (int slot = 0; slot < 12; ++slot) {
    ASSERT_TRUE(session->AdvanceSlot().ok());
  }
  Result<PeriodReport> report = session->Close();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->structures.empty());
  EXPECT_TRUE(report->ledger.user_value.empty());

  // The batch adapter keeps the legacy "at least one tenant" contract.
  CloudService service(std::move(scenario->catalog), config);
  EXPECT_FALSE(service.RunPeriod({}).ok());
}

TEST(PricingSessionLifecycle, SlotDiscipline) {
  auto scenario = simdb::TelemetryScenario(3, 4);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = 4;

  Result<PricingSession> session =
      PricingSession::Open(&scenario->catalog, config);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Submit(scenario->tenants).ok());
  // Close before the period completes.
  EXPECT_FALSE(session->Close().ok());
  for (int slot = 0; slot < 4; ++slot) {
    ASSERT_TRUE(session->AdvanceSlot().ok());
  }
  // Advance past the period.
  EXPECT_FALSE(session->AdvanceSlot().ok());
  ASSERT_TRUE(session->Close().ok());
  // Everything is rejected after Close.
  EXPECT_FALSE(session->AdvanceSlot().ok());
  EXPECT_FALSE(session->Close().ok());
  EXPECT_FALSE(session->Submit(scenario->tenants.front()).ok());
}

TEST(ServiceConfigValidation, RejectsBadConfigs) {
  auto scenario = simdb::TelemetryScenario(3, 12);
  ASSERT_TRUE(scenario.ok());

  ServiceConfig bad_slots;
  bad_slots.slots_per_period = 0;
  EXPECT_FALSE(bad_slots.Validate().ok());
  EXPECT_FALSE(PricingSession::Open(&scenario->catalog, bad_slots).ok());

  ServiceConfig bad_maint;
  bad_maint.maintenance_fraction = 1.5;
  EXPECT_FALSE(bad_maint.Validate().ok());
  EXPECT_FALSE(PricingSession::Open(&scenario->catalog, bad_maint).ok());
  bad_maint.maintenance_fraction = -0.25;
  EXPECT_FALSE(PricingSession::Open(&scenario->catalog, bad_maint).ok());

  ServiceConfig no_mech;
  no_mech.mechanism.clear();
  EXPECT_FALSE(no_mech.Validate().ok());
  EXPECT_FALSE(PricingSession::Open(&scenario->catalog, no_mech).ok());

  // Unknown mechanism names fail at Open, listing what is registered.
  ServiceConfig unknown;
  unknown.mechanism = "definitely_not_registered";
  Result<PricingSession> open =
      PricingSession::Open(&scenario->catalog, unknown);
  ASSERT_FALSE(open.ok());
  EXPECT_NE(open.status().message().find("registered mechanisms:"),
            std::string::npos);

  // The CloudService constructor validates too; its first RunPeriod
  // surfaces the rejection.
  CloudService service(std::move(scenario->catalog), bad_slots);
  Result<PeriodReport> report = service.RunPeriod(scenario->tenants);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);

  // A valid config still passes.
  EXPECT_TRUE(ServiceConfig{}.Validate().ok());
}

}  // namespace
}  // namespace optshare::service
