// Tests for the strategy-analysis helpers (deviation grids and utility
// probes) themselves — the machinery the truthfulness suites rely on.
#include "core/strategy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace optshare {
namespace {

TEST(CandidateDeviationBidsTest, ContainsCriticalPoints) {
  const auto grid = CandidateDeviationBids({60.0}, {25.0, 40.0}, 3);
  // Always includes zero.
  EXPECT_NE(std::find(grid.begin(), grid.end(), 0.0), grid.end());
  // Includes every even split of the cost.
  for (double share : {60.0, 30.0, 20.0}) {
    EXPECT_NE(std::find(grid.begin(), grid.end(), share), grid.end());
  }
  // Includes the user values.
  for (double v : {25.0, 40.0}) {
    EXPECT_NE(std::find(grid.begin(), grid.end(), v), grid.end());
  }
}

TEST(CandidateDeviationBidsTest, SortedAndDeduplicated) {
  const auto grid = CandidateDeviationBids({10.0, 10.0}, {5.0, 5.0}, 2);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  EXPECT_EQ(std::adjacent_find(grid.begin(), grid.end()), grid.end());
}

TEST(CandidateDeviationBidsTest, PerturbationsBracketEachPoint) {
  const auto grid = CandidateDeviationBids({60.0}, {}, 1);
  // 60 should come with 60 +/- 1e-6 neighbours, probing both sides of the
  // threshold.
  EXPECT_NE(std::find(grid.begin(), grid.end(), 60.0), grid.end());
  EXPECT_NE(std::find(grid.begin(), grid.end(), 60.0 + 1e-6), grid.end());
  EXPECT_NE(std::find(grid.begin(), grid.end(), 60.0 - 1e-6), grid.end());
}

TEST(CandidateDeviationBidsTest, NoNegativeCandidates) {
  const auto grid = CandidateDeviationBids({1e-7}, {0.0}, 4);
  for (double g : grid) EXPECT_GE(g, 0.0);
}

TEST(StrategyHelpersTest, AddOffUtilityMatchesManualComputation) {
  AdditiveOfflineGame g;
  g.costs = {90.0};
  g.bids = {{40.0}, {30.0}, {35.0}};
  // Truthful: all serviced at 30; user 0's utility = 40 - 30 = 10.
  EXPECT_DOUBLE_EQ(AddOffUtilityUnderBid(g, 0, {40.0}), 10.0);
  // Bidding 0 drops her out entirely: utility 0.
  EXPECT_DOUBLE_EQ(AddOffUtilityUnderBid(g, 0, {0.0}), 0.0);
  // Overbidding changes nothing (same serviced set, same share).
  EXPECT_DOUBLE_EQ(AddOffUtilityUnderBid(g, 0, {500.0}), 10.0);
}

TEST(StrategyHelpersTest, AddOnUtilityAccountsTrueValuesOnly) {
  AdditiveOnlineGame g;
  g.num_slots = 2;
  g.cost = 50.0;
  g.users = {*SlotValues::Make(1, 2, {30.0, 30.0})};
  // Truthful: residual 60 >= 50 at t=1, pays 50 at t=2; value 60.
  EXPECT_DOUBLE_EQ(
      AddOnUtilityUnderBid(g, 0, *SlotValues::Make(1, 2, {30.0, 30.0})),
      10.0);
  // Declaring a one-slot interval realizes only slot 1's true value but
  // still pays the full cost alone: 30 - 50 = -20.
  EXPECT_DOUBLE_EQ(AddOnUtilityUnderBid(g, 0, SlotValues::Single(1, 60.0)),
                   -20.0);
}

TEST(StrategyHelpersTest, SubstOffUtilityReflectsTrueSubstituteSet) {
  SubstOfflineGame g;
  g.costs = {50.0, 50.0};
  g.users = {{{0}, 60.0}, {{1}, 60.0}};
  // Truthful: each user funds her own optimization at 50.
  EXPECT_DOUBLE_EQ(SubstOffUtilityUnderBid(g, 0, {0}, 60.0), 10.0);
  // Declaring the *other* optimization gets her granted opt 1, which is
  // outside her true substitute set: she pays without realizing value.
  const double lied = SubstOffUtilityUnderBid(g, 0, {1}, 60.0);
  EXPECT_LT(lied, 10.0);
  EXPECT_LE(lied, 0.0);
}

}  // namespace
}  // namespace optshare
