// common/net.h unit surface: ParseHostPort's edge cases (the --listen /
// connect / cluster-placement argument form) and the deadline-bounded
// ConnectTcp + NetClient retry policy the cluster router depends on.
#include <gtest/gtest.h>

#include <chrono>

#include "common/net.h"
#include "service/marketplace_server.h"
#include "service/net_client.h"
#include "service/net_server.h"

namespace optshare::net {
namespace {

TEST(ParseHostPortTest, SplitsHostAndPort) {
  auto parsed = ParseHostPort("example.com:8080");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->first, "example.com");
  EXPECT_EQ(parsed->second, 8080);
}

TEST(ParseHostPortTest, EmptyHostMeansAllInterfacesOrLoopback) {
  auto parsed = ParseHostPort(":7500");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->first, "");
  EXPECT_EQ(parsed->second, 7500);
}

TEST(ParseHostPortTest, PortZeroIsValidEphemeralRequest) {
  auto parsed = ParseHostPort("127.0.0.1:0");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->second, 0);
}

TEST(ParseHostPortTest, RejectsPortAboveRange) {
  auto parsed = ParseHostPort("host:65536");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // The boundary itself is fine.
  EXPECT_TRUE(ParseHostPort("host:65535").ok());
}

TEST(ParseHostPortTest, RejectsJunkPortSuffix) {
  EXPECT_FALSE(ParseHostPort("host:80x").ok());
  EXPECT_FALSE(ParseHostPort("host:8 0").ok());
  EXPECT_FALSE(ParseHostPort("host:-1").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
}

TEST(ParseHostPortTest, RejectsMissingColon) {
  auto parsed = ParseHostPort("8080");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConnectTimeoutTest, ReturnsPromptlyAgainstABlackholeAddress) {
  // 192.0.2.0/24 (TEST-NET-1) is reserved: on a real network the connect
  // can neither succeed nor be refused — the dead-but-routable node case
  // the deadline exists for. Some sandboxes intercept outbound connects
  // and accept instead, so the assertion is promptness, not failure: the
  // call must come back well under the OS connect default (minutes).
  const auto start = std::chrono::steady_clock::now();
  Result<Socket> socket = ConnectTcp("192.0.2.1", 9, /*timeout_ms=*/200);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(ConnectTimeoutTest, ConnectsToALiveListenerWithinDeadline) {
  Result<Socket> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  Result<uint16_t> port = BoundPort(*listener);
  ASSERT_TRUE(port.ok());
  Result<Socket> socket = ConnectTcp("127.0.0.1", *port, /*timeout_ms=*/2000);
  EXPECT_TRUE(socket.ok()) << socket.status().ToString();
}

TEST(ConnectTimeoutTest, NetClientRetriesThenConnects) {
  // Against a dead port, the bounded retry policy fails after its attempts
  // instead of hanging.
  {
    Result<Socket> parked = ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(parked.ok());
    Result<uint16_t> port = BoundPort(*parked);
    ASSERT_TRUE(port.ok());
    parked->Close();  // Nothing listens here now.
    service::NetClient::ConnectOptions options;
    options.timeout_ms = 200;
    options.retries = 2;
    options.backoff_ms = 1;
    auto client = service::NetClient::Connect("127.0.0.1", *port, options);
    EXPECT_FALSE(client.ok());
  }
  // Against a live server, the same policy connects and serves.
  service::ServerOptions server_options;
  server_options.num_workers = 1;
  service::MarketplaceServer server(std::move(server_options));
  service::NetServer net(&server, {});
  ASSERT_TRUE(net.Start().ok());
  service::NetClient::ConnectOptions options;
  options.timeout_ms = 2000;
  options.retries = 1;
  auto client = service::NetClient::Connect("127.0.0.1", net.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  service::protocol::Request request;
  request.op = service::protocol::RequestOp::kListMechanisms;
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok());
  net.Stop();
}

}  // namespace
}  // namespace optshare::net
