// common/net.h unit surface: ParseHostPort's edge cases (the --listen /
// connect / cluster-placement argument form) and the deadline-bounded
// ConnectTcp + NetClient retry policy the cluster router depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/net.h"
#include "service/marketplace_server.h"
#include "service/net_client.h"
#include "service/net_server.h"

namespace optshare::net {
namespace {

TEST(ParseHostPortTest, SplitsHostAndPort) {
  auto parsed = ParseHostPort("example.com:8080");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->first, "example.com");
  EXPECT_EQ(parsed->second, 8080);
}

TEST(ParseHostPortTest, EmptyHostMeansAllInterfacesOrLoopback) {
  auto parsed = ParseHostPort(":7500");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->first, "");
  EXPECT_EQ(parsed->second, 7500);
}

TEST(ParseHostPortTest, PortZeroIsValidEphemeralRequest) {
  auto parsed = ParseHostPort("127.0.0.1:0");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->second, 0);
}

TEST(ParseHostPortTest, RejectsPortAboveRange) {
  auto parsed = ParseHostPort("host:65536");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // The boundary itself is fine.
  EXPECT_TRUE(ParseHostPort("host:65535").ok());
}

TEST(ParseHostPortTest, RejectsJunkPortSuffix) {
  EXPECT_FALSE(ParseHostPort("host:80x").ok());
  EXPECT_FALSE(ParseHostPort("host:8 0").ok());
  EXPECT_FALSE(ParseHostPort("host:-1").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
}

TEST(ParseHostPortTest, RejectsMissingColon) {
  auto parsed = ParseHostPort("8080");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConnectTimeoutTest, ReturnsPromptlyAgainstABlackholeAddress) {
  // 192.0.2.0/24 (TEST-NET-1) is reserved: on a real network the connect
  // can neither succeed nor be refused — the dead-but-routable node case
  // the deadline exists for. Some sandboxes intercept outbound connects
  // and accept instead, so the assertion is promptness, not failure: the
  // call must come back well under the OS connect default (minutes).
  const auto start = std::chrono::steady_clock::now();
  Result<Socket> socket = ConnectTcp("192.0.2.1", 9, /*timeout_ms=*/200);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(ConnectTimeoutTest, ConnectsToALiveListenerWithinDeadline) {
  Result<Socket> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  Result<uint16_t> port = BoundPort(*listener);
  ASSERT_TRUE(port.ok());
  Result<Socket> socket = ConnectTcp("127.0.0.1", *port, /*timeout_ms=*/2000);
  EXPECT_TRUE(socket.ok()) << socket.status().ToString();
}

TEST(ConnectTimeoutTest, NetClientRetriesThenConnects) {
  // Against a dead port, the bounded retry policy fails after its attempts
  // instead of hanging.
  {
    Result<Socket> parked = ListenTcp("127.0.0.1", 0);
    ASSERT_TRUE(parked.ok());
    Result<uint16_t> port = BoundPort(*parked);
    ASSERT_TRUE(port.ok());
    parked->Close();  // Nothing listens here now.
    service::NetClient::ConnectOptions options;
    options.timeout_ms = 200;
    options.retries = 2;
    options.backoff_ms = 1;
    auto client = service::NetClient::Connect("127.0.0.1", *port, options);
    EXPECT_FALSE(client.ok());
  }
  // Against a live server, the same policy connects and serves.
  service::ServerOptions server_options;
  server_options.num_workers = 1;
  service::MarketplaceServer server(std::move(server_options));
  service::NetServer net(&server, {});
  ASSERT_TRUE(net.Start().ok());
  service::NetClient::ConnectOptions options;
  options.timeout_ms = 2000;
  options.retries = 1;
  auto client = service::NetClient::Connect("127.0.0.1", net.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  service::protocol::Request request;
  request.op = service::protocol::RequestOp::kListMechanisms;
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok());
  net.Stop();
}

// -- Backoff schedule (pure function, no sockets) ---------------------------

TEST(BackoffTest, DoublesPerAttemptThenCapsAtMaxBackoff) {
  service::NetClient::ConnectOptions options;
  options.backoff_ms = 50;
  options.max_backoff_ms = 300;
  int previous = 0;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const int ms = service::NetClient::BackoffMs(options, attempt);
    // Capped exponential core, plus at most 25% jitter on top.
    const int core = std::min(50 << (attempt - 1), 300);
    EXPECT_GE(ms, core) << "attempt " << attempt;
    EXPECT_LE(ms, core + core / 4 + 1) << "attempt " << attempt;
    // The pre-cap schedule never shrinks as attempts mount.
    EXPECT_GE(ms + core / 4 + 1, previous) << "attempt " << attempt;
    previous = ms;
  }
  // Deep attempts sit at the cap (±jitter), not at 50 * 2^19 ≈ half a day.
  const int deep = service::NetClient::BackoffMs(options, 20);
  EXPECT_GE(deep, 300);
  EXPECT_LE(deep, 300 + 75 + 1);
}

TEST(BackoffTest, NoCapMeansBaseOnly) {
  service::NetClient::ConnectOptions options;
  options.backoff_ms = 40;
  options.max_backoff_ms = 0;  // "no cap beyond backoff_ms itself".
  for (int attempt : {1, 5, 30}) {
    const int ms = service::NetClient::BackoffMs(options, attempt);
    EXPECT_GE(ms, 40) << "attempt " << attempt;
    EXPECT_LE(ms, 40 + 10 + 1) << "attempt " << attempt;
  }
}

TEST(BackoffTest, JitterIsDeterministicPerSeedAndSpreadsAcrossSeeds) {
  service::NetClient::ConnectOptions options;
  options.backoff_ms = 100;
  options.max_backoff_ms = 100;
  options.jitter_seed = 42;
  // Same (seed, attempt) → same sleep: a failure's schedule replays.
  EXPECT_EQ(service::NetClient::BackoffMs(options, 3),
            service::NetClient::BackoffMs(options, 3));
  // Distinct seeds desynchronize callers retrying in lockstep: across a
  // few seeds, at least two land on different sleeps for some attempt.
  bool spread = false;
  for (int attempt = 1; attempt <= 4 && !spread; ++attempt) {
    service::NetClient::ConnectOptions other = options;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      other.jitter_seed = seed;
      if (service::NetClient::BackoffMs(other, attempt) !=
          service::NetClient::BackoffMs(options, attempt)) {
        spread = true;
        break;
      }
    }
  }
  EXPECT_TRUE(spread);
}

// -- LineBuffer framing under the cap ---------------------------------------

TEST(LineBufferTest, OverCapLineReportsOnceAndFramingRealigns) {
  LineBuffer lines(8);
  std::string line;
  // An over-cap line streaming in across reads: one kTooLong, then the
  // remainder is eaten silently until its newline.
  lines.Append("0123456789", 10);
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kTooLong);
  lines.Append("abcdef", 6);
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kNeedMore);
  // The newline ends the discard; the next line arrives intact, even
  // packed into the same read.
  lines.Append("\nok\n", 4);
  ASSERT_EQ(lines.NextLine(&line), LineBuffer::Next::kLine);
  EXPECT_EQ(line, "ok");
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kNeedMore);
  // Buffered memory stayed bounded through the flood.
  EXPECT_LE(lines.buffered(), size_t{8} + 16);
}

TEST(LineBufferTest, CapZeroIsUnlimited) {
  LineBuffer lines(0);
  std::string big(1 << 16, 'x');
  lines.Append(big.data(), big.size());
  lines.Append("\n", 1);
  std::string line;
  ASSERT_EQ(lines.NextLine(&line), LineBuffer::Next::kLine);
  EXPECT_EQ(line, big);
}

}  // namespace
}  // namespace optshare::net
