// Tests for the generalized Moulin mechanism family: the egalitarian
// instance must coincide with Mechanism 1, weighted sharing must stay
// truthful (cross-monotonicity), and a deliberately broken method must be
// caught by the cross-monotonicity checker.
#include "core/moulin.h"

#include <gtest/gtest.h>

#include "common/money.h"
#include "common/rng.h"

namespace optshare {
namespace {

TEST(EgalitarianTest, SharesSplitEvenly) {
  EgalitarianSharing method(90.0);
  const auto shares = method.Shares({true, false, true, true});
  EXPECT_DOUBLE_EQ(shares[0], 30.0);
  EXPECT_DOUBLE_EQ(shares[1], 0.0);
  EXPECT_DOUBLE_EQ(shares[2], 30.0);
  EXPECT_DOUBLE_EQ(shares[3], 30.0);
}

TEST(EgalitarianTest, MoulinEqualsShapleyOnRandomGames) {
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    const int m = 1 + static_cast<int>(rng.UniformInt(0, 9));
    std::vector<double> bids;
    for (int i = 0; i < m; ++i) bids.push_back(rng.Uniform(0.0, 1.5));
    const double cost = rng.Uniform(0.1, 4.0);

    const ShapleyResult direct = RunShapley(cost, bids);
    const ShapleyResult viaMoulin = RunMoulin(EgalitarianSharing(cost), bids);

    EXPECT_EQ(direct.implemented, viaMoulin.implemented);
    EXPECT_EQ(direct.serviced, viaMoulin.serviced);
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(direct.payments[static_cast<size_t>(i)],
                  viaMoulin.payments[static_cast<size_t>(i)], 1e-12);
    }
  }
}

TEST(WeightedTest, MakeValidatesInputs) {
  EXPECT_TRUE(WeightedSharing::Make(10.0, {1.0, 2.0}).ok());
  EXPECT_FALSE(WeightedSharing::Make(0.0, {1.0}).ok());
  EXPECT_FALSE(WeightedSharing::Make(10.0, {}).ok());
  EXPECT_FALSE(WeightedSharing::Make(10.0, {1.0, 0.0}).ok());
  EXPECT_FALSE(WeightedSharing::Make(10.0, {1.0, -2.0}).ok());
}

TEST(WeightedTest, SharesProportionalToWeights) {
  const WeightedSharing method = *WeightedSharing::Make(60.0, {1.0, 2.0, 3.0});
  const auto shares = method.Shares({true, true, true});
  EXPECT_DOUBLE_EQ(shares[0], 10.0);
  EXPECT_DOUBLE_EQ(shares[1], 20.0);
  EXPECT_DOUBLE_EQ(shares[2], 30.0);
  // After user 2 leaves, the cost re-splits 1:2.
  const auto smaller = method.Shares({true, true, false});
  EXPECT_DOUBLE_EQ(smaller[0], 20.0);
  EXPECT_DOUBLE_EQ(smaller[1], 40.0);
}

TEST(WeightedTest, MoulinWithWeightsIsBudgetBalanced) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = 2 + static_cast<int>(rng.UniformInt(0, 6));
    std::vector<double> weights, bids;
    for (int i = 0; i < m; ++i) {
      weights.push_back(rng.Uniform(0.1, 3.0));
      bids.push_back(rng.Uniform(0.0, 2.0));
    }
    const double cost = rng.Uniform(0.2, 4.0);
    const WeightedSharing method =
        *WeightedSharing::Make(cost, weights);
    const ShapleyResult r = RunMoulin(method, bids);
    if (r.implemented) {
      EXPECT_NEAR(r.TotalPayment(), cost, 1e-9);
      for (int i = 0; i < m; ++i) {
        if (r.serviced[static_cast<size_t>(i)]) {
          EXPECT_TRUE(MoneyLe(r.payments[static_cast<size_t>(i)],
                              bids[static_cast<size_t>(i)]));
        }
      }
    } else {
      EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
    }
  }
}

TEST(WeightedTest, MoulinWithWeightsIsTruthful) {
  // Cross-monotonic sharing => strategyproof: probe unilateral deviations.
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    const int m = 4;
    std::vector<double> weights, values;
    for (int i = 0; i < m; ++i) {
      weights.push_back(rng.Uniform(0.5, 2.0));
      values.push_back(rng.Uniform(0.0, 1.0));
    }
    const double cost = rng.Uniform(0.3, 2.5);
    const WeightedSharing method = *WeightedSharing::Make(cost, weights);

    const ShapleyResult truthful = RunMoulin(method, values);
    for (int i = 0; i < m; ++i) {
      const double truthful_utility =
          truthful.serviced[static_cast<size_t>(i)]
              ? values[static_cast<size_t>(i)] -
                    truthful.payments[static_cast<size_t>(i)]
              : 0.0;
      for (double bid : {0.0, values[static_cast<size_t>(i)] * 0.5,
                         values[static_cast<size_t>(i)] * 1.5, cost, 10.0}) {
        std::vector<double> bids = values;
        bids[static_cast<size_t>(i)] = bid;
        const ShapleyResult dev = RunMoulin(method, bids);
        const double dev_utility =
            dev.serviced[static_cast<size_t>(i)]
                ? values[static_cast<size_t>(i)] -
                      dev.payments[static_cast<size_t>(i)]
                : 0.0;
        EXPECT_LE(dev_utility, truthful_utility + 1e-9)
            << "trial " << trial << " user " << i << " bid " << bid;
      }
    }
  }
}

TEST(CrossMonotonicityTest, EgalitarianAndWeightedPass) {
  EXPECT_TRUE(IsCrossMonotonic(EgalitarianSharing(10.0), 6));
  EXPECT_TRUE(IsCrossMonotonic(
      *WeightedSharing::Make(10.0, {1.0, 5.0, 2.0, 0.5, 3.0, 1.0}), 6));
}

/// Deliberately non-cross-monotonic: every member pays C/|S|^2 except the
/// lowest-indexed one, who pays the remainder C - (|S|-1)C/|S|^2. That
/// remainder *falls* from 7C/9 (|S|=3) to 3C/4 (|S|=2) when another member
/// leaves, violating cross-monotonicity.
class BrokenSharing final : public CostSharingMethod {
 public:
  explicit BrokenSharing(double cost) : cost_(cost) {}
  std::vector<double> Shares(const std::vector<bool>& members) const override {
    int count = 0;
    int lowest = -1;
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i]) {
        ++count;
        if (lowest < 0) lowest = static_cast<int>(i);
      }
    }
    std::vector<double> shares(members.size(), 0.0);
    const double per_head =
        cost_ / (static_cast<double>(count) * static_cast<double>(count));
    double assigned = 0.0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i] && static_cast<int>(i) != lowest) {
        shares[i] = per_head;
        assigned += per_head;
      }
    }
    if (lowest >= 0) shares[static_cast<size_t>(lowest)] = cost_ - assigned;
    return shares;
  }
  double cost() const override { return cost_; }

 private:
  double cost_;
};

TEST(CrossMonotonicityTest, BrokenMethodIsDetected) {
  EXPECT_FALSE(IsCrossMonotonic(BrokenSharing(9.0), 4));
}

TEST(MoulinTest, InfiniteBidsPinUsers) {
  const WeightedSharing method = *WeightedSharing::Make(30.0, {1.0, 1.0, 4.0});
  const ShapleyResult r = RunMoulin(method, {kInfiniteBid, 0.0, kInfiniteBid});
  ASSERT_TRUE(r.implemented);
  EXPECT_TRUE(r.serviced[0]);
  EXPECT_FALSE(r.serviced[1]);
  EXPECT_TRUE(r.serviced[2]);
  EXPECT_DOUBLE_EQ(r.payments[0], 6.0);
  EXPECT_DOUBLE_EQ(r.payments[2], 24.0);
}

TEST(MoulinTest, EmptyBidsNotImplemented) {
  EXPECT_FALSE(RunMoulin(EgalitarianSharing(5.0), {}).implemented);
}

}  // namespace
}  // namespace optshare
