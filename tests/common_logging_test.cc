// Tests for the logging facility.
#include "common/logging.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, EmitBelowThresholdIsDropped) {
  SetLogLevel(LogLevel::kError);
  // Captures stderr around the emission.
  testing::internal::CaptureStderr();
  OPTSHARE_LOG(Info) << "invisible " << 42;
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EmitAtThresholdIsPrinted) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  OPTSHARE_LOG(Info) << "visible " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO] visible 42"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysPasses) {
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  OPTSHARE_LOG(Error) << "bad thing";
  EXPECT_NE(testing::internal::GetCapturedStderr().find("[ERROR] bad thing"),
            std::string::npos);
}

TEST_F(LoggingTest, StreamFormatsMixedTypes) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  OPTSHARE_LOG(Debug) << "cost=" << 2.5 << " users=" << 6 << " ok=" << true;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("cost=2.5 users=6 ok=1"), std::string::npos);
}

}  // namespace
}  // namespace optshare
