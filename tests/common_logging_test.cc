// Tests for the logging facility, including the OPTSHARE_LOG_LEVEL env
// filter and the mutex-guarded sink (concurrent emitters never interleave
// bytes of two lines).
#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

namespace optshare {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, EmitBelowThresholdIsDropped) {
  SetLogLevel(LogLevel::kError);
  // Captures stderr around the emission.
  testing::internal::CaptureStderr();
  OPTSHARE_LOG(Info) << "invisible " << 42;
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EmitAtThresholdIsPrinted) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  OPTSHARE_LOG(Info) << "visible " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO] visible 42"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysPasses) {
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  OPTSHARE_LOG(Error) << "bad thing";
  EXPECT_NE(testing::internal::GetCapturedStderr().find("[ERROR] bad thing"),
            std::string::npos);
}

TEST_F(LoggingTest, StreamFormatsMixedTypes) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  OPTSHARE_LOG(Debug) << "cost=" << 2.5 << " users=" << 6 << " ok=" << true;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("cost=2.5 users=6 ok=1"), std::string::npos);
}

TEST_F(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("1"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("2"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("loud").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
  EXPECT_FALSE(ParseLogLevel("4").has_value());
}

TEST_F(LoggingTest, EnvFilterAppliesOnReload) {
  ASSERT_EQ(setenv("OPTSHARE_LOG_LEVEL", "error", 1), 0);
  EXPECT_EQ(ReloadLogLevelFromEnv(), LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Unparsable values leave the threshold untouched.
  ASSERT_EQ(setenv("OPTSHARE_LOG_LEVEL", "shouting", 1), 0);
  EXPECT_FALSE(ReloadLogLevelFromEnv().has_value());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Unset leaves it untouched too.
  ASSERT_EQ(unsetenv("OPTSHARE_LOG_LEVEL"), 0);
  EXPECT_FALSE(ReloadLogLevelFromEnv().has_value());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // SetLogLevel still wins afterwards.
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, ConcurrentEmittersNeverInterleaveLines) {
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  testing::internal::CaptureStderr();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kLines; ++i) {
          OPTSHARE_LOG(Info) << "worker-" << t << "-line-" << i << "-end";
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const std::string out = testing::internal::GetCapturedStderr();
  // Every line arrived whole: correct count, and each parses as exactly
  // one "[INFO] worker-T-line-I-end".
  std::istringstream stream(out);
  std::string line;
  int count = 0;
  while (std::getline(stream, line)) {
    ++count;
    EXPECT_EQ(line.rfind("[INFO] worker-", 0), 0u) << line;
    EXPECT_EQ(line.find("-end"), line.size() - 4) << line;
    EXPECT_EQ(line.find("[INFO]", 1), std::string::npos) << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

}  // namespace
}  // namespace optshare
