// Crash-recovery differential suite: the PR's acceptance bar. A server
// killed at ANY request boundary — and a journal truncated at ANY record
// boundary — must recover (snapshot + journal replay) to a state whose
// subsequent PeriodReports are bit-identical to an uninterrupted run, for
// the native "addon" mechanism and the buffered baselines alike, across
// multiple periods with carried structures. Plus the v2 surface this rides
// on: v1 clients against a v2 server, snapshot/restore/shutdown ops,
// server_info, and the oversized-line cap.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/rng.h"
#include "service/marketplace_server.h"
#include "service/state_store.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

std::vector<simdb::SimUser> Jitter(std::vector<simdb::SimUser> tenants,
                                   int slots, uint64_t seed) {
  Rng rng(seed);
  return simdb::JitterTenants(std::move(tenants), slots, rng);
}

/// Runs `periods` full periods directly through PricingSession — the
/// reference every recovered run must match bit for bit.
std::vector<PeriodReport> DirectReports(
    const simdb::Catalog& catalog, const ServiceConfig& config,
    const std::vector<std::vector<simdb::SimUser>>& periods) {
  std::vector<PeriodReport> reports;
  std::vector<std::string> built;
  for (size_t p = 0; p < periods.size(); ++p) {
    Result<PricingSession> session = PricingSession::Open(
        &catalog, config, built, static_cast<int>(p) + 1);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_TRUE(session->Submit(periods[p]).ok());
    for (int slot = 0; slot < config.slots_per_period; ++slot) {
      EXPECT_TRUE(session->AdvanceSlot().ok());
    }
    Result<PeriodReport> report = session->Close();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    built = session->built_structures();
    reports.push_back(std::move(*report));
  }
  return reports;
}

/// The wire program for the same periods: 4 lines per period
/// (open/submit/advance/close), catalog spec on the first open.
std::vector<std::string> RecordRequestLines(
    const std::string& tenancy, const ServiceConfig& config,
    int scenario_tenants, int scenario_slots,
    const std::vector<std::vector<simdb::SimUser>>& periods) {
  std::vector<std::string> lines;
  for (size_t p = 0; p < periods.size(); ++p) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = tenancy;
    if (p == 0) {
      protocol::CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = scenario_tenants;
      catalog.scenario_slots = scenario_slots;
      open.catalog = catalog;
      open.config = config;
    }
    lines.push_back(protocol::ToJson(open).Dump());
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = tenancy;
    submit.tenants = periods[p];
    lines.push_back(protocol::ToJson(submit).Dump());
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = tenancy;
    advance.slots = config.slots_per_period;
    lines.push_back(protocol::ToJson(advance).Dump());
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = tenancy;
    lines.push_back(protocol::ToJson(close).Dump());
  }
  return lines;
}

/// Extracts close_period report payloads from response lines (every
/// response must be ok).
std::vector<PeriodReport> ReportsFromResponses(
    const std::vector<std::string>& response_lines) {
  std::vector<PeriodReport> reports;
  for (const std::string& line : response_lines) {
    Result<JsonValue> doc = JsonValue::Parse(line);
    EXPECT_TRUE(doc.ok()) << line;
    Result<Response> response = protocol::ResponseFromJson(*doc);
    EXPECT_TRUE(response.ok()) << line;
    EXPECT_TRUE(response->ok()) << response->status.ToString();
    const JsonValue* report = response->payload.Find("report");
    if (report != nullptr) {
      Result<PeriodReport> parsed = protocol::PeriodReportFromJson(*report);
      EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
      reports.push_back(std::move(*parsed));
    }
  }
  return reports;
}

void ExpectBitIdentical(const std::vector<PeriodReport>& direct,
                        const std::vector<PeriodReport>& replayed) {
  ASSERT_EQ(direct.size(), replayed.size());
  for (size_t p = 0; p < direct.size(); ++p) {
    // The JSON encoding round-trips doubles exactly, so string equality of
    // the dumps is bit-for-bit equality of payments, ledger and built set.
    EXPECT_EQ(protocol::ToJson(direct[p]).Dump(),
              protocol::ToJson(replayed[p]).Dump())
        << "period " << p + 1;
  }
}

/// Scratch dirs live under the working directory (the build tree when run
/// via ctest), so the suite never writes outside it.
std::string TempDir(const std::string& leaf) {
  return "optshare_recovery_test_scratch/" + leaf;
}

ServerOptions FileBackedOptions(const std::string& dir, int workers = 2) {
  auto store = FileStateStore::Open(dir);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  ServerOptions options;
  options.num_workers = workers;
  options.store = std::move(*store);
  return options;
}

/// The tenancy's observable state, for prefix-consistency comparisons:
/// the report payload covers periods_run, built set, cumulative ledger,
/// open-period slot and roster counts.
std::string ReportDump(MarketplaceServer& server, const std::string& tenancy) {
  Request report;
  report.op = RequestOp::kReport;
  report.tenancy = tenancy;
  Response response = server.Handle(std::move(report));
  EXPECT_TRUE(response.ok()) << response.status.ToString();
  return response.payload.Dump();
}

// -- The acceptance differential -------------------------------------------

class RecoveryParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RecoveryParityTest, CrashAtEveryRequestBoundaryRecoversBitIdentically) {
  constexpr int kTenants = 6;
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.mechanism = GetParam();

  std::vector<std::vector<simdb::SimUser>> periods;
  for (int p = 0; p < 3; ++p) {
    periods.push_back(Jitter(scenario->tenants, kSlots,
                             7000 + static_cast<uint64_t>(p)));
  }
  const std::vector<PeriodReport> direct =
      DirectReports(scenario->catalog, config, periods);
  // The program must exercise real carry-over, or the differential is
  // vacuous.
  int carried = 0;
  for (const PeriodReport& report : direct) {
    for (const StructureOutcome& outcome : report.structures) {
      carried += outcome.carried_over ? 1 : 0;
    }
  }
  ASSERT_GT(carried, 0) << "no carried structures; workload too small";

  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, kTenants, kSlots, periods);

  // Kill the server after every prefix of the request stream; the recovered
  // server must finish the program to the same reports.
  for (size_t cut = 0; cut <= lines.size(); ++cut) {
    const std::string dir =
        TempDir(std::string(GetParam()) + "_cut" + std::to_string(cut));
    ASSERT_TRUE(fs::RemoveAll(dir).ok());
    std::vector<std::string> responses;
    {
      MarketplaceServer crashed(FileBackedOptions(dir));
      for (size_t i = 0; i < cut; ++i) {
        responses.push_back(crashed.HandleLine(lines[i]));
      }
      // Destruction drains but does NOT checkpoint: the crash. The open
      // session, roster and mid-period pricing state all evaporate.
    }
    MarketplaceServer recovered(FileBackedOptions(dir));
    Result<RecoveryStats> stats = recovered.Recover();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (size_t i = cut; i < lines.size(); ++i) {
      responses.push_back(recovered.HandleLine(lines[i]));
    }
    ExpectBitIdentical(direct, ReportsFromResponses(responses));
    ASSERT_TRUE(fs::RemoveAll(dir).ok());
  }
}

// "addon" exercises the native slot-incremental path; "naive_online" and
// "regret" the buffered baselines (the acceptance bar's trio).
INSTANTIATE_TEST_SUITE_P(Mechanisms, RecoveryParityTest,
                         ::testing::Values("addon", "naive_online", "regret"));

TEST(RecoveryTest, JournalTruncatedAtEveryRecordBoundaryIsPrefixConsistent) {
  constexpr int kTenants = 6;
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;

  std::vector<std::vector<simdb::SimUser>> periods;
  for (int p = 0; p < 3; ++p) {
    periods.push_back(Jitter(scenario->tenants, kSlots,
                             9100 + static_cast<uint64_t>(p)));
  }
  std::vector<std::string> lines =
      RecordRequestLines("acme", config, kTenants, kSlots, periods);
  // Stop mid-period 3: drop the final close, so the journal holds the open
  // period's records (open/submit/advance) past the period-2 checkpoint.
  lines.pop_back();
  const size_t checkpointed_lines = 8;  // Two closed periods, 4 lines each.

  const std::string dir = TempDir("truncation_master");
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
  {
    MarketplaceServer server(FileBackedOptions(dir));
    for (const std::string& line : lines) {
      (void)server.HandleLine(line);
    }
  }
  // Locate the journal and its record boundaries.
  const std::string tenancy_dir = dir + "/" + fs::EncodePathComponent("acme");
  Result<std::string> journal_name = [&]() -> Result<std::string> {
    Result<std::vector<std::string>> entries = fs::ListDir(tenancy_dir);
    if (!entries.ok()) return entries.status();
    for (const std::string& entry : *entries) {
      if (entry.rfind("journal-", 0) == 0) return entry;
    }
    return Status::NotFound("no journal in " + tenancy_dir);
  }();
  ASSERT_TRUE(journal_name.ok()) << journal_name.status().ToString();
  Result<std::string> journal = fs::ReadFile(tenancy_dir + "/" + *journal_name);
  ASSERT_TRUE(journal.ok());
  std::vector<size_t> boundaries = {0};
  for (size_t i = 0; i < journal->size(); ++i) {
    if ((*journal)[i] == '\n') boundaries.push_back(i + 1);
  }
  ASSERT_EQ(boundaries.size(), 4u) << "expected 3 journal records";

  for (size_t r = 0; r < boundaries.size(); ++r) {
    // A fresh replay of the surviving prefix is the definition of
    // prefix-consistent: checkpointed lines + r journal records.
    MarketplaceServer reference(ServerOptions{1});
    for (size_t i = 0; i < checkpointed_lines + r; ++i) {
      (void)reference.HandleLine(lines[i]);
    }
    const std::string expected = ReportDump(reference, "acme");

    // Copy the crashed data dir and truncate the journal at the boundary.
    const std::string copy = TempDir("truncation_r" + std::to_string(r));
    ASSERT_TRUE(fs::RemoveAll(copy).ok());
    std::filesystem::copy(dir, copy,
                          std::filesystem::copy_options::recursive);
    std::filesystem::resize_file(copy + "/" +
                                     fs::EncodePathComponent("acme") + "/" +
                                     *journal_name,
                                 boundaries[r]);

    MarketplaceServer recovered(FileBackedOptions(copy));
    Result<RecoveryStats> stats = recovered.Recover();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->journal_records_replayed, static_cast<int>(r));
    EXPECT_EQ(ReportDump(recovered, "acme"), expected) << "r=" << r;
    ASSERT_TRUE(fs::RemoveAll(copy).ok());

    // Byte-level truncation inside record r+1 must land on the same state:
    // the torn tail is dropped.
    if (r + 1 < boundaries.size()) {
      const std::string torn = TempDir("truncation_torn" + std::to_string(r));
      ASSERT_TRUE(fs::RemoveAll(torn).ok());
      std::filesystem::copy(dir, torn,
                            std::filesystem::copy_options::recursive);
      std::filesystem::resize_file(torn + "/" +
                                       fs::EncodePathComponent("acme") + "/" +
                                       *journal_name,
                                   boundaries[r] + 3);
      MarketplaceServer recovered_torn(FileBackedOptions(torn));
      Result<RecoveryStats> torn_stats = recovered_torn.Recover();
      ASSERT_TRUE(torn_stats.ok()) << torn_stats.status().ToString();
      EXPECT_EQ(torn_stats->journal_torn, 1);
      EXPECT_EQ(ReportDump(recovered_torn, "acme"), expected) << "r=" << r;
      ASSERT_TRUE(fs::RemoveAll(torn).ok());
    }
  }
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
}

TEST(RecoveryTest, SharedMemoryStoreRecoversInProcess) {
  // The recovery machinery is backend-independent: a second server sharing
  // the first's MemoryStateStore recovers mid-period state without any
  // filesystem.
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(5, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      Jitter(scenario->tenants, kSlots, 11), Jitter(scenario->tenants, kSlots, 12)};
  const std::vector<PeriodReport> direct =
      DirectReports(scenario->catalog, config, periods);
  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, 5, kSlots, periods);

  auto shared = std::make_shared<MemoryStateStore>();
  std::vector<std::string> responses;
  {
    ServerOptions options;
    options.num_workers = 2;
    options.store = shared;
    MarketplaceServer first(std::move(options));
    for (size_t i = 0; i < 6; ++i) {  // Period 1 + open/submit of period 2.
      responses.push_back(first.HandleLine(lines[i]));
    }
  }
  ServerOptions options;
  options.num_workers = 2;
  options.store = shared;
  MarketplaceServer second(std::move(options));
  Result<RecoveryStats> stats = second.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tenancies_recovered, 1);
  EXPECT_EQ(stats->snapshots_loaded, 1);
  EXPECT_EQ(stats->journal_records_replayed, 2);
  for (size_t i = 6; i < lines.size(); ++i) {
    responses.push_back(second.HandleLine(lines[i]));
  }
  ExpectBitIdentical(direct, ReportsFromResponses(responses));
}

// -- Graceful shutdown ------------------------------------------------------

TEST(RecoveryTest, ShutdownPersistsTheOpenPeriod) {
  // The lost-final-period fix: a server shut down mid-period (pipe close)
  // hands the open period to its successor intact.
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(5, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      Jitter(scenario->tenants, kSlots, 21), Jitter(scenario->tenants, kSlots, 22)};
  const std::vector<PeriodReport> direct =
      DirectReports(scenario->catalog, config, periods);
  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, 5, kSlots, periods);

  const std::string dir = TempDir("shutdown_open_period");
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
  std::vector<std::string> responses;
  {
    MarketplaceServer server(FileBackedOptions(dir));
    for (size_t i = 0; i < 6; ++i) {  // Period 1 + open/submit of period 2.
      responses.push_back(server.HandleLine(lines[i]));
    }
    // The wire shutdown request flags the serve loop...
    Request shutdown;
    shutdown.op = RequestOp::kShutdown;
    Response ack = server.Handle(std::move(shutdown));
    ASSERT_TRUE(ack.ok()) << ack.status.ToString();
    EXPECT_TRUE(server.shutdown_requested());
    // ... which then runs the graceful drain + checkpoint.
    ASSERT_TRUE(server.Shutdown().ok());
  }
  MarketplaceServer successor(FileBackedOptions(dir));
  Result<RecoveryStats> stats = successor.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (size_t i = 6; i < lines.size(); ++i) {
    responses.push_back(successor.HandleLine(lines[i]));
  }
  ExpectBitIdentical(direct, ReportsFromResponses(responses));
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
}

TEST(RecoveryTest, CreateTenancyIsDurable) {
  // The embedded (programmatic) creation path has no wire record to
  // replay; its immediate checkpoint carries it across the restart.
  const std::string dir = TempDir("create_tenancy");
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
  auto scenario = simdb::TelemetryScenario(4, 12);
  ASSERT_TRUE(scenario.ok());
  {
    MarketplaceServer server(FileBackedOptions(dir));
    ASSERT_TRUE(
        server.CreateTenancy("embedded", scenario->catalog).ok());
  }
  MarketplaceServer recovered(FileBackedOptions(dir));
  Result<RecoveryStats> stats = recovered.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tenancies_recovered, 1);
  EXPECT_EQ(recovered.TenancyNames(),
            (std::vector<std::string>{"embedded"}));
  // And it prices: an open_period without a catalog spec works because the
  // catalog came back from the snapshot.
  Request open;
  open.op = RequestOp::kOpenPeriod;
  open.tenancy = "embedded";
  EXPECT_TRUE(recovered.Handle(std::move(open)).ok());
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
}

// -- v2 surface -------------------------------------------------------------

TEST(RecoveryTest, V1ClientsWorkUnchangedAgainstV2Server) {
  MarketplaceServer server(ServerOptions{2});
  // A verbatim v1 exchange: the response must say v:1, not v:2.
  const std::string response_line = server.HandleLine(
      "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"t\",\"catalog\":"
      "{\"scenario\":\"telemetry\"}}");
  Result<JsonValue> doc = JsonValue::Parse(response_line);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->Find("v"), nullptr);
  EXPECT_EQ(doc->Find("v")->AsNumber(), 1.0);
  Result<Response> parsed = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok());

  // v2 requests answer v:2.
  const std::string info_line =
      server.HandleLine("{\"v\":2,\"op\":\"server_info\"}");
  doc = JsonValue::Parse(info_line);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("v")->AsNumber(), 2.0);

  // Durability ops are v2-only: a v1 document carrying one is rejected.
  const std::string rejected =
      server.HandleLine("{\"v\":1,\"op\":\"shutdown\"}");
  doc = JsonValue::Parse(rejected);
  ASSERT_TRUE(doc.ok());
  parsed = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok());
  EXPECT_EQ(parsed->status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(server.shutdown_requested());
}

TEST(RecoveryTest, SnapshotOpCheckpointsAtPeriodBoundary) {
  const std::string dir = TempDir("snapshot_op");
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
  MarketplaceServer server(FileBackedOptions(dir));
  (void)server.HandleLine(
      "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"t\",\"catalog\":"
      "{\"scenario\":\"telemetry\"}}");
  // Mid-period snapshots are refused: the open period lives in the journal.
  Result<JsonValue> doc = JsonValue::Parse(
      server.HandleLine("{\"v\":2,\"op\":\"snapshot\",\"tenancy\":\"t\"}"));
  ASSERT_TRUE(doc.ok());
  Result<Response> response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kFailedPrecondition);

  (void)server.HandleLine(
      "{\"v\":1,\"op\":\"advance_slot\",\"tenancy\":\"t\",\"slots\":12}");
  (void)server.HandleLine("{\"v\":1,\"op\":\"close_period\",\"tenancy\":\"t\"}");
  const uint64_t checkpoints_before = server.store().stats().checkpoints;
  doc = JsonValue::Parse(
      server.HandleLine("{\"v\":2,\"op\":\"snapshot\",\"tenancy\":\"t\"}"));
  ASSERT_TRUE(doc.ok());
  response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok()) << response->status.ToString();
  EXPECT_EQ(response->payload.Find("store")->AsString(), "file");
  EXPECT_EQ(server.store().stats().checkpoints, checkpoints_before + 1);
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
}

TEST(RecoveryTest, RestoreOpLoadsStoreTenanciesIntoALiveServer) {
  const std::string dir = TempDir("restore_op");
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
  {
    MarketplaceServer writer(FileBackedOptions(dir));
    (void)writer.HandleLine(
        "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"acme\",\"catalog\":"
        "{\"scenario\":\"telemetry\"}}");
    (void)writer.HandleLine(
        "{\"v\":1,\"op\":\"advance_slot\",\"tenancy\":\"acme\","
        "\"slots\":12}");
    (void)writer.HandleLine(
        "{\"v\":1,\"op\":\"close_period\",\"tenancy\":\"acme\"}");
    ASSERT_TRUE(writer.Shutdown().ok());
  }
  // A live server that never ran Recover: the tenancy is invisible...
  MarketplaceServer server(FileBackedOptions(dir));
  Result<JsonValue> doc = JsonValue::Parse(
      server.HandleLine("{\"v\":1,\"op\":\"report\",\"tenancy\":\"acme\"}"));
  ASSERT_TRUE(doc.ok());
  Result<Response> response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kNotFound);
  // ... until the wire restore op loads it.
  doc = JsonValue::Parse(server.HandleLine("{\"v\":2,\"op\":\"restore\"}"));
  ASSERT_TRUE(doc.ok());
  response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok()) << response->status.ToString();
  EXPECT_EQ(response->payload.Find("tenancies_recovered")->AsNumber(), 1.0);
  doc = JsonValue::Parse(
      server.HandleLine("{\"v\":1,\"op\":\"report\",\"tenancy\":\"acme\"}"));
  ASSERT_TRUE(doc.ok());
  response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok());
  EXPECT_EQ(response->payload.Find("periods_run")->AsNumber(), 1.0);
  // A second restore skips the now-live tenancy.
  doc = JsonValue::Parse(server.HandleLine("{\"v\":2,\"op\":\"restore\"}"));
  ASSERT_TRUE(doc.ok());
  response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok() && response->ok());
  EXPECT_EQ(response->payload.Find("tenancies_recovered")->AsNumber(), 0.0);
  EXPECT_EQ(response->payload.Find("tenancies_skipped")->AsNumber(), 1.0);
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
}

TEST(RecoveryTest, FailedCreatingOpenDoesNotDestroyStoredHistory) {
  // A server that never ran Recover can receive a creating open_period for
  // a name whose history sits in the store; if that open fails, the
  // rollback must undo only the in-memory insertion — never the persisted
  // snapshot/journal of the previous incarnation.
  const std::string dir = TempDir("rollback_preserves_history");
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
  {
    MarketplaceServer writer(FileBackedOptions(dir));
    (void)writer.HandleLine(
        "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"acme\",\"catalog\":"
        "{\"scenario\":\"telemetry\"}}");
    (void)writer.HandleLine(
        "{\"v\":1,\"op\":\"advance_slot\",\"tenancy\":\"acme\","
        "\"slots\":12}");
    (void)writer.HandleLine(
        "{\"v\":1,\"op\":\"close_period\",\"tenancy\":\"acme\"}");
    ASSERT_TRUE(writer.Shutdown().ok());
  }
  MarketplaceServer server(FileBackedOptions(dir));  // No Recover.
  Result<JsonValue> doc = JsonValue::Parse(server.HandleLine(
      "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"acme\",\"catalog\":"
      "{\"scenario\":\"telemetry\"},\"config\":{\"mechanism\":\"nope\"}}"));
  ASSERT_TRUE(doc.ok());
  Result<Response> response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  ASSERT_FALSE(response->ok()) << "bad mechanism must fail the open";

  Result<RecoveryStats> stats = server.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tenancies_recovered, 1);
  doc = JsonValue::Parse(
      server.HandleLine("{\"v\":1,\"op\":\"report\",\"tenancy\":\"acme\"}"));
  ASSERT_TRUE(doc.ok());
  response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok()) << response->status.ToString();
  EXPECT_EQ(response->payload.Find("periods_run")->AsNumber(), 1.0);
  ASSERT_TRUE(fs::RemoveAll(dir).ok());
}

TEST(RecoveryTest, ServerInfoReportsStoreKindAndRecoveryStats) {
  MarketplaceServer server(ServerOptions{3});
  Result<JsonValue> doc =
      JsonValue::Parse(server.HandleLine("{\"v\":2,\"op\":\"server_info\"}"));
  ASSERT_TRUE(doc.ok());
  Result<Response> response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok());
  const JsonValue& payload = response->payload;
  EXPECT_EQ(payload.Find("store")->AsString(), "memory");
  EXPECT_EQ(payload.Find("workers")->AsNumber(), 3.0);
  EXPECT_EQ(payload.Find("protocol")->Find("min")->AsNumber(), 1.0);
  EXPECT_EQ(payload.Find("protocol")->Find("max")->AsNumber(), 3.0);
  EXPECT_EQ(payload.Find("recoveries_run")->AsNumber(), 0.0);
  ASSERT_NE(payload.Find("recovery"), nullptr);
  ASSERT_NE(payload.Find("store_stats"), nullptr);
}

TEST(RecoveryTest, OversizedRequestLinesAnswerResourceExhausted) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_request_bytes = 128;
  MarketplaceServer server(std::move(options));
  std::string huge = "{\"v\":1,\"op\":\"report\",\"tenancy\":\"";
  huge.append(1024, 'x');
  huge += "\"}";
  Result<JsonValue> doc = JsonValue::Parse(server.HandleLine(huge));
  ASSERT_TRUE(doc.ok());
  Result<Response> response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kResourceExhausted);
  // Within the cap, business as usual.
  doc = JsonValue::Parse(server.HandleLine("{\"v\":2,\"op\":\"server_info\"}"));
  ASSERT_TRUE(doc.ok());
  response = protocol::ResponseFromJson(*doc);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok());
}

// -- Protocol v3: batch frames are WAL-atomic per tenancy -------------------

TEST(RecoveryTest, BatchFrameJournalsOneAtomicRecordAndReplays) {
  // A wire batch whose members all qualify (plain session mutations +
  // reads) journals exactly ONE record for the tenancy — the raw frame —
  // appended before any member executes. A crash mid-period then replays
  // the whole group or none of it, and the recovered state is
  // bit-identical to serving the members one at a time.
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(5, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<simdb::SimUser> tenants =
      Jitter(scenario->tenants, kSlots, 31);

  const auto open_line = [&] {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = "acme";
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = 5;
    catalog.scenario_slots = kSlots;
    open.catalog = catalog;
    open.config = config;
    return protocol::ToJson(open).Dump();
  };
  // submit + advance + report + advance: mutations and a read, one frame.
  const auto members = [&] {
    std::vector<Request> list;
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = "acme";
    submit.tenants = tenants;
    list.push_back(std::move(submit));
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = "acme";
    advance.slots = 3;
    list.push_back(advance);
    Request report;
    report.op = RequestOp::kReport;
    report.tenancy = "acme";
    list.push_back(std::move(report));
    advance.slots = 2;
    list.push_back(advance);
    return list;
  }();
  const auto batch_line = [&] {
    Request batch;
    batch.op = RequestOp::kBatch;
    batch.version = 3;
    batch.requests = members;
    return protocol::ToJson(batch).Dump();
  }();

  // Reference: the same members served one line at a time.
  std::string expected;
  {
    MarketplaceServer reference(ServerOptions{2});
    ASSERT_NE(reference.HandleLine(open_line()).find("\"ok\":true"),
              std::string::npos);
    for (const Request& member : members) {
      const std::string response =
          reference.HandleLine(protocol::ToJson(member).Dump());
      ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    }
    expected = ReportDump(reference, "acme");
  }

  auto shared = std::make_shared<MemoryStateStore>();
  {
    ServerOptions options;
    options.num_workers = 2;
    options.store = shared;
    MarketplaceServer first(std::move(options));
    ASSERT_NE(first.HandleLine(open_line()).find("\"ok\":true"),
              std::string::npos);
    const uint64_t appends_before = shared->stats().appends;
    const std::string response = first.HandleLine(batch_line);
    ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    // The whole frame — two mutations and a read — cost one append.
    EXPECT_EQ(shared->stats().appends, appends_before + 1);
    // No shutdown: the destructor is the crash.
  }
  ServerOptions options;
  options.num_workers = 2;
  options.store = shared;
  MarketplaceServer second(std::move(options));
  Result<RecoveryStats> stats = second.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tenancies_recovered, 1);
  // The creating open_period is one record; the whole batch is the other.
  EXPECT_EQ(stats->journal_records_replayed, 2);
  EXPECT_EQ(ReportDump(second, "acme"), expected);
}

TEST(RecoveryTest, BatchWithClosePeriodFallsBackToPerMemberRecords) {
  // close_period checkpoints and truncates the journal, so a group record
  // holding members beyond the close could lose them on replay. Such a
  // batch must take the per-member WAL path instead — more appends, same
  // recovered state.
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(5, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      Jitter(scenario->tenants, kSlots, 41),
      Jitter(scenario->tenants, kSlots, 42)};
  const std::vector<PeriodReport> direct =
      DirectReports(scenario->catalog, config, periods);
  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, 5, kSlots, periods);

  auto shared = std::make_shared<MemoryStateStore>();
  std::vector<std::string> responses;
  {
    ServerOptions options;
    options.num_workers = 2;
    options.store = shared;
    MarketplaceServer first(std::move(options));
    // Period 1's open, then submit/advance/close as ONE batch frame that
    // disqualifies itself (close_period member) and journals per member.
    responses.push_back(first.HandleLine(lines[0]));
    Request batch;
    batch.op = RequestOp::kBatch;
    batch.version = 3;
    for (size_t i = 1; i <= 3; ++i) {
      Result<Request> member = protocol::ParseRequestLine(lines[i]);
      ASSERT_TRUE(member.ok());
      batch.requests.push_back(std::move(*member));
    }
    const uint64_t appends_before = shared->stats().appends;
    const std::string response =
        first.HandleLine(protocol::ToJson(batch).Dump());
    ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    // Three mutating members, three records (not one group record).
    EXPECT_EQ(shared->stats().appends, appends_before + 3);
    // Split the member responses back out as individual lines so the
    // report extraction below sees the close_period payload.
    Result<JsonValue> doc = JsonValue::Parse(response);
    ASSERT_TRUE(doc.ok());
    for (const JsonValue& member_doc :
         doc->Find("result")->Find("responses")->AsArray()) {
      responses.push_back(member_doc.Dump());
    }
    // Open period 2, then crash.
    responses.push_back(first.HandleLine(lines[4]));
    responses.push_back(first.HandleLine(lines[5]));
  }
  ServerOptions options;
  options.num_workers = 2;
  options.store = shared;
  MarketplaceServer second(std::move(options));
  Result<RecoveryStats> stats = second.Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tenancies_recovered, 1);
  for (size_t i = 6; i < lines.size(); ++i) {
    responses.push_back(second.HandleLine(lines[i]));
  }
  ExpectBitIdentical(direct, ReportsFromResponses(responses));
}

}  // namespace
}  // namespace optshare::service
