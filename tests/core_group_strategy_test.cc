// Group strategyproofness of Moulin mechanisms with cross-monotonic
// sharing (and a demonstration that the naive mechanism has profitable
// coalitions).
#include "core/group_strategy.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/strategy.h"

namespace optshare {
namespace {

TEST(GroupStrategyTest, ProbeReportsDeltas) {
  EgalitarianSharing method(60.0);
  const std::vector<double> values = {40.0, 35.0, 10.0};
  // Truthful: share 20 services users 0 and 1 after user 2 is evicted...
  // First round share 20 keeps everyone (10 < 20 evicts user 2), then
  // share 30 keeps {0, 1}.
  GroupDeviationOutcome outcome =
      ProbeGroupDeviation(method, values, {0, 1}, {40.0, 35.0});
  EXPECT_FALSE(outcome.successful_manipulation);  // Truthful re-bid: no-op.
  EXPECT_DOUBLE_EQ(outcome.utility_delta[0], 0.0);
  EXPECT_DOUBLE_EQ(outcome.utility_delta[1], 0.0);
}

TEST(GroupStrategyTest, JointUnderbidHurtsSomeMember) {
  EgalitarianSharing method(60.0);
  const std::vector<double> values = {40.0, 35.0, 10.0};
  // If both remaining users shade below the 30 share, the optimization
  // dies and both lose their surplus.
  GroupDeviationOutcome outcome =
      ProbeGroupDeviation(method, values, {0, 1}, {25.0, 25.0});
  EXPECT_FALSE(outcome.successful_manipulation);
  EXPECT_LT(outcome.utility_delta[0], 0.0);
  EXPECT_LT(outcome.utility_delta[1], 0.0);
}

class GroupStrategyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupStrategyProperty, EgalitarianHasNoGroupManipulation) {
  Rng rng(GetParam() * 61);
  const int m = 4;
  std::vector<double> values;
  for (int i = 0; i < m; ++i) values.push_back(rng.Uniform(0.0, 1.0));
  const double cost = rng.Uniform(0.3, 2.5);

  const std::vector<double> grid =
      CandidateDeviationBids({cost}, values, m);
  // Thin the grid to keep grid^|coalition| tractable.
  std::vector<double> coarse;
  for (size_t k = 0; k < grid.size(); k += 3) coarse.push_back(grid[k]);
  coarse.push_back(10.0);

  EXPECT_FALSE(ExistsGroupManipulation(EgalitarianSharing(cost), values,
                                       /*max_coalition_size=*/2, coarse))
      << "seed " << GetParam();
}

TEST_P(GroupStrategyProperty, WeightedHasNoGroupManipulation) {
  Rng rng(GetParam() * 67);
  const int m = 4;
  std::vector<double> values, weights;
  for (int i = 0; i < m; ++i) {
    values.push_back(rng.Uniform(0.0, 1.0));
    weights.push_back(rng.Uniform(0.5, 2.0));
  }
  const double cost = rng.Uniform(0.3, 2.0);
  const WeightedSharing method = *WeightedSharing::Make(cost, weights);

  std::vector<double> coarse = {0.0, 0.2, 0.5, 1.0, 2.0, 10.0};
  EXPECT_FALSE(ExistsGroupManipulation(method, values,
                                       /*max_coalition_size=*/2, coarse))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SeededGames, GroupStrategyProperty,
                         ::testing::Range<uint64_t>(1, 26));

TEST(GroupStrategyTest, NonCrossMonotonicIterationMissesStableCoalitions) {
  // Why cross-monotonicity matters: under the "lowest member pays the
  // remainder" scheme the top-down eviction loop can kill the service even
  // though a stable, mutually beneficial coalition exists — the user whose
  // share would *fall* once others leave is evicted first.
  class LowestPaysRemainder final : public CostSharingMethod {
   public:
    explicit LowestPaysRemainder(double cost) : cost_(cost) {}
    std::vector<double> Shares(
        const std::vector<bool>& members) const override {
      int count = 0, lowest = -1;
      for (size_t i = 0; i < members.size(); ++i) {
        if (members[i]) {
          ++count;
          if (lowest < 0) lowest = static_cast<int>(i);
        }
      }
      std::vector<double> shares(members.size(), 0.0);
      const double per_head = cost_ / (count * count);
      double assigned = 0.0;
      for (size_t i = 0; i < members.size(); ++i) {
        if (members[i] && static_cast<int>(i) != lowest) {
          shares[i] = per_head;
          assigned += per_head;
        }
      }
      if (lowest >= 0) shares[static_cast<size_t>(lowest)] = cost_ - assigned;
      return shares;
    }
    double cost() const override { return cost_; }

   private:
    double cost_;
  };

  // Values {0.76, 0.55, 0.12}, cost 1. With all three present user 0 owes
  // 1 - 2/9 = 0.778 > 0.76 and is evicted; the cascade then kills the
  // service. Yet {user 0, user 1} alone is stable under the same scheme
  // (shares 0.75 and 0.25, both within value).
  const std::vector<double> values = {0.76, 0.55, 0.12};
  LowestPaysRemainder method(1.0);
  EXPECT_FALSE(IsCrossMonotonic(method, 3));
  const ShapleyResult r = RunMoulin(method, values);
  EXPECT_FALSE(r.implemented) << "iteration should cascade to empty";
  // The egalitarian (cross-monotonic) split of the same cost finds a
  // funded coalition from the identical values.
  const ShapleyResult egal = RunMoulin(EgalitarianSharing(1.0), values);
  EXPECT_TRUE(egal.implemented);
}

}  // namespace
}  // namespace optshare
