#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace optshare {
namespace {

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape("12.5"), "12.5");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(&out);
  ASSERT_TRUE(w.WriteHeader({"cost", "utility"}).ok());
  ASSERT_TRUE(w.WriteRow(std::vector<std::string>{"0.5", "1.25"}).ok());
  ASSERT_TRUE(w.WriteRow(std::vector<double>{1.0, -2.5}).ok());
  EXPECT_EQ(out.str(), "cost,utility\n0.5,1.25\n1,-2.5\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriterTest, RejectsWidthMismatch) {
  std::ostringstream out;
  CsvWriter w(&out);
  ASSERT_TRUE(w.WriteHeader({"a", "b"}).ok());
  Status st = w.WriteRow(std::vector<std::string>{"only-one"});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(CsvWriterTest, RejectsDoubleHeader) {
  std::ostringstream out;
  CsvWriter w(&out);
  ASSERT_TRUE(w.WriteHeader({"a"}).ok());
  EXPECT_EQ(w.WriteHeader({"b"}).code(), StatusCode::kFailedPrecondition);
}

TEST(CsvWriterTest, RejectsEmptyHeader) {
  std::ostringstream out;
  CsvWriter w(&out);
  EXPECT_EQ(w.WriteHeader({}).code(), StatusCode::kInvalidArgument);
}

TEST(CsvWriterTest, RowsWithoutHeaderAreUnchecked) {
  std::ostringstream out;
  CsvWriter w(&out);
  ASSERT_TRUE(w.WriteRow(std::vector<std::string>{"x", "y", "z"}).ok());
  EXPECT_EQ(out.str(), "x,y,z\n");
}

TEST(CsvWriterTest, NullStreamFails) {
  CsvWriter w(nullptr);
  EXPECT_EQ(w.WriteRow(std::vector<std::string>{"x"}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FormatDoubleTest, RoundTrips) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.1), "0.1");
  EXPECT_EQ(FormatDouble(-2.5), "-2.5");
}

TEST(FormatDoubleTest, SpecialValues) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "nan");
}

}  // namespace
}  // namespace optshare
