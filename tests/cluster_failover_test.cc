// Cluster failover differential: the PR's acceptance bar. A 3-node
// in-process cluster fronted by a ClusterRouter, with journal-streaming
// replication between the nodes; killing a tenancy's owner mid-stream and
// failing over to its replica must yield PeriodReports bit-identical to an
// uninterrupted single-node run, for every mechanism in the recovery
// suite's trio. Plus the satellite surfaces the failover rides on:
// rebalance hand-off, cluster_update propagation, and the router/node
// server_info counters.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/placement.h"
#include "cluster/router.h"
#include "common/rng.h"
#include "service/marketplace_server.h"
#include "simdb/scenarios.h"

namespace optshare::cluster {
namespace {

using service::PeriodReport;
using service::PricingSession;
using service::ServiceConfig;
using service::protocol::Request;
using service::protocol::RequestOp;
using service::protocol::Response;

std::vector<simdb::SimUser> Jitter(std::vector<simdb::SimUser> tenants,
                                   int slots, uint64_t seed) {
  Rng rng(seed);
  return simdb::JitterTenants(std::move(tenants), slots, rng);
}

/// Runs `periods` full periods directly through PricingSession — the
/// single-node, never-interrupted reference every failover run must match
/// bit for bit.
std::vector<PeriodReport> DirectReports(
    const simdb::Catalog& catalog, const ServiceConfig& config,
    const std::vector<std::vector<simdb::SimUser>>& periods) {
  std::vector<PeriodReport> reports;
  std::vector<std::string> built;
  for (size_t p = 0; p < periods.size(); ++p) {
    Result<PricingSession> session = PricingSession::Open(
        &catalog, config, built, static_cast<int>(p) + 1);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_TRUE(session->Submit(periods[p]).ok());
    for (int slot = 0; slot < config.slots_per_period; ++slot) {
      EXPECT_TRUE(session->AdvanceSlot().ok());
    }
    Result<PeriodReport> report = session->Close();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    built = session->built_structures();
    reports.push_back(std::move(*report));
  }
  return reports;
}

/// The wire program: 4 lines per period (open/submit/advance/close),
/// catalog spec on the first open.
std::vector<std::string> RecordRequestLines(
    const std::string& tenancy, const ServiceConfig& config,
    int scenario_tenants, int scenario_slots,
    const std::vector<std::vector<simdb::SimUser>>& periods) {
  std::vector<std::string> lines;
  for (size_t p = 0; p < periods.size(); ++p) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = tenancy;
    if (p == 0) {
      service::protocol::CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = scenario_tenants;
      catalog.scenario_slots = scenario_slots;
      open.catalog = catalog;
      open.config = config;
    }
    lines.push_back(service::protocol::ToJson(open).Dump());
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenancy = tenancy;
    submit.tenants = periods[p];
    lines.push_back(service::protocol::ToJson(submit).Dump());
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = tenancy;
    advance.slots = config.slots_per_period;
    lines.push_back(service::protocol::ToJson(advance).Dump());
    Request close;
    close.op = RequestOp::kClosePeriod;
    close.tenancy = tenancy;
    lines.push_back(service::protocol::ToJson(close).Dump());
  }
  return lines;
}

/// Extracts close_period report payloads from response lines (every
/// response must be ok).
std::vector<PeriodReport> ReportsFromResponses(
    const std::vector<std::string>& response_lines) {
  std::vector<PeriodReport> reports;
  for (const std::string& line : response_lines) {
    Result<JsonValue> doc = JsonValue::Parse(line);
    EXPECT_TRUE(doc.ok()) << line;
    Result<Response> response = service::protocol::ResponseFromJson(*doc);
    EXPECT_TRUE(response.ok()) << line;
    EXPECT_TRUE(response->ok()) << response->status.ToString();
    const JsonValue* report = response->payload.Find("report");
    if (report != nullptr) {
      Result<PeriodReport> parsed =
          service::protocol::PeriodReportFromJson(*report);
      EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
      reports.push_back(std::move(*parsed));
    }
  }
  return reports;
}

void ExpectBitIdentical(const std::vector<PeriodReport>& direct,
                        const std::vector<PeriodReport>& routed) {
  ASSERT_EQ(direct.size(), routed.size());
  for (size_t p = 0; p < direct.size(); ++p) {
    // JSON round-trips doubles exactly: string equality of the dumps is
    // bit-for-bit equality of payments, ledger and built set.
    EXPECT_EQ(service::protocol::ToJson(direct[p]).Dump(),
              service::protocol::ToJson(routed[p]).Dump())
        << "period " << p + 1;
  }
}

/// A running in-process cluster: N memory-store nodes + the router.
struct TestCluster {
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::unique_ptr<ClusterRouter> router;

  ~TestCluster() {
    for (auto& node : nodes) node->Stop();
  }

  ClusterNode* NodeById(const std::string& id) {
    for (auto& node : nodes) {
      if (node->id() == id) return node.get();
    }
    return nullptr;
  }

  std::string OwnerIdOf(const std::string& tenancy) {
    auto owner = router->CurrentPlacement().OwnerOf(tenancy);
    EXPECT_TRUE(owner.has_value());
    return owner.has_value() ? owner->id : "";
  }
};

/// Two-phase ephemeral-port bootstrap, same as bench/cluster_speed.cc:
/// start nodes under a provisional map (ports unknown), then publish the
/// post-bind map as a newer version.
std::unique_ptr<TestCluster> StartCluster(int num_nodes, int workers) {
  std::vector<NodeInfo> entries;
  for (int n = 0; n < num_nodes; ++n) {
    entries.push_back({"node-" + std::to_string(n), "127.0.0.1", 0, false});
  }
  Result<PlacementMap> provisional = PlacementMap::Create(entries);
  EXPECT_TRUE(provisional.ok());
  auto cluster = std::make_unique<TestCluster>();
  for (int n = 0; n < num_nodes; ++n) {
    ClusterNodeOptions options;
    options.node_id = entries[static_cast<size_t>(n)].id;
    options.placement = *provisional;
    options.num_workers = workers;
    options.connect.timeout_ms = 2000;
    cluster->nodes.push_back(std::make_unique<ClusterNode>(options));
    Status started = cluster->nodes.back()->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    entries[static_cast<size_t>(n)].port = cluster->nodes.back()->port();
  }
  Result<PlacementMap> bound = PlacementMap::Create(entries);
  EXPECT_TRUE(bound.ok());
  bound->SetVersion(provisional->version() + 1);
  for (auto& node : cluster->nodes) {
    node->replication()->UpdatePlacement(*bound);
  }
  RouterOptions router_options;
  router_options.placement = *bound;
  cluster->router = std::make_unique<ClusterRouter>(router_options);
  return cluster;
}

/// A client with the documented retry discipline: a failed-over mutation
/// answers the typed retryable code — Unavailable, never a generic
/// Internal — and the client resends the same line once; at request
/// boundaries that resend is exactly-once. Keying on the code (not a
/// message substring) is the contract this test pins.
std::string SendResilient(ClusterRouter* router,
                          ClusterRouter::Channel* channel,
                          const std::string& line) {
  std::string response_line = router->RouteLine(line, channel);
  Result<JsonValue> doc = JsonValue::Parse(response_line);
  if (doc.ok()) {
    Result<Response> response = service::protocol::ResponseFromJson(*doc);
    if (response.ok() && !response->ok() &&
        response->status.code() == StatusCode::kUnavailable) {
      response_line = router->RouteLine(line, channel);
    }
  }
  return response_line;
}

// -- The acceptance differential -------------------------------------------

class ClusterFailoverTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ClusterFailoverTest, KillingTheOwnerFailsOverBitIdentically) {
  constexpr int kTenants = 6;
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.mechanism = GetParam();

  std::vector<std::vector<simdb::SimUser>> periods;
  for (int p = 0; p < 3; ++p) {
    periods.push_back(Jitter(scenario->tenants, kSlots,
                             7000 + static_cast<uint64_t>(p)));
  }
  const std::vector<PeriodReport> direct =
      DirectReports(scenario->catalog, config, periods);
  // The program must exercise real carry-over, or the differential is
  // vacuous.
  int carried = 0;
  for (const PeriodReport& report : direct) {
    for (const service::StructureOutcome& outcome : report.structures) {
      carried += outcome.carried_over ? 1 : 0;
    }
  }
  ASSERT_GT(carried, 0) << "no carried structures; workload too small";

  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, kTenants, kSlots, periods);
  ASSERT_EQ(lines.size(), 12u);

  // Unlike the single-node suite, each cut boots a whole 3-node cluster,
  // so the kill points are a representative selection rather than every
  // prefix: after each op of period 1 (open / submit / advance), the
  // period-1 boundary, mid-period 2 with carried structures live, and the
  // final close.
  for (const size_t cut : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                           size_t{6}, size_t{11}}) {
    std::unique_ptr<TestCluster> cluster = StartCluster(3, 2);
    ClusterRouter::Channel channel;
    std::vector<std::string> responses;
    for (size_t i = 0; i < cut; ++i) {
      responses.push_back(
          SendResilient(cluster->router.get(), &channel, lines[i]));
    }
    // Kill the owner: abrupt TCP close, no checkpoint. Everything the
    // tenancy is at this point lives only in the replica's store.
    const std::string owner = cluster->OwnerIdOf("acme");
    const std::string replica =
        cluster->router->CurrentPlacement().ReplicaFor("acme", owner)->id;
    cluster->NodeById(owner)->Stop();
    for (size_t i = cut; i < lines.size(); ++i) {
      responses.push_back(
          SendResilient(cluster->router.get(), &channel, lines[i]));
    }
    ExpectBitIdentical(direct, ReportsFromResponses(responses));
    // The failover landed on the node that was already holding the warm
    // replica (the PlacementMap invariant, observed end to end).
    EXPECT_EQ(cluster->OwnerIdOf("acme"), replica) << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, ClusterFailoverTest,
                         ::testing::Values("addon", "naive_online", "regret"));

// -- Rebalance --------------------------------------------------------------

TEST(ClusterRebalanceTest, MovesATenancyAtThePeriodBoundaryBitIdentically) {
  constexpr int kTenants = 6;
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      Jitter(scenario->tenants, kSlots, 7100),
      Jitter(scenario->tenants, kSlots, 7101)};
  const std::vector<PeriodReport> direct =
      DirectReports(scenario->catalog, config, periods);
  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, kTenants, kSlots, periods);

  std::unique_ptr<TestCluster> cluster = StartCluster(3, 2);
  ClusterRouter::Channel channel;
  std::vector<std::string> responses;
  // Open + submit of period 1, leaving the period open...
  for (size_t i = 0; i < 2; ++i) {
    responses.push_back(
        SendResilient(cluster->router.get(), &channel, lines[i]));
  }
  const std::string owner = cluster->OwnerIdOf("acme");
  const PlacementMap placement = cluster->router->CurrentPlacement();
  std::string target;
  for (const NodeInfo& node : placement.nodes()) {
    if (node.id != owner) target = node.id;
  }
  // ... so the hand-off is refused: rebalances happen at period
  // boundaries only.
  Status refused = cluster->router->Rebalance("acme", target, &channel);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.ToString();
  // Finish the period; now the move goes through.
  for (size_t i = 2; i < 4; ++i) {
    responses.push_back(
        SendResilient(cluster->router.get(), &channel, lines[i]));
  }
  Status moved = cluster->router->Rebalance("acme", target, &channel);
  ASSERT_TRUE(moved.ok()) << moved.ToString();
  EXPECT_EQ(cluster->OwnerIdOf("acme"), target);
  // Period 2 runs on the new owner from the handed-off state, and its
  // report is bit-identical to the uninterrupted run.
  for (size_t i = 4; i < lines.size(); ++i) {
    responses.push_back(
        SendResilient(cluster->router.get(), &channel, lines[i]));
  }
  ExpectBitIdentical(direct, ReportsFromResponses(responses));
  // Unknown targets are rejected up front.
  EXPECT_FALSE(cluster->router->Rebalance("acme", "nope", &channel).ok());
}

// -- Placement propagation --------------------------------------------------

TEST(ClusterAdminTest, ClusterUpdateInstallsIfNewerAndPropagates) {
  std::unique_ptr<TestCluster> cluster = StartCluster(3, 1);
  ClusterRouter::Channel channel;
  PlacementMap updated = cluster->router->CurrentPlacement();
  const int64_t base_version = updated.version();
  ASSERT_TRUE(updated.SetOverride("pinned", "node-2"));  // Bumps version.

  Request push;
  push.op = RequestOp::kClusterUpdate;
  push.placement = updated.ToJson();
  Response response = cluster->router->Route(push, &channel);
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_TRUE(response.payload.Find("installed")->AsBool());
  EXPECT_EQ(response.payload.Find("version")->AsNumber(),
            static_cast<double>(base_version + 1));
  // The router forwarded the map to every node.
  for (auto& node : cluster->nodes) {
    EXPECT_EQ(node->replication()->CurrentPlacement().version(),
              base_version + 1)
        << node->id();
  }
  EXPECT_EQ(cluster->OwnerIdOf("pinned"), "node-2");

  // Replaying the same (now stale) map is a no-op everywhere.
  Response replay = cluster->router->Route(push, &channel);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay.payload.Find("installed")->AsBool());
}

// -- server_info ------------------------------------------------------------

TEST(ClusterInfoTest, RouterAndNodesExposeClusterCounters) {
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(5, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      Jitter(scenario->tenants, kSlots, 7200)};
  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, 5, kSlots, periods);

  std::unique_ptr<TestCluster> cluster = StartCluster(3, 1);
  ClusterRouter::Channel channel;
  for (const std::string& line : lines) {
    SendResilient(cluster->router.get(), &channel, line);
  }

  // The router answers server_info itself: role + placement + counters.
  Request info;
  info.op = RequestOp::kServerInfo;
  Response routed = cluster->router->Route(info, &channel);
  ASSERT_TRUE(routed.ok()) << routed.status.ToString();
  EXPECT_EQ(routed.payload.Find("role")->AsString(), "router");
  ASSERT_NE(routed.payload.Find("placement"), nullptr);

  // The owner node counted its ops and streamed every journal write to
  // its replica — semi-sync, so at an idle boundary the lag is zero.
  ClusterNode* owner = cluster->NodeById(cluster->OwnerIdOf("acme"));
  ASSERT_NE(owner, nullptr);
  Response node_info = owner->server()->Handle(Request{info});
  ASSERT_TRUE(node_info.ok()) << node_info.status.ToString();
  const JsonValue* ops = node_info.payload.Find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_NE(ops->Find("open_period"), nullptr);
  EXPECT_GE(ops->Find("open_period")->AsNumber(), 1.0);
  const JsonValue* replication = node_info.payload.Find("replication");
  ASSERT_NE(replication, nullptr);
  EXPECT_EQ(replication->Find("self")->AsString(), owner->id());
  EXPECT_GT(replication->Find("records_sent")->AsNumber(), 0.0);
  EXPECT_EQ(replication->Find("lag")->AsNumber(), 0.0);
  EXPECT_EQ(replication->Find("failures")->AsNumber(), 0.0);
}

// -- Degraded reads ---------------------------------------------------------

// When no live node owns a tenancy, a `report` must degrade, not lie: a
// node holding the replicated snapshot (even one the placement has marked
// dead — suspicion is per-connection, and a cheap read is the right probe)
// serves the last period boundary tagged `"stale": true`, while a tenancy
// no reachable node has state for answers NotFound. Before this
// distinction the router collapsed both into the same Internal error.
TEST(ClusterStaleReadTest, DeadOwnerDegradesToStaleSnapshotNotNotFound) {
  constexpr int kTenants = 6;
  constexpr int kSlots = 12;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      Jitter(scenario->tenants, kSlots, 7300),
      Jitter(scenario->tenants, kSlots, 7301)};
  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, kTenants, kSlots, periods);

  std::unique_ptr<TestCluster> cluster = StartCluster(2, 2);
  ClusterRouter::Channel channel;
  for (const std::string& line : lines) {
    SendResilient(cluster->router.get(), &channel, line);
  }

  // The live answer at the period-2 boundary: what the stale read must
  // reproduce exactly (it is the same replicated snapshot).
  Request report;
  report.op = RequestOp::kReport;
  report.tenancy = "acme";
  const Response live = cluster->router->Route(report, &channel);
  ASSERT_TRUE(live.ok()) << live.status.ToString();
  ASSERT_EQ(live.payload.Find("periods_run")->AsNumber(), 2.0);
  const double live_balance =
      live.payload.Find("cumulative_balance")->AsNumber();
  const std::string live_built =
      live.payload.Find("built_structures")->Dump();

  // Kill the owner outright, and mark the surviving replica dead in the
  // placement (another connection's suspicion — the node is actually fine).
  // Now no live node owns anything.
  const std::string owner = cluster->OwnerIdOf("acme");
  std::string replica;
  for (const auto& node : cluster->nodes) {
    if (node->id() != owner) replica = node->id();
  }
  cluster->NodeById(owner)->Stop();
  PlacementMap suspected = cluster->router->CurrentPlacement();
  ASSERT_TRUE(suspected.MarkDead(replica));
  Request push;
  push.op = RequestOp::kClusterUpdate;
  push.placement = suspected.ToJson();
  ASSERT_TRUE(cluster->router->Route(push, &channel).ok());

  // The degraded read: still a successful report, explicitly stale, and
  // carrying exactly the replicated boundary accounting.
  const Response stale = cluster->router->Route(report, &channel);
  ASSERT_TRUE(stale.ok()) << stale.status.ToString();
  ASSERT_NE(stale.payload.Find("stale"), nullptr)
      << "degraded report must carry the stale marker";
  EXPECT_TRUE(stale.payload.Find("stale")->AsBool());
  EXPECT_EQ(stale.payload.Find("served_by")->AsString(), replica);
  EXPECT_EQ(stale.payload.Find("periods_run")->AsNumber(), 2.0);
  EXPECT_EQ(stale.payload.Find("period_open")->AsBool(), false);
  EXPECT_EQ(stale.payload.Find("cumulative_balance")->AsNumber(),
            live_balance);
  EXPECT_EQ(stale.payload.Find("built_structures")->Dump(), live_built);

  // A tenancy no reachable node has state for is NotFound — not the old
  // blanket Internal, and not a stale fabrication.
  Request ghost;
  ghost.op = RequestOp::kReport;
  ghost.tenancy = "ghost";
  const Response missing = cluster->router->Route(ghost, &channel);
  EXPECT_EQ(missing.status.code(), StatusCode::kNotFound)
      << missing.status.ToString();
  EXPECT_NE(missing.status.message().find("unknown tenancy \"ghost\""),
            std::string::npos)
      << missing.status.message();

  // The router counted the degraded serve.
  const JsonValue info = cluster->router->InfoJson();
  EXPECT_GE(info.Find("routing")->Find("stale_reads")->AsNumber(), 1.0);

  // Mutations never degrade: with no live owner they fail loudly.
  Request advance;
  advance.op = RequestOp::kAdvanceSlot;
  advance.tenancy = "acme";
  advance.slots = 1;
  const Response refused = cluster->router->Route(advance, &channel);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.status.code(), StatusCode::kNotFound);
}

// -- The retryable failover signal ------------------------------------------

Response ParseResponseLine(const std::string& line) {
  Result<JsonValue> doc = JsonValue::Parse(line);
  EXPECT_TRUE(doc.ok()) << line;
  if (!doc.ok()) return Response{};
  Result<Response> response = service::protocol::ResponseFromJson(*doc);
  EXPECT_TRUE(response.ok()) << line;
  return response.ok() ? std::move(*response) : Response{};
}

// A failed-over mutation must answer the dedicated retryable code —
// Unavailable, carrying the post-failover placement version — in BOTH
// failover branches: the forward that dies mid-request, and the failover
// restore that itself fails. Before this the router answered a generic
// Internal whose only machine-readable content was the substring "retry".
TEST(ClusterFailoverSignalTest, BothFailoverBranchesAnswerTypedUnavailable) {
  constexpr int kTenants = 4;
  constexpr int kSlots = 8;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      Jitter(scenario->tenants, kSlots, 7500)};
  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, kTenants, kSlots, periods);

  std::unique_ptr<TestCluster> cluster = StartCluster(3, 1);
  ClusterRouter::Channel channel;
  ASSERT_TRUE(ParseResponseLine(
                  cluster->router->RouteLine(lines[0], &channel))
                  .ok());
  const auto version_before = cluster->router->CurrentPlacement().version();

  // Branch 1: the forward dies mid-request. The mutation is NOT silently
  // retried; it answers Unavailable with the bumped placement version.
  const std::string owner = cluster->OwnerIdOf("acme");
  cluster->NodeById(owner)->Stop();
  const Response forward_failed =
      ParseResponseLine(cluster->router->RouteLine(lines[1], &channel));
  EXPECT_FALSE(forward_failed.ok());
  EXPECT_EQ(forward_failed.status.code(), StatusCode::kUnavailable)
      << forward_failed.status.ToString();
  EXPECT_NE(forward_failed.status.message().find("placement"),
            std::string::npos)
      << forward_failed.status.message();
  EXPECT_GT(cluster->router->CurrentPlacement().version(), version_before);

  // The client-side discipline: exactly one resend, routed to the
  // recovered owner, succeeds.
  const Response resent =
      ParseResponseLine(cluster->router->RouteLine(lines[1], &channel));
  EXPECT_TRUE(resent.ok()) << resent.status.ToString();

  // Branch 2: the failover restore itself fails. Kill the remaining
  // nodes; the first mutation marks the recorded owner dead (branch 1
  // again), and the next one re-homes toward the last "live" node, whose
  // restore cannot connect — that failure must be Unavailable too.
  for (auto& node : cluster->nodes) node->Stop();
  const Response dead_owner =
      ParseResponseLine(cluster->router->RouteLine(lines[2], &channel));
  EXPECT_EQ(dead_owner.status.code(), StatusCode::kUnavailable)
      << dead_owner.status.ToString();
  const Response restore_failed =
      ParseResponseLine(cluster->router->RouteLine(lines[2], &channel));
  EXPECT_EQ(restore_failed.status.code(), StatusCode::kUnavailable)
      << restore_failed.status.ToString();
  EXPECT_NE(restore_failed.status.message().find("failover restore"),
            std::string::npos)
      << restore_failed.status.message();
}

// -- Batch routing ----------------------------------------------------------

// One v3 batch frame through the router must answer member docs
// byte-identical to the same program sent line by line against an
// identical cluster — the batch split/reassemble path cannot diverge from
// the single-request path.
TEST(ClusterBatchTest, RoutedBatchMatchesSequentialSendsByteForByte) {
  constexpr int kTenants = 4;
  constexpr int kSlots = 8;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  const std::vector<std::vector<simdb::SimUser>> periods = {
      Jitter(scenario->tenants, kSlots, 7600),
      Jitter(scenario->tenants, kSlots, 7601)};
  const std::vector<std::string> lines =
      RecordRequestLines("acme", config, kTenants, kSlots, periods);

  // Reference: the program line by line.
  std::vector<std::string> sequential;
  {
    std::unique_ptr<TestCluster> cluster = StartCluster(3, 2);
    ClusterRouter::Channel channel;
    for (const std::string& line : lines) {
      sequential.push_back(cluster->router->RouteLine(line, &channel));
    }
  }

  // The same program as one batch frame, against a fresh identical
  // cluster.
  std::unique_ptr<TestCluster> cluster = StartCluster(3, 2);
  ClusterRouter::Channel channel;
  Request batch;
  batch.op = RequestOp::kBatch;
  batch.version = 3;
  batch.id = "b1";
  for (const std::string& line : lines) {
    Result<JsonValue> doc = JsonValue::Parse(line);
    ASSERT_TRUE(doc.ok());
    Result<Request> member = service::protocol::RequestFromJson(*doc);
    ASSERT_TRUE(member.ok()) << member.status().ToString();
    batch.requests.push_back(std::move(*member));
  }
  const Response response = cluster->router->Route(batch, &channel);
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(response.id, "b1");
  const JsonValue* docs = response.payload.Find("responses");
  ASSERT_NE(docs, nullptr);
  ASSERT_TRUE(docs->is_array());
  ASSERT_EQ(docs->AsArray().size(), lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(docs->AsArray()[i].Dump(), sequential[i]) << "member " << i;
  }
}

}  // namespace
}  // namespace optshare::cluster
