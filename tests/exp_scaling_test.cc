// Integration test for the collaboration-scaling extension experiment.
#include "exp/scaling.h"

#include <gtest/gtest.h>

namespace optshare::exp {
namespace {

TEST(GroupScalingTest, UtilityGrowsWithGroupSize) {
  ScalingConfig config;
  config.group_sizes = {2, 6, 24};
  config.trials = 200;
  const auto points = RunGroupScaling(config);
  ASSERT_EQ(points.size(), 3u);

  // Larger groups fund the optimization more often: AddOn utility grows.
  EXPECT_GT(points[2].addon_utility, points[1].addon_utility);
  EXPECT_GT(points[1].addon_utility, points[0].addon_utility);
  EXPECT_GT(points[2].subst_utility, points[0].subst_utility);

  // AddOn never negative at any size.
  for (const auto& p : points) {
    EXPECT_GE(p.addon_utility, -1e-9);
    EXPECT_GE(p.subst_utility, -1e-9);
  }
}

TEST(GroupScalingTest, TinyGroupsCannotFundCostlyOpt) {
  ScalingConfig config;
  config.group_sizes = {2};
  config.cost = 3.0;  // Expected total value of 2 users is 1.0.
  config.trials = 200;
  const auto points = RunGroupScaling(config);
  EXPECT_NEAR(points[0].addon_utility, 0.0, 1e-9);
}

}  // namespace
}  // namespace optshare::exp
