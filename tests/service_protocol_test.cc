// Protocol-layer coverage: JSON round-trips of every request/response
// variant, strict rejection of unknown fields and foreign schema versions,
// and the typed error mapping onto common/Status.
#include "service/protocol.h"

#include <gtest/gtest.h>

namespace optshare::service::protocol {
namespace {

simdb::SimUser SampleTenant() {
  simdb::SimUser tenant;
  tenant.start = 2;
  tenant.end = 9;
  tenant.executions_per_slot = 137.5;
  simdb::Workload::Entry entry;
  entry.frequency = 2.5;
  entry.query.table = "telemetry";
  entry.query.aggregate = true;
  entry.query.predicates = {{"device", 2e-7}, {"metric", 0.015625}};
  tenant.workload.entries.push_back(entry);
  simdb::Workload::Entry scan;
  scan.frequency = 1.0;
  scan.query.table = "telemetry";
  scan.query.aggregate = false;
  tenant.workload.entries.push_back(scan);
  return tenant;
}

Request SampleRequest(RequestOp op) {
  Request request;
  request.op = op;
  request.id = "req-42";
  if (OpTakesTenancy(op)) request.tenancy = "acme";
  switch (op) {
    case RequestOp::kOpenPeriod: {
      CatalogSpec catalog;
      catalog.scenario = "telemetry";
      catalog.scenario_tenants = 5;
      catalog.scenario_slots = 8;
      request.catalog = catalog;
      ServiceConfig config;
      config.slots_per_period = 8;
      config.maintenance_fraction = 0.125;
      config.mechanism = "naive_online";
      config.advisor.min_benefit_ratio = 0.25;
      config.advisor.propose_replicas = true;
      config.advisor.max_proposals = 3;
      config.pricing.instance_per_hour = 0.75;
      config.pricing.storage_per_gb_month = 0.21;
      request.config = config;
      break;
    }
    case RequestOp::kSubmit:
      request.tenants = {SampleTenant(), SampleTenant()};
      break;
    case RequestOp::kDepart:
      request.tenant = 3;
      break;
    case RequestOp::kAdvanceSlot:
      request.slots = 4;
      break;
    default:
      break;
  }
  return request;
}

class RequestRoundTripTest : public ::testing::TestWithParam<RequestOp> {};

TEST_P(RequestRoundTripTest, SerializesParsesAndReserializesIdentically) {
  const Request original = SampleRequest(GetParam());
  const JsonValue doc = ToJson(original);
  const std::string wire = doc.Dump();

  Result<Request> parsed = ParseRequestLine(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->op, original.op);
  EXPECT_EQ(parsed->id, original.id);
  EXPECT_EQ(parsed->tenancy, original.tenancy);

  // Bit-identical re-serialization is the round-trip guarantee the
  // differential replay suite rests on.
  EXPECT_EQ(ToJson(*parsed).Dump(), wire);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RequestRoundTripTest,
    ::testing::Values(RequestOp::kOpenPeriod, RequestOp::kSubmit,
                      RequestOp::kDepart, RequestOp::kAdvanceSlot,
                      RequestOp::kClosePeriod, RequestOp::kReport,
                      RequestOp::kListMechanisms, RequestOp::kSnapshot,
                      RequestOp::kRestore, RequestOp::kShutdown,
                      RequestOp::kServerInfo));

TEST(RequestParsing, PreservesTheClientVersion) {
  // A v1 document parses to a v1 request and re-serializes as v1 — the
  // round-trip that keeps journal replay and response echoing faithful.
  Request report = SampleRequest(RequestOp::kReport);
  report.version = 1;
  const std::string wire = ToJson(report).Dump();
  EXPECT_NE(wire.find("\"v\":1"), std::string::npos);
  Result<Request> parsed = ParseRequestLine(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->version, 1);
  EXPECT_EQ(ToJson(*parsed).Dump(), wire);
  // Default construction speaks the newest version.
  EXPECT_EQ(SampleRequest(RequestOp::kReport).version, kProtocolVersion);
}

TEST(RequestParsing, DurabilityOpsRequireVersion2) {
  for (RequestOp op : {RequestOp::kSnapshot, RequestOp::kRestore,
                       RequestOp::kShutdown, RequestOp::kServerInfo}) {
    EXPECT_EQ(RequestOpMinVersion(op), 2) << RequestOpName(op);
    JsonValue doc = ToJson(SampleRequest(op));
    doc.Set("v", JsonValue::Number(1.0));
    Result<Request> parsed = RequestFromJson(doc);
    ASSERT_FALSE(parsed.ok()) << RequestOpName(op);
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
  }
  EXPECT_EQ(RequestOpMinVersion(RequestOp::kReport), 1);
}

TEST(RequestParsing, PreservesVariantPayloads) {
  const Request submit = SampleRequest(RequestOp::kSubmit);
  Result<Request> parsed = ParseRequestLine(ToJson(submit).Dump());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->tenants.size(), 2u);
  EXPECT_EQ(parsed->tenants[0].start, 2);
  EXPECT_EQ(parsed->tenants[0].end, 9);
  EXPECT_EQ(parsed->tenants[0].executions_per_slot, 137.5);
  ASSERT_EQ(parsed->tenants[0].workload.entries.size(), 2u);
  EXPECT_EQ(parsed->tenants[0].workload.entries[0].query.predicates.size(),
            2u);
  EXPECT_EQ(parsed->tenants[0].workload.entries[0].query.predicates[1]
                .selectivity,
            0.015625);

  const Request open = SampleRequest(RequestOp::kOpenPeriod);
  parsed = ParseRequestLine(ToJson(open).Dump());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->catalog.has_value());
  EXPECT_EQ(parsed->catalog->scenario, "telemetry");
  EXPECT_EQ(parsed->catalog->scenario_tenants, 5);
  ASSERT_TRUE(parsed->config.has_value());
  EXPECT_EQ(parsed->config->mechanism, "naive_online");
  EXPECT_EQ(parsed->config->maintenance_fraction, 0.125);
  EXPECT_EQ(parsed->config->advisor.max_proposals, 3);
  EXPECT_TRUE(parsed->config->advisor.propose_replicas);
  EXPECT_EQ(parsed->config->pricing.storage_per_gb_month, 0.21);

  const Request depart = SampleRequest(RequestOp::kDepart);
  parsed = ParseRequestLine(ToJson(depart).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->tenant, 3);

  const Request advance = SampleRequest(RequestOp::kAdvanceSlot);
  parsed = ParseRequestLine(ToJson(advance).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->slots, 4);
}

TEST(RequestParsing, RejectsUnknownFields) {
  for (RequestOp op :
       {RequestOp::kOpenPeriod, RequestOp::kSubmit, RequestOp::kDepart,
        RequestOp::kAdvanceSlot, RequestOp::kClosePeriod, RequestOp::kReport,
        RequestOp::kListMechanisms, RequestOp::kSnapshot, RequestOp::kRestore,
        RequestOp::kShutdown, RequestOp::kServerInfo}) {
    JsonValue doc = ToJson(SampleRequest(op));
    doc.Set("surprise", JsonValue::Number(1.0));
    Result<Request> parsed = RequestFromJson(doc);
    ASSERT_FALSE(parsed.ok()) << RequestOpName(op);
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("surprise"), std::string::npos);
  }
  // Nested objects are strict too.
  JsonValue doc = ToJson(SampleRequest(RequestOp::kSubmit));
  doc.AsObject()["tenants"].AsArray()[0].Set("shoe_size",
                                             JsonValue::Number(43.0));
  EXPECT_FALSE(RequestFromJson(doc).ok());
}

TEST(RequestParsing, RejectsBadVersions) {
  // All live versions parse...
  for (double v : {1.0, 2.0, 3.0}) {
    JsonValue doc = ToJson(SampleRequest(RequestOp::kReport));
    doc.Set("v", JsonValue::Number(v));
    EXPECT_TRUE(RequestFromJson(doc).ok()) << v;
  }
  // ... a foreign one does not.
  JsonValue doc = ToJson(SampleRequest(RequestOp::kReport));
  doc.Set("v", JsonValue::Number(4.0));
  Result<Request> parsed = RequestFromJson(doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
  // Nor do fractional or missing versions.
  doc.Set("v", JsonValue::Number(1.5));
  EXPECT_FALSE(RequestFromJson(doc).ok());
  JsonValue missing = ToJson(SampleRequest(RequestOp::kReport));
  missing.AsObject().erase("v");
  EXPECT_FALSE(RequestFromJson(missing).ok());
}

TEST(RequestParsing, RejectsMalformedVariants) {
  // Unknown op tag.
  Result<Request> parsed =
      ParseRequestLine("{\"v\":1,\"op\":\"frobnicate\",\"tenancy\":\"a\"}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("frobnicate"), std::string::npos);

  // Missing tenancy on a tenancy op.
  EXPECT_FALSE(ParseRequestLine("{\"v\":1,\"op\":\"report\"}").ok());
  // Empty tenancy.
  EXPECT_FALSE(
      ParseRequestLine("{\"v\":1,\"op\":\"report\",\"tenancy\":\"\"}").ok());
  // Non-integer tenant id.
  EXPECT_FALSE(ParseRequestLine(
                   "{\"v\":1,\"op\":\"depart\",\"tenancy\":\"a\","
                   "\"tenant\":1.5}")
                   .ok());
  // Non-positive advance count.
  EXPECT_FALSE(ParseRequestLine(
                   "{\"v\":1,\"op\":\"advance_slot\",\"tenancy\":\"a\","
                   "\"slots\":0}")
                   .ok());
  // Catalog spec with both scenario and tables.
  EXPECT_FALSE(ParseRequestLine(
                   "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"a\","
                   "\"catalog\":{\"scenario\":\"retail\",\"tables\":[]}}")
                   .ok());
  // Catalog spec with neither.
  EXPECT_FALSE(ParseRequestLine(
                   "{\"v\":1,\"op\":\"open_period\",\"tenancy\":\"a\","
                   "\"catalog\":{}}")
                   .ok());
  // Not JSON at all.
  EXPECT_FALSE(ParseRequestLine("open please").ok());
}

TEST(CatalogSpecSerialization, InlineTablesRoundTrip) {
  CatalogSpec spec;
  simdb::TableDef table;
  table.name = "events";
  table.row_count = 123456789;
  table.columns = {{"id", simdb::ColumnType::kInt64, 1000000},
                   {"score", simdb::ColumnType::kDouble, 500},
                   {"kind", simdb::ColumnType::kString, 12}};
  spec.tables.push_back(table);

  Result<CatalogSpec> parsed = CatalogSpecFromJson(ToJson(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->tables.size(), 1u);
  EXPECT_EQ(parsed->tables[0].name, "events");
  EXPECT_EQ(parsed->tables[0].row_count, 123456789u);
  ASSERT_EQ(parsed->tables[0].columns.size(), 3u);
  EXPECT_EQ(parsed->tables[0].columns[1].type, simdb::ColumnType::kDouble);
  EXPECT_EQ(parsed->tables[0].columns[2].name, "kind");
  EXPECT_EQ(parsed->tables[0].columns[0].distinct_values, 1000000u);
  EXPECT_EQ(ToJson(*parsed).Dump(), ToJson(spec).Dump());

  // Unknown column types are rejected.
  JsonValue doc = ToJson(spec);
  doc.AsObject()["tables"].AsArray()[0].AsObject()["columns"].AsArray()[0]
      .Set("type", JsonValue::Str("uuid"));
  EXPECT_FALSE(CatalogSpecFromJson(doc).ok());
}

TEST(PeriodReportSerialization, RoundTripsBitIdentically) {
  PeriodReport report;
  report.period = 7;
  StructureOutcome outcome;
  outcome.name = "index(telemetry.device)";
  outcome.cost = 18.743664600219237;  // An actual full-precision cost.
  outcome.active = true;
  outcome.carried_over = true;
  outcome.num_candidates = 5;
  outcome.num_subscribers = 3;
  report.structures.push_back(outcome);
  report.ledger.total_cost = 18.803236892653082;
  report.ledger.user_value = {1786.6647069465894, 0.0, 1286.3985890015442};
  report.ledger.user_payment = {9.401618446326541, 0.0, 9.401618446326541};

  Result<PeriodReport> parsed = PeriodReportFromJson(ToJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->period, 7);
  ASSERT_EQ(parsed->structures.size(), 1u);
  EXPECT_EQ(parsed->structures[0].cost, outcome.cost);
  EXPECT_EQ(parsed->ledger.user_value, report.ledger.user_value);
  EXPECT_EQ(parsed->ledger.user_payment, report.ledger.user_payment);
  EXPECT_EQ(ToJson(*parsed).Dump(), ToJson(report).Dump());
}

TEST(ResponseSerialization, OkResponsesRoundTrip) {
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("tenant_ids", JsonValue::MakeArray());
  payload.AsObject()["tenant_ids"].Append(JsonValue::Number(0));
  Response response = OkResponse("req-1", std::move(payload));

  Result<Response> parsed = ResponseFromJson(ToJson(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok());
  EXPECT_EQ(parsed->id, "req-1");
  EXPECT_EQ(ToJson(*parsed).Dump(), ToJson(response).Dump());
}

TEST(ResponseSerialization, PreservesTheEchoedVersion) {
  Response response = OkResponse("req-1", JsonValue::MakeObject());
  response.version = 1;
  const std::string wire = ToJson(response).Dump();
  EXPECT_NE(wire.find("\"v\":1"), std::string::npos);
  Result<Response> parsed = ResponseFromJson(*JsonValue::Parse(wire));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->version, 1);
  EXPECT_EQ(ToJson(*parsed).Dump(), wire);
}

TEST(RequestParsing, OversizedLinesAreResourceExhausted) {
  std::string line = ToJson(SampleRequest(RequestOp::kSubmit)).Dump();
  Result<Request> parsed = ParseRequestLine(line, /*max_bytes=*/64);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  // 0 disables the cap; a generous cap passes.
  EXPECT_TRUE(ParseRequestLine(line).ok());
  EXPECT_TRUE(ParseRequestLine(line, line.size()).ok());
}

TEST(ResponseSerialization, ErrorCodesMapOntoStatus) {
  // Every non-OK status code survives the wire with its message.
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kInternal}) {
    const Response response =
        ErrorResponse("req-9", MakeStatus(code, "details here"));
    Result<Response> parsed = ResponseFromJson(ToJson(response));
    ASSERT_TRUE(parsed.ok()) << StatusCodeName(code);
    EXPECT_FALSE(parsed->ok());
    EXPECT_EQ(parsed->status.code(), code);
    EXPECT_EQ(parsed->status.message(), "details here");
    EXPECT_EQ(parsed->id, "req-9");
    EXPECT_EQ(ToJson(*parsed).Dump(), ToJson(response).Dump());
  }
}

TEST(ResponseSerialization, RejectsInconsistentDocuments) {
  // ok:true with an error block.
  EXPECT_FALSE(ResponseFromJson(
                   *JsonValue::Parse("{\"v\":1,\"ok\":true,\"result\":{},"
                                     "\"error\":{\"code\":\"Internal\","
                                     "\"message\":\"\"}}"))
                   .ok());
  // ok:false with a result block.
  EXPECT_FALSE(ResponseFromJson(
                   *JsonValue::Parse("{\"v\":1,\"ok\":false,\"result\":{},"
                                     "\"error\":{\"code\":\"Internal\","
                                     "\"message\":\"\"}}"))
                   .ok());
  // Unknown error code.
  EXPECT_FALSE(ResponseFromJson(
                   *JsonValue::Parse("{\"v\":1,\"ok\":false,\"error\":"
                                     "{\"code\":\"Gremlins\","
                                     "\"message\":\"\"}}"))
                   .ok());
  // "OK" as an error code is inconsistent.
  EXPECT_FALSE(ResponseFromJson(
                   *JsonValue::Parse("{\"v\":1,\"ok\":false,\"error\":"
                                     "{\"code\":\"OK\",\"message\":\"\"}}"))
                   .ok());
  // Version checks apply to responses too.
  EXPECT_FALSE(ResponseFromJson(
                   *JsonValue::Parse("{\"v\":4,\"ok\":true,\"result\":{}}"))
                   .ok());
}

TEST(StatusCodeMapping, NamesRoundTrip) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kInternal}) {
    std::optional<StatusCode> back = StatusCodeFromName(StatusCodeName(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(StatusCodeFromName("NotACode").has_value());
}

}  // namespace
}  // namespace optshare::service::protocol
