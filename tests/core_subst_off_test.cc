// Tests for SubstOff (paper §6.1, Mechanism 3), tracing Examples 5, 6 and 7
// and the §6.2 multiple-identities example.
#include "core/subst_off.h"

#include <gtest/gtest.h>

#include "core/accounting.h"
#include "core/strategy.h"

namespace optshare {
namespace {

// Paper Example 5: costs C1=60, C2=180, C3=100 (0-indexed 0,1,2); bids
// user0 ({0,1},100), user1 ({2},101), user2 ({0,1,2},60), user3 ({1},70).
SubstOfflineGame Example5Game() {
  SubstOfflineGame g;
  g.costs = {60.0, 180.0, 100.0};
  g.users = {
      {{0, 1}, 100.0},
      {{2}, 101.0},
      {{0, 1, 2}, 60.0},
      {{1}, 70.0},
  };
  return g;
}

TEST(SubstOffTest, Example6PhaseOneImplementsCheapestShare) {
  SubstOffResult r = RunSubstOff(Example5Game());
  // Phase 1: opt 0 has share 60/2 = 30 over users {0, 2}; implemented first.
  ASSERT_GE(r.implemented.size(), 1u);
  EXPECT_EQ(r.implemented[0], 0);
  EXPECT_DOUBLE_EQ(r.cost_share[0], 30.0);
  EXPECT_EQ(r.GrantedUsers(0), (std::vector<UserId>{0, 2}));
}

TEST(SubstOffTest, Example6PhaseTwoServicesRemainingUsers) {
  SubstOffResult r = RunSubstOff(Example5Game());
  // Phase 2 over users {1, 3} and opts {1, 2}: S_1 = {} (70 < 90 and
  // 180 alone too dear), S_2 = {1}; opt 2 implemented for user 1.
  ASSERT_EQ(r.implemented.size(), 2u);
  EXPECT_EQ(r.implemented[1], 2);
  EXPECT_DOUBLE_EQ(r.cost_share[1], 100.0);
  EXPECT_EQ(r.GrantedUsers(2), std::vector<UserId>{1});
  // User 3 gets nothing.
  EXPECT_EQ(r.grant[3], kNoOpt);
  EXPECT_DOUBLE_EQ(r.payments[3], 0.0);
}

TEST(SubstOffTest, Example6Payments) {
  SubstOffResult r = RunSubstOff(Example5Game());
  EXPECT_DOUBLE_EQ(r.payments[0], 30.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 100.0);
  EXPECT_DOUBLE_EQ(r.payments[2], 30.0);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 160.0);
  EXPECT_DOUBLE_EQ(r.ImplementedCost(Example5Game().costs), 160.0);
}

TEST(SubstOffTest, Example6Accounting) {
  SubstOfflineGame g = Example5Game();
  SubstOffResult r = RunSubstOff(g);
  Accounting acc = AccountSubstOff(g, r);
  EXPECT_DOUBLE_EQ(acc.TotalValue(), 100.0 + 101.0 + 60.0);
  EXPECT_DOUBLE_EQ(acc.TotalUtility(), 261.0 - 160.0);
  EXPECT_DOUBLE_EQ(acc.CloudBalance(), 0.0);
  EXPECT_TRUE(acc.CostRecovered());
  EXPECT_DOUBLE_EQ(acc.UserUtility(0), 70.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(1), 1.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(2), 30.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(3), 0.0);
}

TEST(SubstOffTest, Example7UnderbiddingLosesService) {
  // Example 7: user 2 (0-indexed) underbidding below the 30 share loses
  // service entirely (other shares are higher), dropping her utility to 0.
  SubstOfflineGame g = Example5Game();
  const double truthful = SubstOffUtilityUnderBid(g, 2, {0, 1, 2}, 60.0);
  EXPECT_DOUBLE_EQ(truthful, 30.0);
  const double underbid = SubstOffUtilityUnderBid(g, 2, {0, 1, 2}, 29.0);
  EXPECT_DOUBLE_EQ(underbid, 0.0);
  // Any bid at or above the share leaves the outcome unchanged.
  for (double b : {30.0, 45.0, 60.0, 500.0}) {
    EXPECT_DOUBLE_EQ(SubstOffUtilityUnderBid(g, 2, {0, 1, 2}, b), 30.0);
  }
}

TEST(SubstOffTest, Example7HidingAWantedOptimization) {
  // Example 7 (cont.): if user 2 hides opt 0 from her substitute set and
  // bids ({1,2}, 60), opt 0's share rises to 60 (user 0 alone); the
  // implemented configuration changes and user 2 ends strictly worse off
  // than her truthful utility of 30.
  SubstOfflineGame g = Example5Game();
  const double deviated = SubstOffUtilityUnderBid(g, 2, {1, 2}, 60.0);
  EXPECT_LT(deviated, 30.0);
}

TEST(SubstOffTest, TieBreaksTowardLowestOptId) {
  SubstOfflineGame g;
  g.costs = {50.0, 50.0};
  g.users = {{{0}, 60.0}, {{1}, 60.0}};
  SubstOffResult r = RunSubstOff(g);
  // Both opts feasible at share 50; phase 1 picks opt 0 deterministically,
  // phase 2 then implements opt 1.
  ASSERT_EQ(r.implemented.size(), 2u);
  EXPECT_EQ(r.implemented[0], 0);
  EXPECT_EQ(r.implemented[1], 1);
}

TEST(SubstOffTest, GrantedUsersLeaveRemainingPhases) {
  // Once granted, a user must not subsidize later optimizations.
  SubstOfflineGame g;
  g.costs = {10.0, 40.0};
  g.users = {
      {{0, 1}, 50.0},
      {{1}, 25.0},
  };
  SubstOffResult r = RunSubstOff(g);
  // Phase 1: opt 0 share 10 (user 0). Phase 2: opt 1 over user 1 alone:
  // 25 < 40, infeasible.
  EXPECT_EQ(r.implemented, std::vector<OptId>{0});
  EXPECT_EQ(r.grant[0], 0);
  EXPECT_EQ(r.grant[1], kNoOpt);
}

TEST(SubstOffTest, NoFeasibleOptimization) {
  SubstOfflineGame g;
  g.costs = {100.0, 100.0};
  g.users = {{{0}, 10.0}, {{1}, 20.0}};
  SubstOffResult r = RunSubstOff(g);
  EXPECT_TRUE(r.implemented.empty());
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
  EXPECT_EQ(r.grant[0], kNoOpt);
  EXPECT_EQ(r.grant[1], kNoOpt);
}

TEST(SubstOffTest, Section62DummyIdentitiesExample) {
  // §6.2: users {0,1,2} bid ({0},5), ({0,1},2.51), ({1},7); costs C0=6,
  // C1=5. Honest play implements opt 1 at share 2.5 for users 1 and 2.
  SubstOfflineGame honest;
  honest.costs = {6.0, 5.0};
  honest.users = {{{0}, 5.0}, {{0, 1}, 2.51}, {{1}, 7.0}};
  SubstOffResult r1 = RunSubstOff(honest);
  EXPECT_EQ(r1.implemented, std::vector<OptId>{1});
  EXPECT_EQ(r1.GrantedUsers(1), (std::vector<UserId>{1, 2}));
  EXPECT_DOUBLE_EQ(r1.payments[1], 2.5);
  EXPECT_DOUBLE_EQ(r1.payments[2], 2.5);

  // User 0 replaces her bid with dummies 0' and 0'' bidding ({0}, 2.5)
  // each (she runs her queries under a dummy identity). Opt 0's share over
  // {0', 0'', 1} falls to 6/3 = 2, now the cheapest: both optimizations
  // get implemented, per the paper's trace.
  SubstOfflineGame cheat;
  cheat.costs = honest.costs;
  cheat.users = {{{0}, 2.5}, {{0}, 2.5}, {{0, 1}, 2.51}, {{1}, 7.0}};
  SubstOffResult r2 = RunSubstOff(cheat);
  ASSERT_EQ(r2.implemented.size(), 2u);
  EXPECT_EQ(r2.implemented[0], 0);
  EXPECT_DOUBLE_EQ(r2.cost_share[0], 2.0);
  EXPECT_EQ(r2.GrantedUsers(0), (std::vector<UserId>{0, 1, 2}));
  EXPECT_EQ(r2.implemented[1], 1);
  // User 0's (person's) utility: value 5 - dummy payments 2*2 = 1; user 1:
  // 2.51 - 2 = 0.51; user 2 drops from 4.5 to 7 - 5 = 2. Dummies *can*
  // hurt others with substitutes — but only with knowledge of all bids.
  EXPECT_DOUBLE_EQ(r2.payments[0] + r2.payments[1], 4.0);
  EXPECT_DOUBLE_EQ(r2.payments[2], 2.0);
  EXPECT_DOUBLE_EQ(r2.payments[3], 5.0);
}

TEST(SubstOffTest, MatrixEntryPointWithPinnedUser) {
  // kInfiniteBid pins a user (SubstOn uses this): she is always granted
  // her optimization even if no one else bids.
  SubstOffResult r = RunSubstOffMatrix(
      {60.0, 50.0},
      {{kInfiniteBid, 0.0}, {0.0, 20.0}});
  EXPECT_TRUE(r.Implemented(0));
  EXPECT_EQ(r.grant[0], 0);
  EXPECT_DOUBLE_EQ(r.payments[0], 60.0);
  EXPECT_FALSE(r.Implemented(1));
}

}  // namespace
}  // namespace optshare
