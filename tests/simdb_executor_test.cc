// Tests for the row store + executor, including the cross-validation of
// the cost model's ordering claims against actually executed queries.
#include <gtest/gtest.h>

#include <algorithm>

#include "simdb/cost_model.h"
#include "simdb/executor.h"

namespace optshare::simdb {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_def_.name = "orders";
    table_def_.columns = {
        {"region", ColumnType::kInt64, 16},
        {"status", ColumnType::kInt64, 4},
        {"amount", ColumnType::kInt64, 1000},
    };
    table_def_.row_count = 20000;
    Rng rng(123);
    table_ = std::make_unique<StoredTable>(*StoredTable::Generate(
        table_def_, {{ValueDistribution::kZipf}, {}, {}}, rng));
  }

  TableDef table_def_;
  std::unique_ptr<StoredTable> table_;
};

TEST_F(ExecutorTest, GenerateHonorsShape) {
  EXPECT_EQ(table_->num_rows(), 20000u);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_GE(table_->At(r, 0), 0);
    EXPECT_LT(table_->At(r, 0), 16);
    EXPECT_LT(table_->At(r, 1), 4);
    EXPECT_LT(table_->At(r, 2), 1000);
  }
}

TEST_F(ExecutorTest, GenerateRejectsHugeTables) {
  TableDef huge = table_def_;
  huge.row_count = 100'000'000;
  Rng rng(1);
  EXPECT_FALSE(StoredTable::Generate(huge, {}, rng).ok());
}

TEST_F(ExecutorTest, ZipfSkewsKeyFrequencies) {
  // Key 0 must be much hotter than key 15 under Zipf.
  size_t hot = 0, cold = 0;
  for (size_t r = 0; r < table_->num_rows(); ++r) {
    if (table_->At(r, 0) == 0) ++hot;
    if (table_->At(r, 0) == 15) ++cold;
  }
  EXPECT_GT(hot, cold * 5);
}

TEST_F(ExecutorTest, SeqScanMatchesBruteForce) {
  ExecQuery q;
  q.predicates = {{"region", 3}, {"status", 1}};
  const ExecResult r = *ExecuteSeqScan(*table_, q);
  uint64_t expected = 0;
  for (size_t row = 0; row < table_->num_rows(); ++row) {
    if (table_->At(row, 0) == 3 && table_->At(row, 1) == 1) ++expected;
  }
  EXPECT_EQ(r.matched, expected);
  EXPECT_EQ(r.row_ids.size(), expected);
  EXPECT_EQ(r.rows_touched, table_->num_rows());
}

TEST_F(ExecutorTest, IndexScanAgreesWithSeqScan) {
  const HashIndex index = *HashIndex::Build(*table_, "region");
  ExecQuery q;
  q.predicates = {{"region", 2}, {"status", 0}};
  const ExecResult seq = *ExecuteSeqScan(*table_, q);
  const ExecResult idx = *ExecuteIndexScan(*table_, index, q);
  EXPECT_EQ(seq.matched, idx.matched);
  std::vector<uint32_t> a = seq.row_ids, b = idx.row_ids;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // The index touches only the key's rows — strictly fewer than the scan.
  EXPECT_LT(idx.rows_touched, seq.rows_touched);
}

TEST_F(ExecutorTest, IndexScanRequiresIndexedPredicate) {
  const HashIndex index = *HashIndex::Build(*table_, "region");
  ExecQuery q;
  q.predicates = {{"status", 0}};
  EXPECT_EQ(ExecuteIndexScan(*table_, index, q).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, ViewScanAgreesWithSeqScan) {
  const MaterializedViewData view =
      *MaterializedViewData::Build(*table_, "region", 1);
  ExecQuery q;
  q.predicates = {{"region", 1}, {"status", 2}};
  const ExecResult seq = *ExecuteSeqScan(*table_, q);
  const ExecResult via_view = *ExecuteViewScan(*table_, view, q);
  EXPECT_EQ(seq.matched, via_view.matched);
  EXPECT_LT(via_view.rows_touched, seq.rows_touched);
}

TEST_F(ExecutorTest, ViewScanRejectsWrongKey) {
  const MaterializedViewData view =
      *MaterializedViewData::Build(*table_, "region", 1);
  ExecQuery q;
  q.predicates = {{"region", 2}};  // Different key than the view's.
  EXPECT_EQ(ExecuteViewScan(*table_, view, q).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, SumAggregation) {
  ExecQuery q;
  q.predicates = {{"status", 3}};
  q.sum_column = "amount";
  const ExecResult r = *ExecuteSeqScan(*table_, q);
  double expected = 0.0;
  for (size_t row = 0; row < table_->num_rows(); ++row) {
    if (table_->At(row, 1) == 3) {
      expected += static_cast<double>(table_->At(row, 2));
    }
  }
  EXPECT_DOUBLE_EQ(r.sum, expected);
  EXPECT_TRUE(r.row_ids.empty());
}

TEST_F(ExecutorTest, UnknownColumnsAreErrors) {
  ExecQuery q;
  q.predicates = {{"nope", 1}};
  EXPECT_FALSE(ExecuteSeqScan(*table_, q).ok());
  q.predicates = {{"region", 1}};
  q.sum_column = "nope";
  EXPECT_FALSE(ExecuteSeqScan(*table_, q).ok());
  EXPECT_FALSE(HashIndex::Build(*table_, "nope").ok());
  EXPECT_FALSE(MaterializedViewData::Build(*table_, "nope", 0).ok());
}

TEST_F(ExecutorTest, RealizedSelectivityMatchesStatistics) {
  // A uniform column with d distinct values realizes ~1/d selectivity —
  // the assumption the cost model builds on.
  ExecQuery q;
  q.predicates = {{"status", 2}};
  const ExecResult r = *ExecuteSeqScan(*table_, q);
  const double realized =
      static_cast<double>(r.matched) / static_cast<double>(table_->num_rows());
  EXPECT_NEAR(realized, 0.25, 0.02);
}

TEST_F(ExecutorTest, CostModelOrderingMatchesExecutorTouchCounts) {
  // The cost model's central claim — index lookups beat scans on selective
  // predicates — must agree with the rows each executor strategy actually
  // touches. Estimation happens at cloud scale (the catalog's statistics);
  // execution at the materialized 20k-row instance. Both must prefer the
  // index on the selective "amount" column.
  Catalog catalog;
  TableDef at_scale = table_def_;
  at_scale.row_count = 100'000'000;
  ASSERT_TRUE(catalog.AddTable(at_scale).ok());
  const int idx_id = *catalog.AddOptimization(
      {OptKind::kSecondaryIndex, "orders", "amount", 1.0, ""});
  CostModel model(&catalog);

  Query stats_query;
  stats_query.table = "orders";
  stats_query.predicates = {{"amount", 1.0 / 1000}};
  stats_query.aggregate = true;
  const double scan_est = *model.QueryTime(stats_query, {});
  const double index_est = *model.QueryTime(stats_query, {idx_id});
  ASSERT_LT(index_est, scan_est);

  const HashIndex index = *HashIndex::Build(*table_, "amount");
  ExecQuery exec_query;
  exec_query.predicates = {{"amount", 500}};
  const ExecResult seq = *ExecuteSeqScan(*table_, exec_query);
  const ExecResult idx = *ExecuteIndexScan(*table_, index, exec_query);
  EXPECT_LT(idx.rows_touched, seq.rows_touched)
      << "cost model predicts index < scan, executor must agree";
}

TEST_F(ExecutorTest, IndexCoversAllKeys) {
  const HashIndex index = *HashIndex::Build(*table_, "status");
  uint64_t total = 0;
  for (int64_t key = 0; key < 4; ++key) {
    total += index.Lookup(key).size();
  }
  EXPECT_EQ(total, table_->num_rows());
  EXPECT_TRUE(index.Lookup(99).empty());
}

}  // namespace
}  // namespace optshare::simdb
