// Tests for the JSON document model, parser and serializer.
#include "common/json.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(JsonValue::Null().is_null());
  EXPECT_TRUE(JsonValue::Bool(true).is_bool());
  EXPECT_TRUE(JsonValue::Number(1.5).is_number());
  EXPECT_TRUE(JsonValue::Str("x").is_string());
  EXPECT_TRUE(JsonValue::MakeArray().is_array());
  EXPECT_TRUE(JsonValue::MakeObject().is_object());
}

TEST(JsonValueTest, ObjectAccess) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("a", JsonValue::Number(1.0));
  obj.Set("b", JsonValue::Str("two"));
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_DOUBLE_EQ(obj.Find("a")->AsNumber(), 1.0);
  EXPECT_EQ(obj.Find("b")->AsString(), "two");
  EXPECT_EQ(obj.Find("missing"), nullptr);
  EXPECT_EQ(JsonValue::Number(1.0).Find("a"), nullptr);  // Not an object.
}

TEST(JsonDumpTest, Scalars) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Number(2.5).Dump(), "2.5");
  EXPECT_EQ(JsonValue::Number(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonDumpTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::quiet_NaN()).Dump(),
            "null");
}

TEST(JsonDumpTest, CompactContainers) {
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::Number(1));
  arr.Append(JsonValue::Str("x"));
  EXPECT_EQ(arr.Dump(), "[1,\"x\"]");

  JsonValue obj = JsonValue::MakeObject();
  obj.Set("b", JsonValue::Number(2));
  obj.Set("a", JsonValue::Number(1));
  // Keys are sorted for deterministic output.
  EXPECT_EQ(obj.Dump(), "{\"a\":1,\"b\":2}");

  EXPECT_EQ(JsonValue::MakeArray().Dump(), "[]");
  EXPECT_EQ(JsonValue::MakeObject().Dump(), "{}");
}

TEST(JsonDumpTest, PrettyPrint) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("k", JsonValue::Number(1));
  EXPECT_EQ(obj.Dump(2), "{\n  \"k\": 1\n}");
}

TEST(JsonEscapeTest, SpecialCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonEscape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonEscape("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->AsBool());
  EXPECT_FALSE(JsonValue::Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.25")->AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-1e3")->AsNumber(), -1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hello\"")->AsString(), "hello");
}

TEST(JsonParseTest, Containers) {
  auto v = JsonValue::Parse(R"({"costs": [60, 180], "nested": {"x": true}})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* costs = v->Find("costs");
  ASSERT_NE(costs, nullptr);
  ASSERT_EQ(costs->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(costs->AsArray()[1].AsNumber(), 180.0);
  EXPECT_TRUE(v->Find("nested")->Find("x")->AsBool());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto v = JsonValue::Parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n} ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->AsArray().size(), 2u);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(JsonValue::Parse(R"("a\"b")")->AsString(), "a\"b");
  EXPECT_EQ(JsonValue::Parse(R"("line\nbreak")")->AsString(), "line\nbreak");
  EXPECT_EQ(JsonValue::Parse(R"("A")")->AsString(), "A");
  EXPECT_EQ(JsonValue::Parse(R"("é")")->AsString(), "\xC3\xA9");  // é.
  EXPECT_EQ(JsonValue::Parse(R"("€")")->AsString(),
            "\xE2\x82\xAC");  // €.
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\q\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\u12\"").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());  // Trailing garbage.
  EXPECT_FALSE(JsonValue::Parse("--1").ok());
}

TEST(JsonParseTest, DeepNestingIsBounded) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonRoundTripTest, DumpThenParse) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", JsonValue::Str("game \"x\"\n"));
  obj.Set("cost", JsonValue::Number(2.31));
  obj.Set("flag", JsonValue::Bool(false));
  obj.Set("nothing", JsonValue::Null());
  JsonValue arr = JsonValue::MakeArray();
  for (double d : {0.03, 0.21, 1e-9}) arr.Append(JsonValue::Number(d));
  obj.Set("sweep", std::move(arr));

  for (int indent : {-1, 0, 2, 4}) {
    auto parsed = JsonValue::Parse(obj.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << "indent " << indent;
    EXPECT_EQ(*parsed, obj) << "indent " << indent;
  }
}

}  // namespace
}  // namespace optshare
