// PlacementMap unit surface: deterministic consistent-hash assignment, the
// failover invariant (the replica of a tenancy IS its post-failover
// owner), override/versioning semantics, and exact serialization
// round-trips — the properties the router and nodes rely on to agree on
// ownership across processes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cluster/placement.h"

namespace optshare::cluster {
namespace {

std::vector<NodeInfo> ThreeNodes() {
  return {{"node-0", "127.0.0.1", 7501, false},
          {"node-1", "127.0.0.1", 7502, false},
          {"node-2", "127.0.0.1", 7503, false}};
}

TEST(PlacementTest, HashIsTheDocumentedFnv1a64) {
  // The cross-process contract: the ring hash is explicit FNV-1a 64, not
  // std::hash. These constants are the published FNV test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(PlacementTest, AssignmentIsDeterministicAndCoversAllNodes) {
  Result<PlacementMap> a = PlacementMap::Create(ThreeNodes());
  Result<PlacementMap> b = PlacementMap::Create(ThreeNodes());
  ASSERT_TRUE(a.ok() && b.ok());
  std::map<std::string, int> per_node;
  for (int t = 0; t < 200; ++t) {
    const std::string tenancy = "tenancy-" + std::to_string(t);
    auto owner_a = a->OwnerOf(tenancy);
    auto owner_b = b->OwnerOf(tenancy);
    ASSERT_TRUE(owner_a.has_value() && owner_b.has_value());
    // Two independently built maps agree on every owner.
    EXPECT_EQ(owner_a->id, owner_b->id);
    ++per_node[owner_a->id];
  }
  // With 64 vnodes per node the spread cannot degenerate to one node.
  EXPECT_EQ(per_node.size(), 3u);
  for (const auto& [id, count] : per_node) {
    EXPECT_GT(count, 20) << id << " is starved";
  }
}

TEST(PlacementTest, KillingANodeOnlyRehomesItsTenancies) {
  Result<PlacementMap> map = PlacementMap::Create(ThreeNodes());
  ASSERT_TRUE(map.ok());
  std::map<std::string, std::string> before;
  for (int t = 0; t < 100; ++t) {
    const std::string tenancy = "tenancy-" + std::to_string(t);
    before[tenancy] = map->OwnerOf(tenancy)->id;
  }
  ASSERT_TRUE(map->MarkDead("node-1"));
  for (const auto& [tenancy, owner] : before) {
    const std::string now = map->OwnerOf(tenancy)->id;
    if (owner == "node-1") {
      EXPECT_NE(now, "node-1");
    } else {
      // Consistent hashing: survivors' tenancies do not move.
      EXPECT_EQ(now, owner) << tenancy;
    }
  }
}

TEST(PlacementTest, FailoverOwnerIsTheReplicationTarget) {
  // THE cluster invariant: the node a tenancy's journal streams to
  // (ReplicaFor(t, owner)) is exactly the node that becomes owner when the
  // owner dies — so failover recovery is always local to the new owner.
  Result<PlacementMap> map = PlacementMap::Create(ThreeNodes());
  ASSERT_TRUE(map.ok());
  for (int t = 0; t < 100; ++t) {
    const std::string tenancy = "tenancy-" + std::to_string(t);
    const std::string owner = map->OwnerOf(tenancy)->id;
    auto replica = map->ReplicaFor(tenancy, owner);
    ASSERT_TRUE(replica.has_value());
    PlacementMap failed = *map;
    ASSERT_TRUE(failed.MarkDead(owner));
    EXPECT_EQ(failed.OwnerOf(tenancy)->id, replica->id) << tenancy;
  }
}

TEST(PlacementTest, OverridesPinUntilTheirNodeDies) {
  Result<PlacementMap> map = PlacementMap::Create(ThreeNodes());
  ASSERT_TRUE(map.ok());
  const std::string tenancy = "pinned";
  const std::string ring_owner = map->OwnerOf(tenancy)->id;
  // Pin to a different node.
  const std::string other = ring_owner == "node-0" ? "node-1" : "node-0";
  EXPECT_FALSE(map->SetOverride(tenancy, "nope"));
  ASSERT_TRUE(map->SetOverride(tenancy, other));
  EXPECT_EQ(map->OwnerOf(tenancy)->id, other);
  // A dead override falls back to the ring (where the replica lives).
  ASSERT_TRUE(map->MarkDead(other));
  EXPECT_NE(map->OwnerOf(tenancy)->id, other);
}

TEST(PlacementTest, MutationsBumpTheVersion) {
  Result<PlacementMap> map = PlacementMap::Create(ThreeNodes());
  ASSERT_TRUE(map.ok());
  const int64_t v0 = map->version();
  ASSERT_TRUE(map->MarkDead("node-2"));
  EXPECT_EQ(map->version(), v0 + 1);
  ASSERT_TRUE(map->MarkDead("node-2"));  // Already dead: no bump.
  EXPECT_EQ(map->version(), v0 + 1);
  ASSERT_TRUE(map->SetOverride("t", "node-0"));
  EXPECT_EQ(map->version(), v0 + 2);
}

TEST(PlacementTest, SerializationRoundTripsExactly) {
  Result<PlacementMap> map = PlacementMap::Create(ThreeNodes(), 32);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->MarkDead("node-2"));
  ASSERT_TRUE(map->SetOverride("acme", "node-1"));
  const JsonValue wire = map->ToJson();
  Result<PlacementMap> parsed = PlacementMap::FromJson(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Bit-identical re-serialization, same version, same assignments.
  EXPECT_EQ(parsed->ToJson().Dump(), wire.Dump());
  EXPECT_EQ(parsed->version(), map->version());
  EXPECT_EQ(parsed->vnodes(), 32);
  for (int t = 0; t < 50; ++t) {
    const std::string tenancy = "tenancy-" + std::to_string(t);
    EXPECT_EQ(parsed->OwnerOf(tenancy)->id, map->OwnerOf(tenancy)->id);
  }
  EXPECT_EQ(parsed->OwnerOf("acme")->id, "node-1");
}

TEST(PlacementTest, FromJsonRejectsMalformedDocuments) {
  const auto parse = [](const std::string& text) {
    Result<JsonValue> doc = JsonValue::Parse(text);
    EXPECT_TRUE(doc.ok()) << text;
    return PlacementMap::FromJson(*doc);
  };
  // Unknown field.
  EXPECT_FALSE(parse("{\"v\":1,\"vnodes\":64,\"nodes\":[],\"extra\":1}").ok());
  // No nodes.
  EXPECT_FALSE(parse("{\"v\":1,\"vnodes\":64,\"nodes\":[]}").ok());
  // Port out of range.
  EXPECT_FALSE(
      parse("{\"v\":1,\"vnodes\":64,\"nodes\":[{\"id\":\"a\",\"host\":\"h\","
            "\"port\":65536,\"dead\":false}]}")
          .ok());
  // Override targeting an unknown node.
  EXPECT_FALSE(
      parse("{\"v\":1,\"vnodes\":64,\"nodes\":[{\"id\":\"a\",\"host\":\"h\","
            "\"port\":1,\"dead\":false}],\"overrides\":{\"t\":\"nope\"}}")
          .ok());
  // Duplicate ids.
  EXPECT_FALSE(
      parse("{\"v\":1,\"vnodes\":64,\"nodes\":[{\"id\":\"a\",\"host\":\"h\","
            "\"port\":1,\"dead\":false},{\"id\":\"a\",\"host\":\"h\","
            "\"port\":2,\"dead\":false}]}")
          .ok());
  // A well-formed document parses.
  EXPECT_TRUE(
      parse("{\"v\":3,\"vnodes\":16,\"nodes\":[{\"id\":\"a\",\"host\":\"h\","
            "\"port\":1,\"dead\":false}],\"overrides\":{}}")
          .ok());
}

TEST(PlacementTest, NoLiveNodesMeansNoOwner) {
  Result<PlacementMap> map =
      PlacementMap::Create({{"only", "127.0.0.1", 1, false}});
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE(map->OwnerOf("t").has_value());
  // Single-node cluster: no replica exists.
  EXPECT_FALSE(map->ReplicaFor("t", "only").has_value());
  ASSERT_TRUE(map->MarkDead("only"));
  EXPECT_FALSE(map->OwnerOf("t").has_value());
}

}  // namespace
}  // namespace optshare::cluster
