// Tests for AddOn (paper §5, Mechanism 2), tracing Examples 2, 3 and 4 and
// the multiple-identities discussion of §5.2.
#include "core/add_on.h"

#include <gtest/gtest.h>

#include "common/money.h"
#include "core/accounting.h"
#include "core/strategy.h"

namespace optshare {
namespace {

// Paper Example 3: cost 100; bids (1,1,[101]), (1,3,[16,16,16]),
// (2,2,[26]), (2,2,[26]).
AdditiveOnlineGame Example3Game() {
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 100.0;
  g.users = {
      SlotValues::Single(1, 101.0),
      *SlotValues::Make(1, 3, {16.0, 16.0, 16.0}),
      SlotValues::Single(2, 26.0),
      SlotValues::Single(2, 26.0),
  };
  return g;
}

TEST(AddOnTest, Example3CumulativeSets) {
  AddOnResult r = RunAddOn(Example3Game());
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 1);
  // CS(1) = {user 0}: user 1's residual 48 < 100/2.
  EXPECT_EQ(r.cumulative[0], std::vector<UserId>{0});
  // CS(2) = CS(3) = all four users.
  EXPECT_EQ(r.cumulative[1], (std::vector<UserId>{0, 1, 2, 3}));
  EXPECT_EQ(r.cumulative[2], (std::vector<UserId>{0, 1, 2, 3}));
}

TEST(AddOnTest, Example3Payments) {
  AddOnResult r = RunAddOn(Example3Game());
  // Users leave at t = 1, 3, 2, 2 and pay 100, 25, 25, 25 (paper text).
  EXPECT_DOUBLE_EQ(r.payments[0], 100.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 25.0);
  EXPECT_DOUBLE_EQ(r.payments[2], 25.0);
  EXPECT_DOUBLE_EQ(r.payments[3], 25.0);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 175.0);  // Over-recovery is expected.
}

TEST(AddOnTest, Example3ActiveServiceSets) {
  AddOnResult r = RunAddOn(Example3Game());
  // S(t) keeps only users whose interval is still running.
  EXPECT_EQ(r.serviced[0], std::vector<UserId>{0});
  EXPECT_EQ(r.serviced[1], (std::vector<UserId>{1, 2, 3}));  // User 0 left.
  EXPECT_EQ(r.serviced[2], std::vector<UserId>{1});
}

TEST(AddOnTest, Example3CostShareDecreases) {
  AddOnResult r = RunAddOn(Example3Game());
  EXPECT_DOUBLE_EQ(r.cost_share[0], 100.0);
  EXPECT_DOUBLE_EQ(r.cost_share[1], 25.0);
  EXPECT_DOUBLE_EQ(r.cost_share[2], 25.0);
}

TEST(AddOnTest, Example3Accounting) {
  AdditiveOnlineGame g = Example3Game();
  AddOnResult r = RunAddOn(g);
  Accounting acc = AccountAddOn(g, r);
  // Realized values: 101 (user 0), 16+16 = 32 (user 1, serviced from t=2),
  // 26, 26.
  EXPECT_DOUBLE_EQ(acc.user_value[0], 101.0);
  EXPECT_DOUBLE_EQ(acc.user_value[1], 32.0);
  EXPECT_DOUBLE_EQ(acc.user_value[2], 26.0);
  EXPECT_DOUBLE_EQ(acc.user_value[3], 26.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(1), 7.0);  // Example 4: 32 - 25 = 7.
  EXPECT_TRUE(acc.CostRecovered());
  EXPECT_DOUBLE_EQ(acc.CloudBalance(), 75.0);
}

TEST(AddOnTest, Example2NaiveFreeRideIsClosed) {
  // Paper Example 2: cost 100, users (1,1,[101]) and (1,2,[26,26]). The
  // naive "charge once then free" scheme lets user 2 hide at t=1 and ride
  // free at t=2. Under AddOn, hiding (2,2,[26]) leaves her residual 26 <
  // 50, so she is serviced at t=2 only because user 1 already covered the
  // cost — but she still pays the t=2 share, not zero.
  AdditiveOnlineGame truth;
  truth.num_slots = 2;
  truth.cost = 100.0;
  truth.users = {
      SlotValues::Single(1, 101.0),
      *SlotValues::Make(1, 2, {26.0, 26.0}),
  };
  AddOnResult truthful = RunAddOn(truth);
  // Truthful: user 2's residual 52 >= 50 at t=1, both serviced, each pays
  // the share at departure.
  EXPECT_EQ(truthful.cumulative[0], (std::vector<UserId>{0, 1}));
  EXPECT_DOUBLE_EQ(truthful.payments[0], 50.0);
  EXPECT_DOUBLE_EQ(truthful.payments[1], 50.0);

  // Deviation: user 2 delays her declaration to (2,2,[26]). At t=2 her
  // residual 26 is below the even share 50 (user 1 stays pinned in CS), so
  // AddOn refuses to service her: utility 0 instead of the free ride worth
  // 26 that the naive scheme would have granted.
  const double truthful_utility = 52.0 - 50.0;
  const double deviated_utility =
      AddOnUtilityUnderBid(truth, 1, SlotValues::Single(2, 26.0));
  EXPECT_DOUBLE_EQ(deviated_utility, 0.0);
  EXPECT_LT(deviated_utility, truthful_utility);
}

TEST(AddOnTest, Example4OverbiddingWorstCase) {
  // Example 4: user 1 (0-indexed) truly values [16,16,16]. Overbidding
  // [17,17,17] with no future arrivals (the model-free worst case is the
  // game with only users 0 and 1) cannot raise her worst-case utility.
  AdditiveOnlineGame worst;
  worst.num_slots = 3;
  worst.cost = 100.0;
  worst.users = {
      SlotValues::Single(1, 101.0),
      *SlotValues::Make(1, 3, {16.0, 16.0, 16.0}),
  };
  const double truthful = AddOnUtilityUnderBid(
      worst, 1, *SlotValues::Make(1, 3, {16.0, 16.0, 16.0}));
  const double overbid = AddOnUtilityUnderBid(
      worst, 1, *SlotValues::Make(1, 3, {17.0, 17.0, 17.0}));
  EXPECT_LE(overbid, truthful + 1e-9);

  // Overbidding enough to get serviced alone (>= 50/slot residual) is
  // strictly harmful: she pays 50 for a true value of 48.
  const double big_overbid = AddOnUtilityUnderBid(
      worst, 1, *SlotValues::Make(1, 3, {50.0, 50.0, 50.0}));
  EXPECT_DOUBLE_EQ(big_overbid, 48.0 - 50.0);
  EXPECT_LT(big_overbid, truthful);
}

TEST(AddOnTest, NeverImplementedWhenValuesTooLow) {
  AdditiveOnlineGame g;
  g.num_slots = 4;
  g.cost = 1000.0;
  g.users = {SlotValues::Constant(1, 4, 10.0), SlotValues::Single(2, 50.0)};
  AddOnResult r = RunAddOn(g);
  EXPECT_FALSE(r.implemented);
  EXPECT_EQ(r.implemented_at, 0);
  EXPECT_DOUBLE_EQ(r.TotalPayment(), 0.0);
  for (const auto& s : r.serviced) EXPECT_TRUE(s.empty());
}

TEST(AddOnTest, LateArrivalTriggersImplementation) {
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 60.0;
  g.users = {
      SlotValues::Single(3, 40.0),  // Alone, cannot afford 60.
      SlotValues::Single(3, 40.0),
  };
  AddOnResult r = RunAddOn(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 3);
  EXPECT_DOUBLE_EQ(r.payments[0], 30.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 30.0);
}

TEST(AddOnTest, ResidualBidAggregatesFutureSlots) {
  // A user whose per-slot value is small but whose residual covers the
  // cost gets serviced at her arrival.
  AdditiveOnlineGame g;
  g.num_slots = 4;
  g.cost = 40.0;
  g.users = {SlotValues::Constant(1, 4, 11.0)};  // Residual 44 at t=1.
  AddOnResult r = RunAddOn(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 1);
  EXPECT_DOUBLE_EQ(r.payments[0], 40.0);
  Accounting acc = AccountAddOn(g, r);
  EXPECT_DOUBLE_EQ(acc.user_value[0], 44.0);
  EXPECT_DOUBLE_EQ(acc.UserUtility(0), 4.0);
}

TEST(AddOnTest, CostShareNeverIncreasesOverTime) {
  AdditiveOnlineGame g;
  g.num_slots = 5;
  g.cost = 90.0;
  g.users = {
      SlotValues::Single(1, 95.0),
      SlotValues::Single(2, 50.0),
      SlotValues::Single(3, 40.0),
      SlotValues::Single(4, 30.0),
      SlotValues::Single(5, 25.0),
  };
  AddOnResult r = RunAddOn(g);
  ASSERT_TRUE(r.implemented);
  double prev = kInfiniteBid;
  for (double share : r.cost_share) {
    EXPECT_LE(share, prev + 1e-12);
    prev = share;
  }
}

TEST(AddOnTest, DepartedUsersStayInCumulativeSet) {
  // Users who paid remain in CS so later arrivals' shares keep falling
  // (Mechanism 2 line 5).
  AdditiveOnlineGame g;
  g.num_slots = 2;
  g.cost = 100.0;
  g.users = {
      SlotValues::Single(1, 100.0),
      SlotValues::Single(2, 60.0),
  };
  AddOnResult r = RunAddOn(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_TRUE(r.InCumulative(0, 1));
  EXPECT_TRUE(r.InCumulative(0, 2));  // Still there after departing.
  EXPECT_TRUE(r.InCumulative(1, 2));
  EXPECT_DOUBLE_EQ(r.payments[0], 100.0);
  EXPECT_DOUBLE_EQ(r.payments[1], 50.0);
}

TEST(AddOnTest, AliceMultipleIdentities) {
  // §5.2: Alice (value 101, cost 101) plus 99 users of value 1. With one
  // identity only Alice is serviced and pays 101 (utility 0).
  AdditiveOnlineGame honest;
  honest.num_slots = 1;
  honest.cost = 101.0;
  honest.users = {SlotValues::Single(1, 101.0)};
  for (int i = 0; i < 99; ++i) {
    honest.users.push_back(SlotValues::Single(1, 1.0));
  }
  AddOnResult r1 = RunAddOn(honest);
  ASSERT_TRUE(r1.implemented);
  EXPECT_EQ(r1.cumulative[0], std::vector<UserId>{0});
  EXPECT_DOUBLE_EQ(r1.payments[0], 101.0);

  // With a second identity bidding 101, all 101 identities are serviced at
  // share 1.0: Alice pays 2, the 99 honest users pay 1 each — and no
  // honest user's utility decreased (Proposition 2).
  AdditiveOnlineGame split = honest;
  split.users.push_back(SlotValues::Single(1, 101.0));
  AddOnResult r2 = RunAddOn(split);
  ASSERT_TRUE(r2.implemented);
  EXPECT_EQ(r2.cumulative[0].size(), 101u);
  EXPECT_DOUBLE_EQ(r2.payments[0] + r2.payments[100], 2.0);
  for (int i = 1; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(r2.payments[static_cast<size_t>(i)], 1.0);
  }
}

TEST(AddOnTest, SingleSlotReducesToShapley) {
  // With z = 1 the mechanism degenerates to one Shapley run.
  AdditiveOnlineGame g;
  g.num_slots = 1;
  g.cost = 90.0;
  g.users = {SlotValues::Single(1, 40.0), SlotValues::Single(1, 30.0),
             SlotValues::Single(1, 35.0)};
  AddOnResult r = RunAddOn(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.cumulative[0], (std::vector<UserId>{0, 1, 2}));
  for (UserId i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r.payments[static_cast<size_t>(i)], 30.0);
  }
}

TEST(AddOnTest, MultiOptRunsIndependently) {
  MultiAdditiveOnlineGame g;
  g.num_slots = 2;
  g.costs = {50.0, 500.0};
  g.bids = {
      {SlotValues::Single(1, 60.0), SlotValues::Single(1, 10.0)},
      {SlotValues::Single(2, 30.0), SlotValues::Single(2, 20.0)},
  };
  auto results = RunAddOnAll(g);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].implemented);
  EXPECT_FALSE(results[1].implemented);
  Accounting acc = AccountAddOnAll(g, results);
  EXPECT_DOUBLE_EQ(acc.total_cost, 50.0);
  EXPECT_TRUE(acc.CostRecovered());
}

}  // namespace
}  // namespace optshare
