// Tests for halo catalog statistics (mass function, mass bands, mergers).
#include "astro/statistics.h"

#include <gtest/gtest.h>

#include <numeric>

#include "astro/universe.h"

namespace optshare::astro {
namespace {

HaloCatalog MakeCatalog(std::vector<double> masses) {
  HaloCatalog c;
  c.halo_mass = std::move(masses);
  c.halo_size.assign(c.halo_mass.size(), 1);
  c.halo_of.resize(c.halo_mass.size());
  std::iota(c.halo_of.begin(), c.halo_of.end(), 0);
  return c;
}

TEST(MassFunctionTest, CountsAllHalos) {
  const HaloCatalog c = MakeCatalog({1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  auto mf = ComputeMassFunction(c, 5);
  ASSERT_TRUE(mf.ok());
  EXPECT_EQ(mf->TotalHalos(), 6);
  EXPECT_EQ(mf->counts.size(), 5u);
}

TEST(MassFunctionTest, LogBinsSeparateDecades) {
  const HaloCatalog c = MakeCatalog({1.0, 1.1, 10.0, 11.0, 100.0});
  auto mf = ComputeMassFunction(c, 2);
  ASSERT_TRUE(mf.ok());
  // Bins split [0, 2] in log10: {1, 1.1, 10} vs {11?, 100}. 10 sits at the
  // boundary 1.0 -> bin index 1 exactly... verify only totals + nonempty
  // extremes.
  EXPECT_EQ(mf->TotalHalos(), 5);
  EXPECT_GT(mf->counts.front(), 0);
  EXPECT_GT(mf->counts.back(), 0);
}

TEST(MassFunctionTest, ErrorsOnBadInput) {
  EXPECT_FALSE(ComputeMassFunction(HaloCatalog{}, 4).ok());
  const HaloCatalog c = MakeCatalog({1.0});
  EXPECT_FALSE(ComputeMassFunction(c, 0).ok());
}

TEST(MassBandTest, QuartilesPartitionByMass) {
  const HaloCatalog c =
      MakeCatalog({1, 2, 3, 4, 5, 6, 7, 8});  // Ranked 7..0 by mass.
  const auto cluster = *HalosInBand(c, MassBand::kCluster);
  const auto dwarf = *HalosInBand(c, MassBand::kDwarf);
  ASSERT_EQ(cluster.size(), 2u);
  ASSERT_EQ(dwarf.size(), 2u);
  // Cluster band holds the two heaviest halos (ids 7, 6).
  EXPECT_EQ(cluster[0], 7);
  EXPECT_EQ(cluster[1], 6);
  // Dwarf band holds the two lightest (ids 1, 0).
  EXPECT_EQ(dwarf[0], 1);
  EXPECT_EQ(dwarf[1], 0);
}

TEST(MassBandTest, BandsAreDisjointAndCoverCatalog) {
  const HaloCatalog c = MakeCatalog({5, 1, 9, 3, 7, 2, 8, 6});
  std::vector<bool> seen(8, false);
  for (MassBand band : {MassBand::kDwarf, MassBand::kSubMilkyWay,
                        MassBand::kMilkyWay, MassBand::kCluster}) {
    const auto band_halos = *HalosInBand(c, band);
    for (int h : band_halos) {
      EXPECT_FALSE(seen[static_cast<size_t>(h)]) << "halo in two bands";
      seen[static_cast<size_t>(h)] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(MassBandTest, TinyCatalogFallsBack) {
  const HaloCatalog c = MakeCatalog({2.0});
  for (MassBand band : {MassBand::kDwarf, MassBand::kCluster}) {
    auto halos = HalosInBand(c, band);
    ASSERT_TRUE(halos.ok());
    EXPECT_FALSE(halos->empty());
  }
}

TEST(MergerStatsTest, NoMergersWhenMembershipIdentical) {
  HaloCatalog a;
  a.halo_of = {0, 0, 1, 1, 2, 2};
  a.halo_mass = {2, 2, 2};
  a.halo_size = {2, 2, 2};
  auto stats = ComputeMergerStats(a, a);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->merged, 0);
  EXPECT_DOUBLE_EQ(stats->MergerFraction(), 0.0);
}

TEST(MergerStatsTest, DetectsAMerger) {
  HaloCatalog earlier;
  earlier.halo_of = {0, 0, 1, 1, 2, 2};
  earlier.halo_mass = {2, 2, 2};
  earlier.halo_size = {2, 2, 2};
  HaloCatalog later;  // Halos 0 and 1 merged into later halo 0.
  later.halo_of = {0, 0, 0, 0, 1, 1};
  later.halo_mass = {4, 2};
  later.halo_size = {4, 2};
  auto stats = ComputeMergerStats(earlier, later);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->earlier_halos, 3);
  EXPECT_EQ(stats->later_halos, 2);
  EXPECT_EQ(stats->merged, 2);  // Both progenitors share successor 0.
  EXPECT_NEAR(stats->MergerFraction(), 2.0 / 3.0, 1e-12);
}

TEST(MergerStatsTest, RejectsMismatchedParticleSets) {
  HaloCatalog a, b;
  a.halo_of = {0, 0};
  b.halo_of = {0};
  EXPECT_FALSE(ComputeMergerStats(a, b).ok());
}

TEST(MergerStatsTest, EndToEndOnSimulatedUniverse) {
  UniverseParams p;
  p.num_snapshots = 15;
  p.num_halos = 12;
  p.particles_per_halo = 24;
  p.merge_probability = 0.1;
  p.seed = 21;
  UniverseSimulator sim(p);
  const auto snapshots = sim.Run();
  std::vector<HaloCatalog> catalogs;
  for (const auto& s : snapshots) catalogs.push_back(*FindHalos(s, p.box_size));

  // Across the full run some mergers must register, and the mass function
  // of the last snapshot must account for every halo.
  int total_merged = 0;
  for (size_t k = 1; k < catalogs.size(); ++k) {
    total_merged += ComputeMergerStats(catalogs[k - 1], catalogs[k])->merged;
  }
  EXPECT_GT(total_merged, 0);

  auto mf = ComputeMassFunction(catalogs.back(), 6);
  ASSERT_TRUE(mf.ok());
  EXPECT_EQ(mf->TotalHalos(), catalogs.back().num_halos());
}

}  // namespace
}  // namespace optshare::astro
