#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace optshare {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.UniformInt(1, 6);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 6);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 6u);  // All die faces appear in 1000 rolls.
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, ExponentialIsPositiveWithRequestedMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(1.28);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.28, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    auto picks = rng.SampleWithoutReplacement(12, 3);
    ASSERT_EQ(picks.size(), 3u);
    std::set<int> distinct(picks.begin(), picks.end());
    EXPECT_EQ(distinct.size(), 3u);
    for (int p : picks) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 12);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSetIsPermutation) {
  Rng rng(31);
  auto perm = rng.Permutation(10);
  std::sort(perm.begin(), perm.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(perm[i], i);
}

TEST(RngTest, SampleWithoutReplacementUniformFirstElement) {
  // Each value should appear as the first pick about n/12 of the time.
  Rng rng(37);
  std::vector<int> counts(12, 0);
  const int n = 24000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(rng.SampleWithoutReplacement(12, 1)[0])];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 12, 300);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(41);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace optshare
