// TCP transport suite. The load-bearing guarantees:
//
//  1. Transport parity — a recorded request stream replayed through (a)
//     MarketplaceServer::HandleLine, (b) the shared RequestDispatcher +
//     OrderedLineWriter path the stdin serve loop runs, and (c) a
//     NetClient -> NetServer round trip over localhost TCP produces
//     byte-identical response lines. The cap wording, version echo and
//     error surface cannot diverge between transports because they are one
//     implementation (service/dispatch.h); this test pins that.
//
//  2. The 16-client soak: threaded NetClients each driving their own
//     tenancy through 3 full billing periods against one NetServer backed
//     by a FileStateStore, interleaved with mid-run disconnects and one
//     kill-and-recover cycle — every tenancy's PeriodReports bit-identical
//     to a single-client pipe (HandleLine) run of the same program.
//
//  3. Bounded backpressure: a reader that stops draining is cut off with a
//     typed ResourceExhausted and closed without ever blocking the event
//     loop or other connections.
#include "service/net_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "service/dispatch.h"
#include "service/net_client.h"
#include "service/pricing_session.h"
#include "service/state_store.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

std::vector<simdb::SimUser> JitterTenants(std::vector<simdb::SimUser> tenants,
                                          int slots, uint64_t seed) {
  Rng rng(seed);
  return simdb::JitterTenants(std::move(tenants), slots, rng);
}

/// Scratch dirs live under the working directory (the build tree when run
/// via ctest), so the suite never writes outside it.
std::string TempDir(const std::string& leaf) {
  return "optshare_net_test_scratch/" + leaf;
}

/// Runs the whole program directly through PricingSession — the reference
/// the networked replay must match bit for bit.
std::vector<PeriodReport> DirectReports(
    const simdb::Catalog& catalog, const ServiceConfig& config,
    const std::vector<std::vector<simdb::SimUser>>& periods) {
  std::vector<PeriodReport> reports;
  std::vector<std::string> built;
  for (size_t p = 0; p < periods.size(); ++p) {
    Result<PricingSession> session = PricingSession::Open(
        &catalog, config, built, static_cast<int>(p) + 1);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_TRUE(session->Submit(periods[p]).ok());
    for (int slot = 0; slot < config.slots_per_period; ++slot) {
      EXPECT_TRUE(session->AdvanceSlot().ok());
    }
    Result<PeriodReport> report = session->Close();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    built = session->built_structures();
    reports.push_back(std::move(*report));
  }
  return reports;
}

/// The wire lines of one period's program. `with_catalog` bootstraps the
/// tenancy (first-ever open_period).
std::vector<std::string> PeriodLines(
    const std::string& tenancy, const ServiceConfig& config,
    int scenario_tenants, int scenario_slots, bool with_catalog,
    const std::vector<simdb::SimUser>& tenants) {
  std::vector<std::string> lines;
  Request open;
  open.op = RequestOp::kOpenPeriod;
  open.tenancy = tenancy;
  if (with_catalog) {
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = scenario_tenants;
    catalog.scenario_slots = scenario_slots;
    open.catalog = catalog;
    open.config = config;
  }
  lines.push_back(protocol::ToJson(open).Dump());
  Request submit;
  submit.op = RequestOp::kSubmit;
  submit.tenancy = tenancy;
  submit.tenants = tenants;
  lines.push_back(protocol::ToJson(submit).Dump());
  Request advance;
  advance.op = RequestOp::kAdvanceSlot;
  advance.tenancy = tenancy;
  advance.slots = config.slots_per_period;
  lines.push_back(protocol::ToJson(advance).Dump());
  Request close;
  close.op = RequestOp::kClosePeriod;
  close.tenancy = tenancy;
  lines.push_back(protocol::ToJson(close).Dump());
  return lines;
}

/// Parses the close_period report out of a response line.
PeriodReport ReportFromLine(const std::string& line) {
  Result<JsonValue> doc = JsonValue::Parse(line);
  EXPECT_TRUE(doc.ok()) << line;
  Result<Response> response = protocol::ResponseFromJson(*doc);
  EXPECT_TRUE(response.ok()) << line;
  EXPECT_TRUE(response->ok()) << response->status.ToString();
  const JsonValue* report = response->payload.Find("report");
  EXPECT_NE(report, nullptr) << line;
  Result<PeriodReport> parsed = protocol::PeriodReportFromJson(*report);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(*parsed);
}

void ExpectBitIdentical(const PeriodReport& direct,
                        const PeriodReport& replayed) {
  // The JSON encoding round-trips doubles exactly, so string equality of
  // the dumps is bit-for-bit equality of payments, ledger and built set.
  EXPECT_EQ(protocol::ToJson(direct).Dump(), protocol::ToJson(replayed).Dump());
}

/// Starts a NetServer on an ephemeral loopback port.
std::unique_ptr<NetServer> StartNet(MarketplaceServer* server,
                                    NetServerOptions options = {}) {
  auto net = std::make_unique<NetServer>(server, std::move(options));
  Status started = net->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  EXPECT_GT(net->port(), 0);
  return net;
}

NetClient MustConnect(const NetServer& net) {
  Result<NetClient> client = NetClient::Connect("127.0.0.1", net.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

// -- 1. Transport parity ----------------------------------------------------

TEST(NetTransportParityTest, TcpAndStdinPathAndHandleLineAgreeByteForByte) {
  constexpr int kTenants = 5;
  constexpr int kSlots = 8;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = kSlots;

  // A recorded stream interleaving two tenancies' periods with the error
  // surface: a parse error, an unknown tenancy, a v1 client using a v2 op,
  // and an unknown field — every class a transport must answer itself.
  std::vector<std::string> stream;
  const std::vector<simdb::SimUser> acme =
      JitterTenants(scenario->tenants, kSlots, 11);
  const std::vector<simdb::SimUser> globex =
      JitterTenants(scenario->tenants, kSlots, 22);
  const auto acme_lines =
      PeriodLines("acme", config, kTenants, kSlots, true, acme);
  const auto globex_lines =
      PeriodLines("globex", config, kTenants, kSlots, true, globex);
  for (size_t i = 0; i < acme_lines.size(); ++i) {
    stream.push_back(acme_lines[i]);
    stream.push_back(globex_lines[i]);
  }
  stream.push_back("{this is not json");
  stream.push_back(R"({"v":1,"op":"report","tenancy":"nobody"})");
  stream.push_back(R"({"v":1,"op":"server_info"})");
  stream.push_back(R"({"v":1,"op":"list_mechanisms","bogus_field":true})");
  stream.push_back(R"({"v":1,"op":"report","tenancy":"acme"})");

  // (a) HandleLine, the synchronous reference.
  std::vector<std::string> via_handle_line;
  {
    MarketplaceServer server(ServerOptions{2});
    for (const std::string& line : stream) {
      via_handle_line.push_back(server.HandleLine(line));
    }
  }

  // (b) The stdin serve loop's exact path: RequestDispatcher +
  // OrderedLineWriter, all requests in flight together.
  std::vector<std::string> via_dispatcher;
  {
    MarketplaceServer server(ServerOptions{2});
    RequestDispatcher dispatcher(&server);
    std::mutex out_mu;
    OrderedLineWriter writer([&](std::string_view line) {
      std::lock_guard<std::mutex> lock(out_mu);
      via_dispatcher.emplace_back(line);
    });
    for (const std::string& line : stream) {
      const uint64_t slot = writer.Reserve();
      dispatcher.Submit(line, [slot, &writer](std::string_view response) {
        writer.Complete(slot, response);
      });
    }
    server.Drain();
    ASSERT_TRUE(writer.Idle());
  }

  // (c) Pipelined over localhost TCP.
  std::vector<std::string> via_tcp;
  {
    MarketplaceServer server(ServerOptions{2});
    auto net = StartNet(&server);
    NetClient client = MustConnect(*net);
    for (const std::string& line : stream) {
      ASSERT_TRUE(client.SendLine(line).ok());
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      Result<std::string> response = client.ReadLine();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      via_tcp.push_back(std::move(*response));
    }
  }

  ASSERT_EQ(via_handle_line.size(), stream.size());
  ASSERT_EQ(via_dispatcher.size(), stream.size());
  ASSERT_EQ(via_tcp.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(via_handle_line[i], via_dispatcher[i]) << "request " << i;
    EXPECT_EQ(via_handle_line[i], via_tcp[i]) << "request " << i;
  }
  // And the stream did real pricing: both close_periods carried reports.
  ExpectBitIdentical(ReportFromLine(via_handle_line[6]),
                     ReportFromLine(via_tcp[6]));
}

// -- 2. The 16-client soak --------------------------------------------------

/// One client's period over TCP: four round trips, returning the close
/// response line.
std::string RunPeriodOverTcp(NetClient& client, const std::string& tenancy,
                             const ServiceConfig& config, int scenario_tenants,
                             bool with_catalog,
                             const std::vector<simdb::SimUser>& tenants) {
  std::string close_line;
  for (const std::string& line :
       PeriodLines(tenancy, config, scenario_tenants,
                   config.slots_per_period, with_catalog, tenants)) {
    Result<std::string> response = client.Call(line);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) return "";
    close_line = std::move(*response);
  }
  return close_line;
}

/// A client that connects, stirs up partial traffic on a throwaway
/// tenancy, and vanishes mid-stream — the disconnect chaos the soak
/// interleaves with real clients.
void RunFlakyClient(uint16_t port, const std::string& tenancy,
                    const ServiceConfig& config, int scenario_tenants,
                    const std::vector<simdb::SimUser>& tenants) {
  Result<NetClient> client = NetClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto lines = PeriodLines(tenancy, config, scenario_tenants,
                                 config.slots_per_period, true, tenants);
  // Send the open and the submit, read only one response, then vanish with
  // the advance_slot response undelivered and the period still open.
  ASSERT_TRUE(client->SendLine(lines[0]).ok());
  ASSERT_TRUE(client->SendLine(lines[1]).ok());
  Result<std::string> first = client->ReadLine();
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(client->SendLine(lines[2]).ok());
  client->Close();
}

TEST(NetSoakTest, SixteenClientsThreePeriodsWithDisconnectsAndCrashRecover) {
  constexpr int kClients = 16;
  constexpr int kPeriods = 3;
  constexpr int kTenants = 4;
  constexpr int kSlots = 8;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = kSlots;
  const std::string dir = TempDir("soak");

  // Per-client tenant draws for every period, and the single-client
  // reference reports they must match bit for bit.
  std::vector<std::vector<std::vector<simdb::SimUser>>> programs;
  std::vector<std::vector<PeriodReport>> direct;
  for (int c = 0; c < kClients; ++c) {
    std::vector<std::vector<simdb::SimUser>> periods;
    for (int p = 0; p < kPeriods; ++p) {
      periods.push_back(JitterTenants(
          scenario->tenants, kSlots,
          9000 + static_cast<uint64_t>(100 * c + p)));
    }
    direct.push_back(DirectReports(scenario->catalog, config, periods));
    programs.push_back(std::move(periods));
  }

  const auto tenancy_name = [](int c) {
    return "soak-" + std::to_string(c);
  };
  std::vector<std::vector<std::string>> close_lines(kClients);

  // Runs one soak phase: every client executes periods [first, last) on
  // its own connection and thread, with flaky disconnecting clients
  // interleaved throughout.
  const auto run_phase = [&](const NetServer& net, int first, int last,
                             int flaky_seed) {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        NetClient client = MustConnect(net);
        for (int p = first; p < last; ++p) {
          const std::string line = RunPeriodOverTcp(
              client, tenancy_name(c), config, kTenants,
              /*with_catalog=*/p == 0,
              programs[static_cast<size_t>(c)][static_cast<size_t>(p)]);
          close_lines[static_cast<size_t>(c)].push_back(line);
        }
      });
    }
    for (int f = 0; f < 4; ++f) {
      threads.emplace_back([&, f] {
        RunFlakyClient(net.port(),
                       "flaky-" + std::to_string(flaky_seed) + "-" +
                           std::to_string(f),
                       config, kTenants,
                       JitterTenants(scenario->tenants, kSlots,
                                     static_cast<uint64_t>(777 + f)));
      });
    }
    for (std::thread& thread : threads) thread.join();
  };

  // Phase 1: period 1 for everyone, then kill the process state without
  // Shutdown — destructors drain in-flight work but checkpoint nothing,
  // exactly a crash after the last acknowledged response.
  {
    auto store = FileStateStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ServerOptions options;
    options.num_workers = 4;
    options.store = std::move(*store);
    auto server = std::make_unique<MarketplaceServer>(std::move(options));
    auto net = StartNet(server.get());
    run_phase(*net, 0, 1, 1);
    net->Stop();
    net.reset();
    server.reset();  // No Shutdown(): the kill.
  }

  // Phase 2: recover from the data dir and run periods 2 and 3. Carried
  // built-structure sets must survive the crash for the reports to match.
  {
    auto store = FileStateStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ServerOptions options;
    options.num_workers = 4;
    options.store = std::move(*store);
    MarketplaceServer server(std::move(options));
    Result<RecoveryStats> recovered = server.Recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // All 16 soak tenancies plus the flaky ones' journaled open periods.
    EXPECT_GE(recovered->tenancies_recovered, kClients);
    auto net = StartNet(&server);
    run_phase(*net, 1, kPeriods, 2);
    net->Stop();
  }

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(close_lines[static_cast<size_t>(c)].size(),
              static_cast<size_t>(kPeriods));
    ASSERT_EQ(direct[static_cast<size_t>(c)].size(),
              static_cast<size_t>(kPeriods));
    for (int p = 0; p < kPeriods; ++p) {
      SCOPED_TRACE("client " + std::to_string(c) + " period " +
                   std::to_string(p + 1));
      ExpectBitIdentical(
          direct[static_cast<size_t>(c)][static_cast<size_t>(p)],
          ReportFromLine(
              close_lines[static_cast<size_t>(c)][static_cast<size_t>(p)]));
    }
  }
}

// -- 3. Backpressure and robustness ----------------------------------------

TEST(NetBackpressureTest, SlowReaderIsCutOffWithoutBlockingOthers) {
  MarketplaceServer server(ServerOptions{2});
  NetServerOptions options;
  options.max_write_buffer_bytes = 16 * 1024;
  options.sndbuf_bytes = 8 * 1024;  // Trip the app-level cap quickly.
  auto net = StartNet(&server, options);

  // The slow reader: fires requests and never reads. Eventually the kernel
  // send buffer fills, responses pile up in the server's write buffer past
  // the cap, and the connection is condemned.
  NetClient slow = MustConnect(*net);
  const std::string request = R"({"v":1,"op":"list_mechanisms"})";
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(slow.SendLine(request).ok());
  }

  // Meanwhile a well-behaved client gets prompt service throughout.
  NetClient good = MustConnect(*net);
  for (int i = 0; i < 50; ++i) {
    Result<std::string> response = good.Call(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_NE(response->find("\"ok\":true"), std::string::npos);
  }

  // The drop must be observable in the transport counters.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (net->stats().connections_dropped_backpressure == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(net->stats().connections_dropped_backpressure, 1u);

  // Now drain: the slow client gets the queued (bounded) responses, then
  // the typed ResourceExhausted verdict, then EOF.
  std::string last_line;
  size_t lines_read = 0;
  for (;;) {
    Result<std::string> line = slow.ReadLine();
    if (!line.ok()) break;  // EOF: the server closed us.
    last_line = std::move(*line);
    ++lines_read;
  }
  ASSERT_GT(lines_read, 0u);
  // Far fewer than 4000: the buffer cap bounded what was ever queued.
  EXPECT_LT(lines_read, 2000u);
  EXPECT_NE(last_line.find("ResourceExhausted"), std::string::npos)
      << last_line;
  EXPECT_NE(last_line.find("reader too slow"), std::string::npos)
      << last_line;
}

TEST(NetServerTest, OversizeLineAnswersTypedErrorAndFramingSurvives) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_request_bytes = 256;
  MarketplaceServer server(std::move(options));
  auto net = StartNet(&server);
  NetClient client = MustConnect(*net);

  const std::string oversize(1000, 'x');
  ASSERT_TRUE(client.SendLine(oversize).ok());
  ASSERT_TRUE(client.SendLine(R"({"v":1,"op":"list_mechanisms"})").ok());

  Result<std::string> first = client.ReadLine();
  ASSERT_TRUE(first.ok());
  EXPECT_NE(first->find("ResourceExhausted"), std::string::npos) << *first;
  EXPECT_NE(first->find("--max-request-bytes"), std::string::npos) << *first;
  Result<std::string> second = client.ReadLine();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->find("\"ok\":true"), std::string::npos) << *second;
}

TEST(NetServerTest, HalfCloseDrainsEveryPipelinedResponse) {
  MarketplaceServer server(ServerOptions{2});
  auto net = StartNet(&server);
  NetClient client = MustConnect(*net);

  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.op = RequestOp::kListMechanisms;
    request.id = "req-" + std::to_string(i);
    ASSERT_TRUE(client.SendLine(protocol::ToJson(request).Dump()).ok());
  }
  ASSERT_TRUE(client.FinishSending().ok());

  // All responses arrive, in request order, then EOF.
  for (int i = 0; i < kRequests; ++i) {
    Result<std::string> line = client.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    EXPECT_NE(line->find("\"id\":\"req-" + std::to_string(i) + "\""),
              std::string::npos)
        << *line;
  }
  EXPECT_FALSE(client.ReadLine().ok());
}

TEST(NetServerTest, ServerInfoCarriesTransportCountersWhileRunning) {
  MarketplaceServer server(ServerOptions{1});
  auto net = StartNet(&server);
  NetClient client = MustConnect(*net);

  Request info;
  info.op = RequestOp::kServerInfo;
  info.version = 2;
  Result<Response> response = client.Call(info);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << response->status.ToString();
  const JsonValue* transport = response->payload.Find("transport");
  ASSERT_NE(transport, nullptr);
  EXPECT_GE(transport->Find("connections_open")->AsNumber(), 1.0);
  EXPECT_GE(transport->Find("connections_accepted")->AsNumber(), 1.0);
  EXPECT_GE(transport->Find("requests")->AsNumber(), 1.0);

  // Once the transport stops, server_info loses the section (and must not
  // touch freed NetServer state).
  client.Close();
  net->Stop();
  Request again;
  again.op = RequestOp::kServerInfo;
  again.version = 2;
  Response direct = server.Handle(std::move(again));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.payload.Find("transport"), nullptr);
}

TEST(NetServerTest, WireShutdownDrainsAndStateSurvivesToRecovery) {
  const std::string dir = TempDir("wire_shutdown");
  auto scenario = simdb::TelemetryScenario(4, 8);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = 8;

  {
    auto store = FileStateStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ServerOptions options;
    options.num_workers = 2;
    options.store = std::move(*store);
    MarketplaceServer server(std::move(options));
    auto net = StartNet(&server);

    NetClient client = MustConnect(*net);
    const std::string close_line = RunPeriodOverTcp(
        client, "durable", config, 4, /*with_catalog=*/true,
        JitterTenants(scenario->tenants, 8, 42));
    ASSERT_FALSE(close_line.empty());

    Request shutdown;
    shutdown.op = RequestOp::kShutdown;
    shutdown.version = 2;
    Result<Response> acked = client.Call(shutdown);
    ASSERT_TRUE(acked.ok()) << acked.status().ToString();
    EXPECT_TRUE(acked->ok());
    net->Wait();  // Returns once every connection drained.
    ASSERT_TRUE(server.Shutdown().ok());
    // The drained server closed us.
    EXPECT_FALSE(client.Call(std::string(
                                 R"({"v":1,"op":"list_mechanisms"})"))
                     .ok());
  }

  // A fresh process over the same dir sees the period.
  auto store = FileStateStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.num_workers = 1;
  options.store = std::move(*store);
  MarketplaceServer server(std::move(options));
  Result<RecoveryStats> recovered = server.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->tenancies_recovered, 1);
  Request report;
  report.op = RequestOp::kReport;
  report.tenancy = "durable";
  Response response = server.Handle(std::move(report));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.payload.Find("periods_run")->AsNumber(), 1.0);
}

}  // namespace
}  // namespace optshare::service
