// TCP transport suite. The load-bearing guarantees:
//
//  1. Transport parity — a recorded request stream replayed through (a)
//     MarketplaceServer::HandleLine, (b) the shared RequestDispatcher +
//     OrderedLineWriter path the stdin serve loop runs, and (c) a
//     NetClient -> NetServer round trip over localhost TCP produces
//     byte-identical response lines. The cap wording, version echo and
//     error surface cannot diverge between transports because they are one
//     implementation (service/dispatch.h); this test pins that.
//
//  2. The 16-client soak: threaded NetClients each driving their own
//     tenancy through 3 full billing periods against one NetServer backed
//     by a FileStateStore, interleaved with mid-run disconnects and one
//     kill-and-recover cycle — every tenancy's PeriodReports bit-identical
//     to a single-client pipe (HandleLine) run of the same program.
//
//  3. Bounded backpressure: a reader that stops draining is cut off with a
//     typed ResourceExhausted and closed without ever blocking the event
//     loop or other connections.
#include "service/net_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "service/dispatch.h"
#include "service/net_client.h"
#include "service/pricing_session.h"
#include "service/state_store.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

std::vector<simdb::SimUser> JitterTenants(std::vector<simdb::SimUser> tenants,
                                          int slots, uint64_t seed) {
  Rng rng(seed);
  return simdb::JitterTenants(std::move(tenants), slots, rng);
}

/// Scratch dirs live under the working directory (the build tree when run
/// via ctest), so the suite never writes outside it.
std::string TempDir(const std::string& leaf) {
  return "optshare_net_test_scratch/" + leaf;
}

/// Runs the whole program directly through PricingSession — the reference
/// the networked replay must match bit for bit.
std::vector<PeriodReport> DirectReports(
    const simdb::Catalog& catalog, const ServiceConfig& config,
    const std::vector<std::vector<simdb::SimUser>>& periods) {
  std::vector<PeriodReport> reports;
  std::vector<std::string> built;
  for (size_t p = 0; p < periods.size(); ++p) {
    Result<PricingSession> session = PricingSession::Open(
        &catalog, config, built, static_cast<int>(p) + 1);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_TRUE(session->Submit(periods[p]).ok());
    for (int slot = 0; slot < config.slots_per_period; ++slot) {
      EXPECT_TRUE(session->AdvanceSlot().ok());
    }
    Result<PeriodReport> report = session->Close();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    built = session->built_structures();
    reports.push_back(std::move(*report));
  }
  return reports;
}

/// The wire lines of one period's program. `with_catalog` bootstraps the
/// tenancy (first-ever open_period).
std::vector<std::string> PeriodLines(
    const std::string& tenancy, const ServiceConfig& config,
    int scenario_tenants, int scenario_slots, bool with_catalog,
    const std::vector<simdb::SimUser>& tenants) {
  std::vector<std::string> lines;
  Request open;
  open.op = RequestOp::kOpenPeriod;
  open.tenancy = tenancy;
  if (with_catalog) {
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = scenario_tenants;
    catalog.scenario_slots = scenario_slots;
    open.catalog = catalog;
    open.config = config;
  }
  lines.push_back(protocol::ToJson(open).Dump());
  Request submit;
  submit.op = RequestOp::kSubmit;
  submit.tenancy = tenancy;
  submit.tenants = tenants;
  lines.push_back(protocol::ToJson(submit).Dump());
  Request advance;
  advance.op = RequestOp::kAdvanceSlot;
  advance.tenancy = tenancy;
  advance.slots = config.slots_per_period;
  lines.push_back(protocol::ToJson(advance).Dump());
  Request close;
  close.op = RequestOp::kClosePeriod;
  close.tenancy = tenancy;
  lines.push_back(protocol::ToJson(close).Dump());
  return lines;
}

/// Parses the close_period report out of a response line.
PeriodReport ReportFromLine(const std::string& line) {
  Result<JsonValue> doc = JsonValue::Parse(line);
  EXPECT_TRUE(doc.ok()) << line;
  Result<Response> response = protocol::ResponseFromJson(*doc);
  EXPECT_TRUE(response.ok()) << line;
  EXPECT_TRUE(response->ok()) << response->status.ToString();
  const JsonValue* report = response->payload.Find("report");
  EXPECT_NE(report, nullptr) << line;
  Result<PeriodReport> parsed = protocol::PeriodReportFromJson(*report);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(*parsed);
}

void ExpectBitIdentical(const PeriodReport& direct,
                        const PeriodReport& replayed) {
  // The JSON encoding round-trips doubles exactly, so string equality of
  // the dumps is bit-for-bit equality of payments, ledger and built set.
  EXPECT_EQ(protocol::ToJson(direct).Dump(), protocol::ToJson(replayed).Dump());
}

/// Starts a NetServer on an ephemeral loopback port.
std::unique_ptr<NetServer> StartNet(MarketplaceServer* server,
                                    NetServerOptions options = {}) {
  auto net = std::make_unique<NetServer>(server, std::move(options));
  Status started = net->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  EXPECT_GT(net->port(), 0);
  return net;
}

NetClient MustConnect(const NetServer& net) {
  Result<NetClient> client = NetClient::Connect("127.0.0.1", net.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

// -- 1. Transport parity ----------------------------------------------------

TEST(NetTransportParityTest, TcpAndStdinPathAndHandleLineAgreeByteForByte) {
  constexpr int kTenants = 5;
  constexpr int kSlots = 8;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = kSlots;

  // A recorded stream interleaving two tenancies' periods with the error
  // surface: a parse error, an unknown tenancy, a v1 client using a v2 op,
  // and an unknown field — every class a transport must answer itself.
  std::vector<std::string> stream;
  const std::vector<simdb::SimUser> acme =
      JitterTenants(scenario->tenants, kSlots, 11);
  const std::vector<simdb::SimUser> globex =
      JitterTenants(scenario->tenants, kSlots, 22);
  const auto acme_lines =
      PeriodLines("acme", config, kTenants, kSlots, true, acme);
  const auto globex_lines =
      PeriodLines("globex", config, kTenants, kSlots, true, globex);
  for (size_t i = 0; i < acme_lines.size(); ++i) {
    stream.push_back(acme_lines[i]);
    stream.push_back(globex_lines[i]);
  }
  // The period lines fly fully pipelined; the trailing error surface +
  // final report go after an ack barrier. The snapshot-serving read path
  // promises read-your-writes only for ACKNOWLEDGED writes (see the
  // ordering note in MarketplaceServer::Dispatch), so an un-awaited
  // report pipelined behind close_period may legally serve the previous
  // period's view — not a transport divergence, and not what this test
  // pins.
  const size_t pipelined = stream.size();
  stream.push_back("{this is not json");
  stream.push_back(R"({"v":1,"op":"report","tenancy":"nobody"})");
  stream.push_back(R"({"v":1,"op":"server_info"})");
  stream.push_back(R"({"v":1,"op":"list_mechanisms","bogus_field":true})");
  stream.push_back(R"({"v":1,"op":"report","tenancy":"acme"})");

  // (a) HandleLine, the synchronous reference.
  std::vector<std::string> via_handle_line;
  {
    MarketplaceServer server(ServerOptions{2});
    for (const std::string& line : stream) {
      via_handle_line.push_back(server.HandleLine(line));
    }
  }

  // (b) The stdin serve loop's exact path: RequestDispatcher +
  // OrderedLineWriter, all requests in flight together.
  std::vector<std::string> via_dispatcher;
  {
    MarketplaceServer server(ServerOptions{2});
    RequestDispatcher dispatcher(&server);
    std::mutex out_mu;
    OrderedLineWriter writer([&](std::string_view line) {
      std::lock_guard<std::mutex> lock(out_mu);
      via_dispatcher.emplace_back(line);
    });
    for (size_t i = 0; i < stream.size(); ++i) {
      if (i == pipelined) server.Drain();  // Ack barrier before the reads.
      const uint64_t slot = writer.Reserve();
      dispatcher.Submit(stream[i],
                        [slot, &writer](std::string_view response) {
                          writer.Complete(slot, response);
                        });
    }
    server.Drain();
    ASSERT_TRUE(writer.Idle());
  }

  // (c) Pipelined over localhost TCP.
  std::vector<std::string> via_tcp;
  {
    MarketplaceServer server(ServerOptions{2});
    auto net = StartNet(&server);
    NetClient client = MustConnect(*net);
    for (size_t i = 0; i < pipelined; ++i) {
      ASSERT_TRUE(client.SendLine(stream[i]).ok());
    }
    for (size_t i = 0; i < pipelined; ++i) {
      Result<std::string> response = client.ReadLine();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      via_tcp.push_back(std::move(*response));
    }
    // Acks drained — the writes are visible; the trailing reads follow.
    for (size_t i = pipelined; i < stream.size(); ++i) {
      ASSERT_TRUE(client.SendLine(stream[i]).ok());
    }
    for (size_t i = pipelined; i < stream.size(); ++i) {
      Result<std::string> response = client.ReadLine();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      via_tcp.push_back(std::move(*response));
    }
  }

  ASSERT_EQ(via_handle_line.size(), stream.size());
  ASSERT_EQ(via_dispatcher.size(), stream.size());
  ASSERT_EQ(via_tcp.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(via_handle_line[i], via_dispatcher[i]) << "request " << i;
    EXPECT_EQ(via_handle_line[i], via_tcp[i]) << "request " << i;
  }
  // And the stream did real pricing: both close_periods carried reports.
  ExpectBitIdentical(ReportFromLine(via_handle_line[6]),
                     ReportFromLine(via_tcp[6]));
}

// -- 2. The 16-client soak --------------------------------------------------

/// One client's period over TCP: four round trips, returning the close
/// response line.
std::string RunPeriodOverTcp(NetClient& client, const std::string& tenancy,
                             const ServiceConfig& config, int scenario_tenants,
                             bool with_catalog,
                             const std::vector<simdb::SimUser>& tenants) {
  std::string close_line;
  for (const std::string& line :
       PeriodLines(tenancy, config, scenario_tenants,
                   config.slots_per_period, with_catalog, tenants)) {
    Result<std::string> response = client.Call(line);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) return "";
    close_line = std::move(*response);
  }
  return close_line;
}

/// A client that connects, stirs up partial traffic on a throwaway
/// tenancy, and vanishes mid-stream — the disconnect chaos the soak
/// interleaves with real clients.
void RunFlakyClient(uint16_t port, const std::string& tenancy,
                    const ServiceConfig& config, int scenario_tenants,
                    const std::vector<simdb::SimUser>& tenants) {
  Result<NetClient> client = NetClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto lines = PeriodLines(tenancy, config, scenario_tenants,
                                 config.slots_per_period, true, tenants);
  // Send the open and the submit, read only one response, then vanish with
  // the advance_slot response undelivered and the period still open.
  ASSERT_TRUE(client->SendLine(lines[0]).ok());
  ASSERT_TRUE(client->SendLine(lines[1]).ok());
  Result<std::string> first = client->ReadLine();
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(client->SendLine(lines[2]).ok());
  client->Close();
}

TEST(NetSoakTest, SixteenClientsThreePeriodsWithDisconnectsAndCrashRecover) {
  constexpr int kClients = 16;
  constexpr int kPeriods = 3;
  constexpr int kTenants = 4;
  constexpr int kSlots = 8;
  auto scenario = simdb::TelemetryScenario(kTenants, kSlots);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = kSlots;
  const std::string dir = TempDir("soak");

  // Per-client tenant draws for every period, and the single-client
  // reference reports they must match bit for bit.
  std::vector<std::vector<std::vector<simdb::SimUser>>> programs;
  std::vector<std::vector<PeriodReport>> direct;
  for (int c = 0; c < kClients; ++c) {
    std::vector<std::vector<simdb::SimUser>> periods;
    for (int p = 0; p < kPeriods; ++p) {
      periods.push_back(JitterTenants(
          scenario->tenants, kSlots,
          9000 + static_cast<uint64_t>(100 * c + p)));
    }
    direct.push_back(DirectReports(scenario->catalog, config, periods));
    programs.push_back(std::move(periods));
  }

  const auto tenancy_name = [](int c) {
    return "soak-" + std::to_string(c);
  };
  std::vector<std::vector<std::string>> close_lines(kClients);

  // Runs one soak phase: every client executes periods [first, last) on
  // its own connection and thread, with flaky disconnecting clients
  // interleaved throughout.
  const auto run_phase = [&](const NetServer& net, int first, int last,
                             int flaky_seed) {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        NetClient client = MustConnect(net);
        for (int p = first; p < last; ++p) {
          const std::string line = RunPeriodOverTcp(
              client, tenancy_name(c), config, kTenants,
              /*with_catalog=*/p == 0,
              programs[static_cast<size_t>(c)][static_cast<size_t>(p)]);
          close_lines[static_cast<size_t>(c)].push_back(line);
        }
      });
    }
    for (int f = 0; f < 4; ++f) {
      threads.emplace_back([&, f] {
        RunFlakyClient(net.port(),
                       "flaky-" + std::to_string(flaky_seed) + "-" +
                           std::to_string(f),
                       config, kTenants,
                       JitterTenants(scenario->tenants, kSlots,
                                     static_cast<uint64_t>(777 + f)));
      });
    }
    for (std::thread& thread : threads) thread.join();
  };

  // Phase 1: period 1 for everyone, then kill the process state without
  // Shutdown — destructors drain in-flight work but checkpoint nothing,
  // exactly a crash after the last acknowledged response.
  {
    auto store = FileStateStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ServerOptions options;
    options.num_workers = 4;
    options.store = std::move(*store);
    auto server = std::make_unique<MarketplaceServer>(std::move(options));
    auto net = StartNet(server.get());
    run_phase(*net, 0, 1, 1);
    net->Stop();
    net.reset();
    server.reset();  // No Shutdown(): the kill.
  }

  // Phase 2: recover from the data dir and run periods 2 and 3. Carried
  // built-structure sets must survive the crash for the reports to match.
  {
    auto store = FileStateStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ServerOptions options;
    options.num_workers = 4;
    options.store = std::move(*store);
    MarketplaceServer server(std::move(options));
    Result<RecoveryStats> recovered = server.Recover();
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // All 16 soak tenancies plus the flaky ones' journaled open periods.
    EXPECT_GE(recovered->tenancies_recovered, kClients);
    auto net = StartNet(&server);
    run_phase(*net, 1, kPeriods, 2);
    net->Stop();
  }

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(close_lines[static_cast<size_t>(c)].size(),
              static_cast<size_t>(kPeriods));
    ASSERT_EQ(direct[static_cast<size_t>(c)].size(),
              static_cast<size_t>(kPeriods));
    for (int p = 0; p < kPeriods; ++p) {
      SCOPED_TRACE("client " + std::to_string(c) + " period " +
                   std::to_string(p + 1));
      ExpectBitIdentical(
          direct[static_cast<size_t>(c)][static_cast<size_t>(p)],
          ReportFromLine(
              close_lines[static_cast<size_t>(c)][static_cast<size_t>(p)]));
    }
  }
}

// -- 3. Backpressure and robustness ----------------------------------------

TEST(NetBackpressureTest, SlowReaderIsCutOffWithoutBlockingOthers) {
  MarketplaceServer server(ServerOptions{2});
  NetServerOptions options;
  options.max_write_buffer_bytes = 16 * 1024;
  options.sndbuf_bytes = 8 * 1024;  // Trip the app-level cap quickly.
  auto net = StartNet(&server, options);

  // The slow reader: fires requests and never reads. Eventually the kernel
  // send buffer fills, responses pile up in the server's write buffer past
  // the cap, and the connection is condemned.
  NetClient slow = MustConnect(*net);
  const std::string request = R"({"v":1,"op":"list_mechanisms"})";
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(slow.SendLine(request).ok());
  }

  // Meanwhile a well-behaved client gets prompt service throughout.
  NetClient good = MustConnect(*net);
  for (int i = 0; i < 50; ++i) {
    Result<std::string> response = good.Call(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_NE(response->find("\"ok\":true"), std::string::npos);
  }

  // The drop must be observable in the transport counters.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (net->stats().connections_dropped_backpressure == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(net->stats().connections_dropped_backpressure, 1u);

  // Now drain: the slow client gets the queued (bounded) responses, then
  // the typed ResourceExhausted verdict, then EOF.
  std::string last_line;
  size_t lines_read = 0;
  for (;;) {
    Result<std::string> line = slow.ReadLine();
    if (!line.ok()) break;  // EOF: the server closed us.
    last_line = std::move(*line);
    ++lines_read;
  }
  ASSERT_GT(lines_read, 0u);
  // Far fewer than 4000: the buffer cap bounded what was ever queued.
  EXPECT_LT(lines_read, 2000u);
  EXPECT_NE(last_line.find("ResourceExhausted"), std::string::npos)
      << last_line;
  EXPECT_NE(last_line.find("reader too slow"), std::string::npos)
      << last_line;
}

TEST(NetServerTest, OversizeLineAnswersTypedErrorAndFramingSurvives) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_request_bytes = 256;
  MarketplaceServer server(std::move(options));
  auto net = StartNet(&server);
  NetClient client = MustConnect(*net);

  const std::string oversize(1000, 'x');
  ASSERT_TRUE(client.SendLine(oversize).ok());
  ASSERT_TRUE(client.SendLine(R"({"v":1,"op":"list_mechanisms"})").ok());

  Result<std::string> first = client.ReadLine();
  ASSERT_TRUE(first.ok());
  EXPECT_NE(first->find("ResourceExhausted"), std::string::npos) << *first;
  EXPECT_NE(first->find("--max-request-bytes"), std::string::npos) << *first;
  Result<std::string> second = client.ReadLine();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->find("\"ok\":true"), std::string::npos) << *second;
}

TEST(NetServerTest, HalfCloseDrainsEveryPipelinedResponse) {
  MarketplaceServer server(ServerOptions{2});
  auto net = StartNet(&server);
  NetClient client = MustConnect(*net);

  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.op = RequestOp::kListMechanisms;
    request.id = "req-" + std::to_string(i);
    ASSERT_TRUE(client.SendLine(protocol::ToJson(request).Dump()).ok());
  }
  ASSERT_TRUE(client.FinishSending().ok());

  // All responses arrive, in request order, then EOF.
  for (int i = 0; i < kRequests; ++i) {
    Result<std::string> line = client.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    EXPECT_NE(line->find("\"id\":\"req-" + std::to_string(i) + "\""),
              std::string::npos)
        << *line;
  }
  EXPECT_FALSE(client.ReadLine().ok());
}

TEST(NetServerTest, ServerInfoCarriesTransportCountersWhileRunning) {
  MarketplaceServer server(ServerOptions{1});
  auto net = StartNet(&server);
  NetClient client = MustConnect(*net);

  Request info;
  info.op = RequestOp::kServerInfo;
  info.version = 2;
  Result<Response> response = client.Call(info);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << response->status.ToString();
  const JsonValue* transport = response->payload.Find("transport");
  ASSERT_NE(transport, nullptr);
  EXPECT_GE(transport->Find("connections_open")->AsNumber(), 1.0);
  EXPECT_GE(transport->Find("connections_accepted")->AsNumber(), 1.0);
  EXPECT_GE(transport->Find("requests")->AsNumber(), 1.0);

  // Once the transport stops, server_info loses the section (and must not
  // touch freed NetServer state).
  client.Close();
  net->Stop();
  Request again;
  again.op = RequestOp::kServerInfo;
  again.version = 2;
  Response direct = server.Handle(std::move(again));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.payload.Find("transport"), nullptr);
}

TEST(NetServerTest, WireShutdownDrainsAndStateSurvivesToRecovery) {
  const std::string dir = TempDir("wire_shutdown");
  auto scenario = simdb::TelemetryScenario(4, 8);
  ASSERT_TRUE(scenario.ok());
  ServiceConfig config;
  config.slots_per_period = 8;

  {
    auto store = FileStateStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ServerOptions options;
    options.num_workers = 2;
    options.store = std::move(*store);
    MarketplaceServer server(std::move(options));
    auto net = StartNet(&server);

    NetClient client = MustConnect(*net);
    const std::string close_line = RunPeriodOverTcp(
        client, "durable", config, 4, /*with_catalog=*/true,
        JitterTenants(scenario->tenants, 8, 42));
    ASSERT_FALSE(close_line.empty());

    Request shutdown;
    shutdown.op = RequestOp::kShutdown;
    shutdown.version = 2;
    Result<Response> acked = client.Call(shutdown);
    ASSERT_TRUE(acked.ok()) << acked.status().ToString();
    EXPECT_TRUE(acked->ok());
    net->Wait();  // Returns once every connection drained.
    ASSERT_TRUE(server.Shutdown().ok());
    // The drained server closed us.
    EXPECT_FALSE(client.Call(std::string(
                                 R"({"v":1,"op":"list_mechanisms"})"))
                     .ok());
  }

  // A fresh process over the same dir sees the period.
  auto store = FileStateStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.num_workers = 1;
  options.store = std::move(*store);
  MarketplaceServer server(std::move(options));
  Result<RecoveryStats> recovered = server.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->tenancies_recovered, 1);
  Request report;
  report.op = RequestOp::kReport;
  report.tenancy = "durable";
  Response response = server.Handle(std::move(report));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.payload.Find("periods_run")->AsNumber(), 1.0);
}

// -- Protocol v3: batch frames over the wire --------------------------------

/// The members a mixed batch exercises: mutations, reads, duplicate ids,
/// mixed protocol versions, and one member that errors (unknown tenant).
std::vector<Request> MixedBatchMembers(const std::string& tenancy,
                                       const std::vector<simdb::SimUser>& t) {
  std::vector<Request> members;
  Request submit;
  submit.op = RequestOp::kSubmit;
  submit.tenancy = tenancy;
  submit.id = "m0";
  submit.tenants = t;
  members.push_back(submit);
  Request advance;
  advance.op = RequestOp::kAdvanceSlot;
  advance.tenancy = tenancy;
  advance.id = "m1";
  advance.slots = 2;
  members.push_back(advance);
  Request report;
  report.op = RequestOp::kReport;
  report.tenancy = tenancy;
  report.id = "m1";  // Duplicate id: answered positionally, both echoed.
  members.push_back(report);
  Request depart;
  depart.op = RequestOp::kDepart;
  depart.tenancy = tenancy;
  depart.id = "m3";
  depart.tenant = 9999;  // No such tenant: a typed error member.
  members.push_back(depart);
  Request list;
  list.op = RequestOp::kListMechanisms;
  list.version = 1;  // Mixed-version member rides in a v3 frame.
  list.id = "m4";
  members.push_back(list);
  return members;
}

TEST(NetBatchTest, WireBatchMatchesSequentialSendsByteForByte) {
  auto scenario = simdb::TelemetryScenario(4, 8);
  ASSERT_TRUE(scenario.ok());
  const std::vector<simdb::SimUser> tenants =
      JitterTenants(scenario->tenants, 8, 7);
  const auto open_tenancy = [&](NetClient& client, const std::string& name) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = name;
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = 4;
    catalog.scenario_slots = 8;
    open.catalog = catalog;
    Result<Response> opened = client.Call(open);
    ASSERT_TRUE(opened.ok() && opened->ok());
  };

  // Server A: the members one at a time, recording each wire line.
  MarketplaceServer sequential_server(ServerOptions{2});
  auto sequential_net = StartNet(&sequential_server);
  NetClient sequential_client = MustConnect(*sequential_net);
  open_tenancy(sequential_client, "t");
  std::vector<std::string> expected;
  for (const Request& member : MixedBatchMembers("t", tenants)) {
    Result<std::string> line =
        sequential_client.Call(protocol::ToJson(member).Dump());
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    expected.push_back(*line);
  }

  // Server B: the same members as one v3 batch frame.
  MarketplaceServer batch_server(ServerOptions{2});
  auto batch_net = StartNet(&batch_server);
  NetClient batch_client = MustConnect(*batch_net);
  open_tenancy(batch_client, "t");
  Request batch;
  batch.op = RequestOp::kBatch;
  batch.version = 3;
  batch.id = "frame";
  batch.requests = MixedBatchMembers("t", tenants);
  Result<Response> response = batch_client.Call(batch);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok()) << response->status.ToString();
  EXPECT_EQ(response->id, "frame");
  const JsonValue* docs = response->payload.Find("responses");
  ASSERT_NE(docs, nullptr);
  ASSERT_EQ(docs->AsArray().size(), expected.size());

  // Ordered and byte-identical: member i's document is exactly the line
  // the sequential server answered for request i (both normalized through
  // one parse->dump so the comparison is of documents, not whitespace).
  for (size_t i = 0; i < expected.size(); ++i) {
    Result<JsonValue> sequential_doc = JsonValue::Parse(expected[i]);
    ASSERT_TRUE(sequential_doc.ok());
    EXPECT_EQ(docs->AsArray()[i].Dump(), sequential_doc->Dump())
        << "member " << i << " diverged";
  }
  // The error member answered in place without poisoning its neighbors.
  EXPECT_EQ(*docs->AsArray()[3].Find("ok"), JsonValue::Bool(false));
  EXPECT_EQ(*docs->AsArray()[4].Find("ok"), JsonValue::Bool(true));
}

TEST(NetBatchTest, HandleLineAndTypedHandleAgreeOnBatchFrames) {
  // The wire path splices pre-serialized member responses
  // (Response::raw_payload); the typed path builds the JsonValue tree.
  // Same read-only members against the same server must serialize
  // identically through both.
  MarketplaceServer server(ServerOptions{2});
  {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = "t";
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = 3;
    catalog.scenario_slots = 6;
    open.catalog = catalog;
    ASSERT_TRUE(server.Handle(std::move(open)).ok());
  }
  Request batch;
  batch.op = RequestOp::kBatch;
  batch.version = 3;
  batch.id = "b";
  for (int i = 0; i < 3; ++i) {
    Request report;
    report.op = RequestOp::kReport;
    report.tenancy = "t";
    report.id = "r" + std::to_string(i);
    batch.requests.push_back(report);
    Request list;
    list.op = RequestOp::kListMechanisms;
    list.id = "l" + std::to_string(i);
    batch.requests.push_back(list);
  }
  const std::string wire_line =
      server.HandleLine(protocol::ToJson(batch).Dump());
  const Response typed = server.Handle(batch);
  EXPECT_EQ(wire_line, protocol::FormatResponseLine(typed));
  EXPECT_EQ(wire_line, protocol::ToJson(typed).Dump());
}

TEST(NetBatchTest, LegalBatchFramesPassTheLineCapUntruncated) {
  // Regression: the transport line cap once applied the plain request cap
  // to every line, so a legal v3 batch frame bigger than one request's
  // budget was cut off mid-frame. Batch frames must pass under the batch
  // cap; an equally big non-batch line still answers the plain-cap error.
  ServerOptions options;
  options.num_workers = 2;
  options.max_request_bytes = 512;
  options.max_batch_request_bytes = 64 * 1024;
  MarketplaceServer server(std::move(options));
  auto net = StartNet(&server);
  NetClient client = MustConnect(*net);
  {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = "t";
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = 3;
    catalog.scenario_slots = 6;
    open.catalog = catalog;
    Result<Response> opened = client.Call(open);
    ASSERT_TRUE(opened.ok() && opened->ok());
  }

  // A batch frame well over the 512-byte plain cap but under the batch cap.
  Request batch;
  batch.op = RequestOp::kBatch;
  batch.version = 3;
  for (int i = 0; i < 40; ++i) {
    Request report;
    report.op = RequestOp::kReport;
    report.tenancy = "t";
    report.id = "member-" + std::to_string(i);
    batch.requests.push_back(report);
  }
  const std::string frame = protocol::ToJson(batch).Dump();
  ASSERT_GT(frame.size(), size_t{512});
  {
    Result<std::string> line = client.Call(frame);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    EXPECT_NE(line->find("\"ok\":true"), std::string::npos) << *line;
    EXPECT_NE(line->find("member-39"), std::string::npos)
        << "batch frame truncated: " << *line;
  }

  // The same bytes minus batch-ness: over-cap, typed rejection.
  std::string oversized = R"({"v":1,"op":"report","tenancy":"t")";
  oversized += ",\"id\":\"" + std::string(600, 'x') + "\"}";
  Result<std::string> rejected = client.Call(oversized);
  ASSERT_TRUE(rejected.ok());
  EXPECT_NE(rejected->find("ResourceExhausted"), std::string::npos)
      << *rejected;

  // Framing intact afterwards: a canary answers normally.
  Result<std::string> canary =
      client.Call(std::string(R"({"v":1,"op":"list_mechanisms","id":"c"})"));
  ASSERT_TRUE(canary.ok());
  EXPECT_NE(canary->find("\"id\":\"c\""), std::string::npos);
  EXPECT_NE(canary->find("\"ok\":true"), std::string::npos);
}

// -- Protocol v3: admission control under load ------------------------------

TEST(AdmissionSoakTest, QuotaBreachingTenantCannotStarveACompliantOne) {
  // One tenancy hammers mutating ops far over its token-bucket quota; a
  // compliant tenancy paces itself under the rate. Per-tenancy buckets
  // mean the breacher's rejections are its own: the compliant tenant must
  // see zero ResourceExhausted, while the breacher sees plenty, each with
  // a usable retry_after_ms hint.
  ServerOptions options;
  options.num_workers = 2;
  options.admission.mutating_ops_per_sec = 200.0;
  options.admission.burst = 20.0;
  MarketplaceServer server(std::move(options));
  auto net = StartNet(&server);

  const auto open_tenancy = [&](NetClient& client, const std::string& name) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    open.tenancy = name;
    protocol::CatalogSpec catalog;
    catalog.scenario = "telemetry";
    catalog.scenario_tenants = 3;
    catalog.scenario_slots = 6;
    open.catalog = catalog;
    Result<Response> opened = client.Call(open);
    ASSERT_TRUE(opened.ok() && opened->ok());
  };

  std::atomic<int> breacher_rejected{0};
  std::atomic<int> breacher_bad_hint{0};
  std::atomic<int> compliant_rejected{0};
  std::atomic<int> compliant_failed{0};

  std::thread breacher([&] {
    NetClient client = MustConnect(*net);
    open_tenancy(client, "greedy");
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = "greedy";
    for (int i = 0; i < 600; ++i) {
      Result<Response> response = client.Call(advance);
      if (!response.ok()) return;
      if (!response->ok()) {
        if (response->status.code() == StatusCode::kResourceExhausted) {
          breacher_rejected.fetch_add(1);
          if (response->retry_after_ms <= 0) breacher_bad_hint.fetch_add(1);
        }
      }
    }
  });
  std::thread compliant([&] {
    NetClient client = MustConnect(*net);
    open_tenancy(client, "polite");
    Request advance;
    advance.op = RequestOp::kAdvanceSlot;
    advance.tenancy = "polite";
    // 15 ops with 20 of burst: never over quota, whatever the pacing. A
    // session-level error (advancing past the period's end) still proves
    // the request was served; only a transport failure or a quota
    // rejection would mean the breacher starved us.
    for (int i = 0; i < 15; ++i) {
      Result<Response> response = client.Call(advance);
      if (!response.ok()) {
        compliant_failed.fetch_add(1);
      } else if (!response->ok() &&
                 response->status.code() == StatusCode::kResourceExhausted) {
        compliant_rejected.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  breacher.join();
  compliant.join();

  // 600 mutations against burst 20 + 200/s cannot all be admitted in the
  // seconds this takes; the compliant tenant must be untouched.
  EXPECT_GT(breacher_rejected.load(), 0);
  EXPECT_EQ(breacher_bad_hint.load(), 0);
  EXPECT_EQ(compliant_rejected.load(), 0);
  EXPECT_EQ(compliant_failed.load(), 0);

  // The rejections surface on the metrics plane.
  Request info;
  info.op = RequestOp::kServerInfo;
  info.version = 2;
  Response response = server.Handle(std::move(info));
  ASSERT_TRUE(response.ok());
  const JsonValue* metrics = response.payload.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* admission = metrics->Find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_GT(admission->Find("rejected")->AsNumber(), 0.0);
}

}  // namespace
}  // namespace optshare::service
