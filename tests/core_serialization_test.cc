// Tests for game (de)serialization: round trips, schema validation, and
// rejection of structurally valid JSON describing invalid games.
#include "core/serialization.h"

#include <gtest/gtest.h>

#include "core/add_on.h"

namespace optshare {
namespace {

TEST(SerializationTest, AdditiveOfflineRoundTrip) {
  AdditiveOfflineGame g;
  g.costs = {90.0, 50.0};
  g.bids = {{40.0, 0.0}, {30.0, 60.0}};
  auto parsed = AdditiveOfflineGameFromJson(ToJson(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->costs, g.costs);
  EXPECT_EQ(parsed->bids, g.bids);
}

TEST(SerializationTest, AdditiveOnlineRoundTrip) {
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 100.0;
  g.users = {SlotValues::Single(1, 101.0),
             *SlotValues::Make(2, 3, {26.0, 27.0})};
  auto parsed = AdditiveOnlineGameFromJson(ToJson(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_slots, 3);
  EXPECT_DOUBLE_EQ(parsed->cost, 100.0);
  ASSERT_EQ(parsed->users.size(), 2u);
  EXPECT_EQ(parsed->users[1].start, 2);
  EXPECT_EQ(parsed->users[1].end, 3);
  EXPECT_DOUBLE_EQ(parsed->users[1].At(3), 27.0);
}

TEST(SerializationTest, SubstOfflineRoundTrip) {
  SubstOfflineGame g;
  g.costs = {60.0, 180.0, 100.0};
  g.users = {{{0, 1}, 100.0}, {{2}, 101.0}};
  auto parsed = SubstOfflineGameFromJson(ToJson(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->users[0].substitutes, (std::vector<OptId>{0, 1}));
  EXPECT_DOUBLE_EQ(parsed->users[1].value, 101.0);
}

TEST(SerializationTest, SubstOnlineRoundTrip) {
  SubstOnlineGame g;
  g.num_slots = 3;
  g.costs = {60.0, 100.0, 50.0};
  g.users = {{SlotValues::Constant(1, 2, 50.0), {0, 1}},
             {SlotValues::Single(3, 100.0), {2}}};
  auto parsed = SubstOnlineGameFromJson(ToJson(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->users[0].substitutes, (std::vector<OptId>{0, 1}));
  EXPECT_DOUBLE_EQ(parsed->users[0].stream.Total(), 100.0);
}

TEST(SerializationTest, GameTypeOfHandlesMissingType) {
  EXPECT_EQ(GameTypeOf(*JsonValue::Parse("{}")), "");
  EXPECT_EQ(GameTypeOf(*JsonValue::Parse("{\"type\": 3}")), "");
  EXPECT_EQ(GameTypeOf(*JsonValue::Parse("{\"type\": \"x\"}")), "x");
}

TEST(SerializationTest, RejectsWrongType) {
  AdditiveOfflineGame g;
  g.costs = {1.0};
  g.bids = {{0.5}};
  const JsonValue doc = ToJson(g);
  EXPECT_FALSE(AdditiveOnlineGameFromJson(doc).ok());
  EXPECT_FALSE(SubstOfflineGameFromJson(doc).ok());
}

TEST(SerializationTest, RejectsMissingFields) {
  auto doc = *JsonValue::Parse(R"({"type": "additive_offline"})");
  EXPECT_FALSE(AdditiveOfflineGameFromJson(doc).ok());

  auto no_users = *JsonValue::Parse(
      R"({"type": "additive_online", "num_slots": 2, "cost": 5})");
  EXPECT_FALSE(AdditiveOnlineGameFromJson(no_users).ok());
}

TEST(SerializationTest, RejectsMalformedEntries) {
  auto bad_bid = *JsonValue::Parse(
      R"({"type": "additive_offline", "costs": [5], "bids": [["x"]]})");
  EXPECT_FALSE(AdditiveOfflineGameFromJson(bad_bid).ok());

  auto frac_slot = *JsonValue::Parse(
      R"({"type": "additive_online", "num_slots": 2, "cost": 5,
          "users": [{"start": 1.5, "end": 2, "values": [1]}]})");
  EXPECT_FALSE(AdditiveOnlineGameFromJson(frac_slot).ok());

  auto frac_opt = *JsonValue::Parse(
      R"({"type": "subst_offline", "costs": [5],
          "users": [{"substitutes": [0.5], "value": 1}]})");
  EXPECT_FALSE(SubstOfflineGameFromJson(frac_opt).ok());
}

TEST(SerializationTest, RejectsSemanticallyInvalidGames) {
  // Well-formed JSON but the game fails Validate(): negative cost.
  auto negative_cost = *JsonValue::Parse(
      R"({"type": "additive_offline", "costs": [-5], "bids": [[1]]})");
  EXPECT_FALSE(AdditiveOfflineGameFromJson(negative_cost).ok());

  // Interval extends past the horizon.
  auto bad_interval = *JsonValue::Parse(
      R"({"type": "additive_online", "num_slots": 2, "cost": 5,
          "users": [{"start": 1, "end": 3, "values": [1, 1, 1]}]})");
  EXPECT_FALSE(AdditiveOnlineGameFromJson(bad_interval).ok());

  // Substitute id out of range.
  auto bad_sub = *JsonValue::Parse(
      R"({"type": "subst_online", "num_slots": 1, "costs": [5],
          "users": [{"start": 1, "end": 1, "values": [1],
                     "substitutes": [3]}]})");
  EXPECT_FALSE(SubstOnlineGameFromJson(bad_sub).ok());
}

TEST(SerializationTest, ParsedGameRunsIdenticallyToOriginal) {
  // Serialization must be lossless w.r.t. mechanism outcomes.
  AdditiveOnlineGame g;
  g.num_slots = 3;
  g.cost = 100.0;
  g.users = {SlotValues::Single(1, 101.0),
             *SlotValues::Make(1, 3, {16.0, 16.0, 16.0}),
             SlotValues::Single(2, 26.0), SlotValues::Single(2, 26.0)};
  auto round_tripped = AdditiveOnlineGameFromJson(ToJson(g));
  ASSERT_TRUE(round_tripped.ok());

  const AddOnResult a = RunAddOn(g);
  const AddOnResult b = RunAddOn(*round_tripped);
  EXPECT_EQ(a.payments, b.payments);
  EXPECT_EQ(a.implemented_at, b.implemented_at);
  EXPECT_EQ(a.serviced, b.serviced);
}

}  // namespace
}  // namespace optshare
