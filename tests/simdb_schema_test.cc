// Tests for the simdb schema, catalog and query model.
#include <gtest/gtest.h>

#include "simdb/catalog.h"
#include "simdb/query.h"

namespace optshare::simdb {
namespace {

TableDef SampleTable() {
  TableDef t;
  t.name = "particles";
  t.columns = {
      {"particle_id", ColumnType::kInt64, 1000000},
      {"halo_id", ColumnType::kInt64, 500},
      {"mass", ColumnType::kDouble, 100000},
      {"kind", ColumnType::kString, 3},
  };
  t.row_count = 1000000;
  return t;
}

TEST(SchemaTest, ColumnTypeWidths) {
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kInt64), 8);
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kDouble), 8);
  EXPECT_EQ(ColumnTypeWidth(ColumnType::kString), 32);
}

TEST(SchemaTest, RowAndTableBytes) {
  TableDef t = SampleTable();
  EXPECT_EQ(t.RowBytes(), 8u + 8u + 8u + 32u);
  EXPECT_EQ(t.TotalBytes(), t.row_count * 56u);
}

TEST(SchemaTest, FindColumn) {
  TableDef t = SampleTable();
  EXPECT_EQ(t.FindColumn("halo_id"), 1);
  EXPECT_EQ(t.FindColumn("nope"), -1);
}

TEST(SchemaTest, ValidationRejectsBadDefinitions) {
  TableDef t = SampleTable();
  EXPECT_TRUE(t.Validate().ok());
  t.columns.push_back({"halo_id", ColumnType::kInt64, 5});  // Duplicate.
  EXPECT_EQ(t.Validate().code(), StatusCode::kAlreadyExists);

  TableDef empty;
  empty.name = "x";
  EXPECT_FALSE(empty.Validate().ok());

  TableDef bad_col = SampleTable();
  bad_col.columns[0].distinct_values = 0;
  EXPECT_FALSE(bad_col.Validate().ok());

  TableDef unnamed = SampleTable();
  unnamed.name.clear();
  EXPECT_FALSE(unnamed.Validate().ok());
}

TEST(CatalogTest, AddAndLookupTables) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(SampleTable()).ok());
  EXPECT_EQ(c.AddTable(SampleTable()).code(), StatusCode::kAlreadyExists);
  auto t = c.GetTable("particles");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row_count, 1000000u);
  EXPECT_EQ(c.GetTable("missing").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, OptimizationValidation) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(SampleTable()).ok());

  OptimizationSpec idx{OptKind::kSecondaryIndex, "particles", "halo_id", 1.0,
                       ""};
  auto id = c.AddOptimization(idx);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);

  OptimizationSpec bad_table = idx;
  bad_table.table = "nope";
  EXPECT_FALSE(c.AddOptimization(bad_table).ok());

  OptimizationSpec bad_col = idx;
  bad_col.column = "nope";
  EXPECT_FALSE(c.AddOptimization(bad_col).ok());

  OptimizationSpec bad_view{OptKind::kMaterializedView, "particles", "halo_id",
                            0.0, ""};
  EXPECT_FALSE(c.AddOptimization(bad_view).ok());

  OptimizationSpec replica{OptKind::kReplica, "particles", "", 1.0, ""};
  EXPECT_TRUE(c.AddOptimization(replica).ok());
  EXPECT_EQ(c.num_optimizations(), 2);
}

TEST(OptimizationTest, DisplayNames) {
  OptimizationSpec idx{OptKind::kSecondaryIndex, "t", "c", 1.0, ""};
  EXPECT_EQ(idx.DisplayName(), "index(t.c)");
  OptimizationSpec rep{OptKind::kReplica, "t", "", 1.0, ""};
  EXPECT_EQ(rep.DisplayName(), "replica(t)");
  OptimizationSpec labeled{OptKind::kReplica, "t", "", 1.0, "my label"};
  EXPECT_EQ(labeled.DisplayName(), "my label");
}

TEST(QueryTest, CombinedSelectivity) {
  Query q;
  q.table = "particles";
  q.predicates = {{"halo_id", 0.01}, {"mass", 0.5}};
  EXPECT_DOUBLE_EQ(q.CombinedSelectivity(), 0.005);
}

TEST(QueryTest, Validation) {
  Query q;
  EXPECT_FALSE(q.Validate().ok());  // No table.
  q.table = "particles";
  EXPECT_TRUE(q.Validate().ok());
  q.predicates = {{"halo_id", 0.0}};
  EXPECT_FALSE(q.Validate().ok());  // Zero selectivity.
  q.predicates = {{"halo_id", 1.5}};
  EXPECT_FALSE(q.Validate().ok());  // > 1.
  q.predicates = {{"", 0.5}};
  EXPECT_FALSE(q.Validate().ok());  // Unnamed column.
}

TEST(WorkloadTest, Validation) {
  Workload w;
  EXPECT_TRUE(w.Validate().ok());  // Empty workload is fine.
  Query q;
  q.table = "particles";
  w.entries = {{q, 0.0}};
  EXPECT_FALSE(w.Validate().ok());  // Non-positive frequency.
  w.entries = {{q, 2.5}};
  EXPECT_TRUE(w.Validate().ok());
}

}  // namespace
}  // namespace optshare::simdb
