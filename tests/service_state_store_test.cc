// StateStore backend coverage: the append/checkpoint/load contract on both
// backends, the snapshot schema round-trip, and the FileStateStore's
// crash-window behavior (epoch-named journals, atomic snapshots, torn
// tails).
#include "service/state_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/fs.h"

namespace optshare::service {
namespace {

/// Scratch dirs live under the working directory (the build tree when run
/// via ctest), so the suite never writes outside it.
std::string TempDir(const char* test) {
  return std::string("optshare_store_test_scratch/") + test;
}

TenancySnapshot SampleSnapshot() {
  TenancySnapshot snapshot;
  snapshot.name = "acme prod/eu";
  simdb::TableDef table;
  table.name = "telemetry";
  table.row_count = 123456789;
  table.columns = {{"device", simdb::ColumnType::kInt64, 1000000},
                   {"metric", simdb::ColumnType::kString, 64}};
  snapshot.tables.push_back(table);
  snapshot.config.slots_per_period = 8;
  snapshot.config.mechanism = "naive_online";
  snapshot.built = {"index(telemetry.device)", "replica(telemetry)"};
  snapshot.periods_run = 3;
  snapshot.cumulative_balance = 12.340000000000002;  // Full precision.
  snapshot.cumulative_utility = 987.6543210123456;
  return snapshot;
}

TEST(TenancySnapshotSchema, RoundTripsBitIdentically) {
  const TenancySnapshot snapshot = SampleSnapshot();
  Result<TenancySnapshot> parsed = TenancySnapshotFromJson(ToJson(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, snapshot.name);
  EXPECT_EQ(parsed->built, snapshot.built);
  EXPECT_EQ(parsed->periods_run, 3);
  EXPECT_EQ(parsed->cumulative_balance, snapshot.cumulative_balance);
  EXPECT_EQ(parsed->cumulative_utility, snapshot.cumulative_utility);
  ASSERT_EQ(parsed->tables.size(), 1u);
  EXPECT_EQ(parsed->tables[0].row_count, 123456789u);
  EXPECT_EQ(ToJson(*parsed).Dump(), ToJson(snapshot).Dump());
}

TEST(TenancySnapshotSchema, RejectsUnknownFields) {
  JsonValue doc = ToJson(SampleSnapshot());
  doc.Set("surprise", JsonValue::Number(1));
  EXPECT_FALSE(TenancySnapshotFromJson(doc).ok());
}

/// The backend-independent contract, run against both stores.
class StateStoreContractTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    dir_ = TempDir(::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    ASSERT_TRUE(fs::RemoveAll(dir_).ok());
    if (std::string(GetParam()) == "file") {
      auto opened = FileStateStore::Open(dir_);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      store_ = std::move(*opened);
    } else {
      store_ = std::make_unique<MemoryStateStore>();
    }
  }
  void TearDown() override {
    store_.reset();
    ASSERT_TRUE(fs::RemoveAll(dir_).ok());
  }

  /// Reopens the store the way a restarted process would (file backend);
  /// the memory backend persists nothing across instances, so the same
  /// instance is returned.
  StateStore* Reopened() {
    if (std::string(GetParam()) == "file") {
      auto opened = FileStateStore::Open(dir_);
      EXPECT_TRUE(opened.ok());
      reopened_ = std::move(*opened);
      return reopened_.get();
    }
    return store_.get();
  }

  std::string dir_;
  std::unique_ptr<StateStore> store_;
  std::unique_ptr<StateStore> reopened_;
};

TEST_P(StateStoreContractTest, AppendLoadRoundTrip) {
  ASSERT_TRUE(store_->Append("acme", "{\"r\":1}").ok());
  ASSERT_TRUE(store_->Append("acme", "{\"r\":2}").ok());
  ASSERT_TRUE(store_->Append("zeta corp", "{\"r\":3}").ok());

  Result<std::vector<PersistedTenancy>> loaded = Reopened()->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].name, "acme");
  EXPECT_FALSE((*loaded)[0].snapshot.has_value());
  EXPECT_EQ((*loaded)[0].journal,
            (std::vector<std::string>{"{\"r\":1}", "{\"r\":2}"}));
  EXPECT_EQ((*loaded)[1].name, "zeta corp");
  EXPECT_EQ((*loaded)[1].journal, (std::vector<std::string>{"{\"r\":3}"}));
}

TEST_P(StateStoreContractTest, CheckpointTruncatesJournal) {
  ASSERT_TRUE(store_->Append("acme", "{\"r\":1}").ok());
  ASSERT_TRUE(store_->Checkpoint("acme", ToJson(SampleSnapshot())).ok());
  ASSERT_TRUE(store_->Append("acme", "{\"r\":2}").ok());

  Result<std::vector<PersistedTenancy>> loaded = Reopened()->Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  ASSERT_TRUE((*loaded)[0].snapshot.has_value());
  EXPECT_EQ((*loaded)[0].snapshot->Dump(), ToJson(SampleSnapshot()).Dump());
  // Only the post-checkpoint record survives.
  EXPECT_EQ((*loaded)[0].journal, (std::vector<std::string>{"{\"r\":2}"}));

  const StateStoreStats stats = store_->stats();
  EXPECT_EQ(stats.appends, 2u);
  EXPECT_EQ(stats.checkpoints, 1u);
}

TEST_P(StateStoreContractTest, RemoveErasesEverything) {
  ASSERT_TRUE(store_->Append("acme", "{\"r\":1}").ok());
  ASSERT_TRUE(store_->Checkpoint("acme", ToJson(SampleSnapshot())).ok());
  ASSERT_TRUE(store_->Remove("acme").ok());
  ASSERT_TRUE(store_->Remove("never-existed").ok());

  Result<std::vector<PersistedTenancy>> loaded = Reopened()->Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  // The store keeps working after a removal.
  ASSERT_TRUE(store_->Append("acme", "{\"r\":9}").ok());
  loaded = Reopened()->Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].journal, (std::vector<std::string>{"{\"r\":9}"}));
}

TEST_P(StateStoreContractTest, SyncSucceeds) {
  ASSERT_TRUE(store_->Append("acme", "{\"r\":1}").ok());
  EXPECT_TRUE(store_->Sync("acme").ok());
  EXPECT_EQ(store_->stats().syncs, 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, StateStoreContractTest,
                         ::testing::Values("memory", "file"));

// -- File-backend specifics -------------------------------------------------

class FileStateStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir(::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    ASSERT_TRUE(fs::RemoveAll(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(fs::RemoveAll(dir_).ok()); }

  std::string dir_;
};

TEST_F(FileStateStoreTest, TenancyNamesBecomeEncodedDirectories) {
  auto store = FileStateStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append("acme prod/eu", "{\"r\":1}").ok());
  Result<std::vector<std::string>> entries = fs::ListDir(dir_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0], fs::EncodePathComponent("acme prod/eu"));
  // The decoded name comes back on load.
  Result<std::vector<PersistedTenancy>> loaded = (*store)->Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].name, "acme prod/eu");
}

TEST_F(FileStateStoreTest, TornTailIsDroppedAndReported) {
  auto store = FileStateStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append("acme", "{\"r\":1}").ok());
  store->reset();

  // Simulate a crash mid-append: a record with no trailing newline.
  const std::string journal =
      dir_ + "/" + fs::EncodePathComponent("acme") + "/journal-0.jsonl";
  {
    std::ofstream out(journal, std::ios::app | std::ios::binary);
    out << "{\"r\":2";  // Torn.
  }
  auto reopened = FileStateStore::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  Result<std::vector<PersistedTenancy>> loaded = (*reopened)->Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].journal, (std::vector<std::string>{"{\"r\":1}"}));
  EXPECT_TRUE((*loaded)[0].torn_tail);
}

TEST_F(FileStateStoreTest, AppendAfterTornTailDoesNotMergeRecords) {
  // A torn tail must be repaired before the first post-restart append:
  // O_APPEND after the partial bytes would glue them onto the next record,
  // and the NEXT recovery would then drop that acknowledged record (and
  // everything after it) as unparseable.
  auto store = FileStateStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append("acme", "{\"r\":1}").ok());
  store->reset();
  const std::string journal =
      dir_ + "/" + fs::EncodePathComponent("acme") + "/journal-0.jsonl";
  {
    std::ofstream out(journal, std::ios::app | std::ios::binary);
    out << "{\"r\":2";  // Torn.
  }
  auto reopened = FileStateStore::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->Append("acme", "{\"r\":3}").ok());
  Result<std::vector<PersistedTenancy>> loaded = (*reopened)->Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].journal,
            (std::vector<std::string>{"{\"r\":1}", "{\"r\":3}"}));
  EXPECT_FALSE((*loaded)[0].torn_tail);
}

TEST_F(FileStateStoreTest, StaleEpochJournalIsIgnoredAfterCheckpoint) {
  // Simulate the crash window between "new snapshot published" and "old
  // journal deleted": both files exist, and only the snapshot-named epoch
  // may be read, or the checkpointed period would be double-applied.
  auto store = FileStateStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append("acme", "{\"r\":1}").ok());
  ASSERT_TRUE((*store)->Checkpoint("acme", ToJson(SampleSnapshot())).ok());
  store->reset();

  const std::string tenancy_dir = dir_ + "/" + fs::EncodePathComponent("acme");
  {
    // Resurrect a stale epoch-0 journal, as if the delete never happened.
    std::ofstream out(tenancy_dir + "/journal-0.jsonl", std::ios::binary);
    out << "{\"r\":1}\n";
  }
  auto reopened = FileStateStore::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  Result<std::vector<PersistedTenancy>> loaded = (*reopened)->Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  ASSERT_TRUE((*loaded)[0].snapshot.has_value());
  EXPECT_TRUE((*loaded)[0].journal.empty())
      << "stale epoch journal was read back";

  // Appends after the reopen land in the snapshot's epoch (journal-1), not
  // the stale file.
  ASSERT_TRUE((*reopened)->Append("acme", "{\"r\":2}").ok());
  Result<std::string> epoch1 =
      fs::ReadFile(tenancy_dir + "/journal-1.jsonl");
  ASSERT_TRUE(epoch1.ok());
  EXPECT_EQ(*epoch1, "{\"r\":2}\n");
}

TEST_F(FileStateStoreTest, SnapshotReplacementIsAtomic) {
  auto store = FileStateStore::Open(dir_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Checkpoint("acme", ToJson(SampleSnapshot())).ok());
  TenancySnapshot second = SampleSnapshot();
  second.periods_run = 4;
  ASSERT_TRUE((*store)->Checkpoint("acme", ToJson(second)).ok());
  const std::string tenancy_dir = dir_ + "/" + fs::EncodePathComponent("acme");
  EXPECT_FALSE(fs::PathExists(tenancy_dir + "/snapshot.json.tmp"));

  Result<std::vector<PersistedTenancy>> loaded = (*store)->Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].snapshot->Dump(), ToJson(second).Dump());
}

}  // namespace
}  // namespace optshare::service
