#include "common/status.h"

#include <gtest/gtest.h>

namespace optshare {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status st = Status::InvalidArgument("bad bid");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad bid");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad bid");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeFromName("ResourceExhausted"),
            StatusCode::kResourceExhausted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ReturnNotOkTest, PropagatesError) {
  auto fn = []() -> Status {
    OPTSHARE_RETURN_NOT_OK(Status::OK());
    OPTSHARE_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fn().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace optshare
