// Stress and robustness tests: mechanisms at scale, extreme values, and
// fuzzed JSON input. These guard invariants rather than exact numbers.
#include <gtest/gtest.h>

#include "common/json.h"
#include "common/money.h"
#include "common/rng.h"
#include "core/accounting.h"
#include "core/add_on.h"
#include "core/subst_on.h"
#include "workload/scenario.h"

namespace optshare {
namespace {

TEST(StressTest, AddOnWithManyUsersAndSlots) {
  AdditiveScenario scenario;
  scenario.num_users = 1000;
  scenario.num_slots = 100;
  scenario.duration = 10;
  Rng rng(1);
  const AdditiveOnlineGame game = MakeAdditiveGame(scenario, 15.0, rng);
  const AddOnResult r = RunAddOn(game);
  ASSERT_TRUE(r.implemented);
  EXPECT_TRUE(MoneyGe(r.TotalPayment(), game.cost));
  const Accounting acc = AccountAddOn(game, r);
  EXPECT_TRUE(acc.CostRecovered());
  // Shares never increase.
  double prev = kInfiniteBid;
  for (double share : r.cost_share) {
    EXPECT_LE(share, prev * (1 + 1e-12));
    prev = share;
  }
}

TEST(StressTest, SubstOnWithManyUsersAndOpts) {
  SubstScenario scenario;
  scenario.num_users = 200;
  scenario.num_slots = 20;
  scenario.num_opts = 40;
  scenario.substitutes_per_user = 5;
  Rng rng(2);
  const SubstOnlineGame game = MakeSubstGame(scenario, 2.0, rng);
  const SubstOnResult r = RunSubstOn(game);
  const Accounting acc = AccountSubstOn(game, r);
  EXPECT_TRUE(acc.CostRecovered());
  // Every granted optimization was implemented, and vice versa every
  // implemented optimization has at least one grantee.
  for (UserId i = 0; i < game.num_users(); ++i) {
    const OptId g = r.grant[static_cast<size_t>(i)];
    if (g != kNoOpt) {
      EXPECT_GT(r.implemented_at[static_cast<size_t>(g)], 0);
    }
  }
  for (OptId j : r.ImplementedOpts()) {
    bool any = false;
    for (UserId i = 0; i < game.num_users(); ++i) {
      if (r.grant[static_cast<size_t>(i)] == j) any = true;
    }
    EXPECT_TRUE(any) << "opt " << j << " implemented with no grantee";
  }
}

TEST(StressTest, ShapleyWithExtremeMagnitudes) {
  // Mixing 1e-9 and 1e9 bids must not break the iteration or recovery.
  const ShapleyResult r =
      RunShapley(1e6, {1e-9, 1e9, 5e5, 2e-3, 7e8, 1e6});
  ASSERT_TRUE(r.implemented);
  EXPECT_NEAR(r.TotalPayment(), 1e6, 1e-3);
  for (size_t i = 0; i < r.serviced.size(); ++i) {
    if (r.serviced[i]) {
      EXPECT_GE(r.payments[i], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(r.payments[i], 0.0);
    }
  }
}

TEST(StressTest, ShapleyWithNearlyIdenticalBids) {
  // Bids straddle the even share by epsilon-scale amounts; the iteration
  // must terminate and keep recovery exact.
  std::vector<double> bids(100, 1.0);
  for (size_t i = 0; i < bids.size(); ++i) {
    bids[i] += (i % 2 == 0 ? 1e-12 : -1e-12);
  }
  const ShapleyResult r = RunShapley(100.0, bids);
  ASSERT_TRUE(r.implemented);
  EXPECT_NEAR(r.TotalPayment(), 100.0, 1e-6);
}

TEST(StressTest, AddOnAllValueInLastSlot) {
  AdditiveOnlineGame g;
  g.num_slots = 50;
  g.cost = 10.0;
  g.users = {SlotValues::Single(50, 11.0)};
  const AddOnResult r = RunAddOn(g);
  ASSERT_TRUE(r.implemented);
  EXPECT_EQ(r.implemented_at, 50);
  EXPECT_DOUBLE_EQ(r.payments[0], 10.0);
}

TEST(JsonFuzzTest, RandomBytesNeverCrash) {
  Rng rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    const int len = static_cast<int>(rng.UniformInt(0, 64));
    std::string input;
    for (int k = 0; k < len; ++k) {
      input.push_back(static_cast<char>(rng.UniformInt(0, 127)));
    }
    // Must return (ok or error) without crashing or hanging.
    auto result = JsonValue::Parse(input);
    (void)result;
  }
}

TEST(JsonFuzzTest, StructuredMutationsNeverCrash) {
  // Mutate a valid document at random positions.
  const std::string base =
      R"({"type":"additive_online","num_slots":3,"cost":100,)"
      R"("users":[{"start":1,"end":3,"values":[16,16,16]}]})";
  Rng rng(78);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    auto result = JsonValue::Parse(mutated);
    (void)result;
  }
}

TEST(JsonFuzzTest, RandomValidDocumentsRoundTrip) {
  Rng rng(79);
  // Build random nested documents and require Dump -> Parse identity.
  std::function<JsonValue(int)> make = [&](int depth) -> JsonValue {
    const int kind =
        static_cast<int>(rng.UniformInt(0, depth > 3 ? 3 : 5));
    switch (kind) {
      case 0:
        return JsonValue::Null();
      case 1:
        return JsonValue::Bool(rng.Bernoulli(0.5));
      case 2:
        return JsonValue::Number(rng.Uniform(-1e6, 1e6));
      case 3: {
        std::string s;
        const int len = static_cast<int>(rng.UniformInt(0, 12));
        for (int k = 0; k < len; ++k) {
          s.push_back(static_cast<char>(rng.UniformInt(1, 127)));
        }
        return JsonValue::Str(s);
      }
      case 4: {
        JsonValue arr = JsonValue::MakeArray();
        const int n = static_cast<int>(rng.UniformInt(0, 4));
        for (int k = 0; k < n; ++k) arr.Append(make(depth + 1));
        return arr;
      }
      default: {
        JsonValue obj = JsonValue::MakeObject();
        const int n = static_cast<int>(rng.UniformInt(0, 4));
        for (int k = 0; k < n; ++k) {
          obj.Set("k" + std::to_string(k), make(depth + 1));
        }
        return obj;
      }
    }
  };
  for (int trial = 0; trial < 500; ++trial) {
    const JsonValue doc = make(0);
    auto parsed = JsonValue::Parse(doc.Dump());
    ASSERT_TRUE(parsed.ok()) << doc.Dump();
    EXPECT_EQ(*parsed, doc);
    auto pretty = JsonValue::Parse(doc.Dump(2));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(*pretty, doc);
  }
}

}  // namespace
}  // namespace optshare
