// The workload event-stream generators: equal seeds must draw the same
// population as the batch game generators, the emitted logs must
// materialize back to those games exactly, and replaying them must match
// batch pricing bit for bit.
#include "workload/event_stream.h"

#include <gtest/gtest.h>

#include "core/mechanism.h"

namespace optshare {
namespace {

TEST(EventStreamGenerator, AdditiveLogMaterializesToTheSeededGame) {
  AdditiveScenario scenario;
  scenario.num_users = 80;
  scenario.num_slots = 12;
  scenario.duration = 5;
  scenario.arrival = ArrivalProcess::kEarly;

  Rng game_rng(123);
  const AdditiveOnlineGame game = MakeAdditiveGame(scenario, 2.5, game_rng);
  Rng log_rng(123);
  const SlotEventLog log = MakeAdditiveEventLog(scenario, 2.5, log_rng);

  EXPECT_EQ(log.kind, GameKind::kAdditiveOnline);
  EXPECT_EQ(log.num_slots, game.num_slots);
  ASSERT_EQ(log.costs.size(), 1u);
  EXPECT_EQ(log.costs[0], game.cost);

  Result<MultiAdditiveOnlineGame> multi = MaterializeAdditiveLog(log);
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  ASSERT_EQ(multi->num_users(), game.num_users());
  for (UserId i = 0; i < game.num_users(); ++i) {
    const SlotValues& expect = game.users[static_cast<size_t>(i)];
    const SlotValues& got = multi->bids[static_cast<size_t>(i)][0];
    EXPECT_EQ(expect.start, got.start) << "user " << i;
    EXPECT_EQ(expect.end, got.end) << "user " << i;
    ASSERT_EQ(expect.values.size(), got.values.size()) << "user " << i;
    for (size_t k = 0; k < expect.values.size(); ++k) {
      EXPECT_EQ(expect.values[k], got.values[k])
          << "user " << i << " slot offset " << k;
    }
  }
}

TEST(EventStreamGenerator, AdditiveReplayMatchesBatchBitIdentical) {
  AdditiveScenario scenario;
  scenario.num_users = 120;
  scenario.num_slots = 10;
  scenario.duration = 4;
  scenario.arrival = ArrivalProcess::kLate;

  for (uint64_t seed : {7u, 8u, 9u}) {
    Rng game_rng(seed);
    const AdditiveOnlineGame game = MakeAdditiveGame(scenario, 1.2, game_rng);
    Rng log_rng(seed);
    const SlotEventLog log = MakeAdditiveEventLog(scenario, 1.2, log_rng);

    Result<MechanismResult> batch = RunMechanism("addon", GameView(game));
    ASSERT_TRUE(batch.ok());
    Result<MechanismResult> stream = ReplayLog(log, "addon");
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    ASSERT_EQ(batch->payments.size(), stream->payments.size());
    for (size_t i = 0; i < batch->payments.size(); ++i) {
      EXPECT_EQ(batch->payments[i], stream->payments[i]) << "user " << i;
    }
    EXPECT_EQ(batch->implemented_at, stream->implemented_at);
    EXPECT_EQ(batch->cost_share[0], stream->cost_share[0]);
  }
}

TEST(EventStreamGenerator, SubstLogMaterializesToTheSeededGame) {
  SubstScenario scenario;
  scenario.num_users = 40;
  scenario.num_slots = 9;
  scenario.num_opts = 6;
  scenario.substitutes_per_user = 2;
  scenario.duration = 3;

  Rng game_rng(55);
  const SubstOnlineGame game = MakeSubstGame(scenario, 0.8, game_rng);
  Rng log_rng(55);
  const SlotEventLog log = MakeSubstEventLog(scenario, 0.8, log_rng);

  EXPECT_EQ(log.kind, GameKind::kSubstOnline);
  ASSERT_EQ(log.costs.size(), game.costs.size());
  for (size_t j = 0; j < game.costs.size(); ++j) {
    EXPECT_EQ(log.costs[j], game.costs[j]);
  }

  Result<SubstOnlineGame> round = MaterializeSubstLog(log);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->num_users(), game.num_users());
  for (UserId i = 0; i < game.num_users(); ++i) {
    const SubstOnlineUser& expect = game.users[static_cast<size_t>(i)];
    const SubstOnlineUser& got = round->users[static_cast<size_t>(i)];
    EXPECT_EQ(expect.substitutes, got.substitutes) << "user " << i;
    EXPECT_EQ(expect.stream.start, got.stream.start) << "user " << i;
    ASSERT_EQ(expect.stream.values.size(), got.stream.values.size());
    for (size_t k = 0; k < expect.stream.values.size(); ++k) {
      EXPECT_EQ(expect.stream.values[k], got.stream.values[k]);
    }
  }

  Result<MechanismResult> batch = RunMechanism("subston", GameView(game));
  Result<MechanismResult> stream = ReplayLog(log, "subston");
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  ASSERT_EQ(batch->payments.size(), stream->payments.size());
  for (size_t i = 0; i < batch->payments.size(); ++i) {
    EXPECT_EQ(batch->payments[i], stream->payments[i]) << "user " << i;
  }
  EXPECT_EQ(batch->grant, stream->grant);
  EXPECT_EQ(batch->grant_slot, stream->grant_slot);
}

}  // namespace
}  // namespace optshare
