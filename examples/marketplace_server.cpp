// Multi-tenant marketplace server: two dozen tenancies — each its own
// catalog, billing periods and carried structures — priced concurrently
// through the versioned wire protocol. Tenancy requests are dispatched
// interleaved (the way a real front end would see them arrive), yet each
// tenancy's stream executes in order on its shard, so mid-period arrivals,
// early departures and period carry-over all behave exactly as they do on
// an embedded PricingSession.
//
//   cmake --build build && ./build/example_marketplace_server
#include <future>
#include <iostream>
#include <vector>

#include "common/money.h"
#include "service/marketplace_server.h"
#include "simdb/scenarios.h"

int main() {
  using namespace optshare;
  using namespace optshare::service;
  using protocol::Request;
  using protocol::RequestOp;
  using protocol::Response;

  constexpr int kTenancies = 24;
  constexpr int kSlots = 12;

  MarketplaceServer server(ServerOptions{4});
  std::cout << "marketplace server with " << server.num_workers()
            << " workers, " << kTenancies << " tenancies\n\n";

  // A third each of clickstream, retail and telemetry tenancies, created
  // over the wire exactly as a remote client would: the first open_period
  // carries the catalog spec.
  const char* scenarios[] = {"clickstream", "retail", "telemetry"};
  std::vector<std::string> names;
  for (int t = 0; t < kTenancies; ++t) {
    names.push_back(std::string(scenarios[t % 3]) + "-" +
                    std::to_string(t / 3));
  }

  // Tenants come from the canned scenarios; each tenancy staggers its own
  // arrival pattern so the advisor sees different mixes.
  const auto tenants_for = [&](int t) {
    auto scenario =
        scenarios[t % 3] == std::string("clickstream")
            ? simdb::ClickstreamScenario(4 + t % 3, kSlots)
        : scenarios[t % 3] == std::string("retail")
            ? simdb::RetailScenario(4 + t % 3, kSlots)
            : simdb::TelemetryScenario(4 + t % 3, kSlots);
    std::vector<simdb::SimUser> tenants = scenario->tenants;
    for (size_t i = 0; i < tenants.size(); ++i) {
      tenants[i].executions_per_slot *= 1.0 + 0.1 * (t % 5);
    }
    return tenants;
  };

  // Interleave the full request program across all tenancies: every
  // tenancy's open lands before any tenancy's first advance, the way
  // concurrent clients interleave on a real wire.
  std::vector<std::vector<std::future<Response>>> futures(kTenancies);
  const auto dispatch = [&](int t, Request request) {
    request.tenancy = names[static_cast<size_t>(t)];
    futures[static_cast<size_t>(t)].push_back(
        server.Dispatch(std::move(request)));
  };

  for (int t = 0; t < kTenancies; ++t) {
    Request open;
    open.op = RequestOp::kOpenPeriod;
    protocol::CatalogSpec catalog;
    catalog.scenario = scenarios[t % 3];
    catalog.scenario_tenants = 4 + t % 3;
    catalog.scenario_slots = kSlots;
    open.catalog = catalog;
    dispatch(t, std::move(open));
  }
  for (int t = 0; t < kTenancies; ++t) {
    Request submit;
    submit.op = RequestOp::kSubmit;
    submit.tenants = tenants_for(t);
    dispatch(t, std::move(submit));
  }
  for (int slot = 0; slot < kSlots; ++slot) {
    for (int t = 0; t < kTenancies; ++t) {
      Request advance;
      advance.op = RequestOp::kAdvanceSlot;
      dispatch(t, std::move(advance));
    }
  }
  for (int t = 0; t < kTenancies; ++t) {
    Request close;
    close.op = RequestOp::kClosePeriod;
    dispatch(t, std::move(close));
  }

  // Harvest: the close_period response carries the period report.
  double total_balance = 0.0;
  double total_utility = 0.0;
  int structures_built = 0;
  for (int t = 0; t < kTenancies; ++t) {
    for (auto& future : futures[static_cast<size_t>(t)]) {
      Response response = future.get();
      if (!response.ok()) {
        std::cerr << names[static_cast<size_t>(t)] << ": "
                  << response.status.ToString() << "\n";
        return 1;
      }
      const JsonValue* report_json = response.payload.Find("report");
      if (report_json == nullptr) continue;
      auto report = protocol::PeriodReportFromJson(*report_json);
      if (!report.ok()) {
        std::cerr << report.status().ToString() << "\n";
        return 1;
      }
      total_balance += report->ledger.CloudBalance();
      total_utility += report->ledger.TotalUtility();
      structures_built += report->ActiveStructures();
      std::cout << names[static_cast<size_t>(t)] << ": "
                << report->ActiveStructures() << " structures, utility "
                << FormatDollars(report->ledger.TotalUtility())
                << ", provider balance "
                << FormatDollars(report->ledger.CloudBalance()) << "\n";
    }
  }

  std::cout << "\nacross " << kTenancies << " tenancies: "
            << structures_built << " structures built, total utility "
            << FormatDollars(total_utility) << ", provider balance "
            << FormatDollars(total_balance)
            << " (cost-recovering: payments cover every build)\n";
  return total_balance < -1e-6 ? 1 : 0;
}
