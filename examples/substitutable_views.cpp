// Substitutable optimizations (paper §6): for a shared sales table, an
// index, a filtered materialized view, and a replica each speed up a
// tenant's workload by similar amounts — any one suffices. SubstOff picks
// which ones to build and splits their costs; tenants bidding for
// overlapping substitute sets are grouped onto the cheapest structure.
//
//   cmake --build build && ./build/examples/substitutable_views
#include <iostream>

#include "common/money.h"
#include "core/accounting.h"
#include "core/subst_off.h"
#include "simdb/pricing.h"

int main() {
  using namespace optshare;
  using namespace optshare::simdb;

  Catalog catalog;
  TableDef sales;
  sales.name = "sales";
  sales.columns = {
      {"sale_id", ColumnType::kInt64, 800'000'000},
      {"region", ColumnType::kString, 40},
      {"sku", ColumnType::kInt64, 100'000},
      {"amount", ColumnType::kDouble, 1'000'000},
  };
  sales.row_count = 800'000'000;
  if (Status st = catalog.AddTable(sales); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // Three candidate structures that all accelerate region-filtered scans.
  OptimizationSpec index{OptKind::kSecondaryIndex, "sales", "region", 1.0, ""};
  OptimizationSpec view{OptKind::kMaterializedView, "sales", "region", 0.025,
                        ""};
  OptimizationSpec replica{OptKind::kReplica, "sales", "", 1.0, ""};
  for (auto spec : {index, view, replica}) {
    if (auto id = catalog.AddOptimization(spec); !id.ok()) {
      std::cerr << id.status().ToString() << "\n";
      return 1;
    }
  }

  CostModel model(&catalog);
  PricingModel pricing;
  std::vector<double> costs;
  std::cout << "candidate optimizations:\n";
  for (int j = 0; j < catalog.num_optimizations(); ++j) {
    costs.push_back(*pricing.OptimizationCost(model, j));
    std::cout << "  " << j << ": "
              << catalog.optimizations()[static_cast<size_t>(j)].DisplayName()
              << "  cost " << FormatDollars(costs.back()) << "\n";
  }

  // Tenants: values are their per-period savings from *any one* of their
  // acceptable structures (measured from the cost model), so the game is
  // substitutable.
  Query regional_report;
  regional_report.table = "sales";
  regional_report.predicates = {{"region", 0.025}};
  regional_report.aggregate = true;

  const double saved_by_view =
      (*model.QueryTime(regional_report, {}) -
       *model.QueryTime(regional_report, {1})) / 3600.0 *
      pricing.params().instance_per_hour;

  SubstOfflineGame game;
  game.costs = costs;
  // Executions per period differ per tenant; substitute sets overlap
  // partially (some tenants cannot use a replica for compliance reasons,
  // one only trusts materialized views).
  const struct {
    std::vector<OptId> substitutes;
    double executions;
  } tenants[] = {
      {{0, 1, 2}, 220000}, {{0, 1}, 150000}, {{1}, 400000},
      {{0, 2}, 90000},     {{1, 2}, 260000}, {{0, 1, 2}, 30000},
  };
  for (const auto& t : tenants) {
    game.users.push_back({t.substitutes, saved_by_view * t.executions});
  }
  if (Status st = game.Validate(); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  SubstOffResult outcome = RunSubstOff(game);
  std::cout << "\nSubstOff implements, in phase order:";
  for (size_t k = 0; k < outcome.implemented.size(); ++k) {
    std::cout << " "
              << catalog.optimizations()[static_cast<size_t>(
                     outcome.implemented[k])].DisplayName()
              << " (share " << FormatDollars(outcome.cost_share[k]) << ")";
  }
  std::cout << "\n\n";

  Accounting acc = AccountSubstOff(game, outcome);
  for (UserId i = 0; i < game.num_users(); ++i) {
    std::cout << "tenant " << i << ": ";
    const OptId g = outcome.grant[static_cast<size_t>(i)];
    if (g == kNoOpt) {
      std::cout << "not serviced\n";
      continue;
    }
    std::cout << "granted "
              << catalog.optimizations()[static_cast<size_t>(g)].DisplayName()
              << ", pays "
              << FormatDollars(outcome.payments[static_cast<size_t>(i)])
              << ", utility " << FormatDollars(acc.UserUtility(i)) << "\n";
  }
  std::cout << "\ntotal utility " << FormatDollars(acc.TotalUtility())
            << "; cloud balance " << FormatDollars(acc.CloudBalance()) << "\n";
  return 0;
}
