// Quickstart: price two shared optimizations among three selfish users with
// the offline mechanisms (paper §4), and see why truth-telling is optimal.
//
//   cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "common/money.h"
#include "core/accounting.h"
#include "core/add_off.h"
#include "core/strategy.h"

int main() {
  using namespace optshare;

  // The cloud offers two optimizations over a shared dataset: an index
  // costing $90 and a materialized view costing $50 (per service period).
  AdditiveOfflineGame game;
  game.costs = {90.0, 50.0};

  // Three users declare how much each optimization is worth to them
  // (e.g. expected savings from faster queries).
  game.bids = {
      {40.0, 0.0},   // analyst A: only the index helps her dashboards
      {30.0, 60.0},  // analyst B: both help
      {35.0, 10.0},  // analyst C: mild interest in the view
  };

  std::cout << "== AddOff: independent Shapley pricing per optimization ==\n";
  AddOffResult outcome = RunAddOff(game);
  for (OptId j = 0; j < game.num_opts(); ++j) {
    const auto& r = outcome.per_opt[static_cast<size_t>(j)];
    std::cout << "optimization " << j << " (cost "
              << FormatDollars(game.costs[static_cast<size_t>(j)]) << "): ";
    if (!r.implemented) {
      std::cout << "not implemented\n";
      continue;
    }
    std::cout << "implemented, share " << FormatDollars(r.cost_share)
              << ", serviced users:";
    for (UserId i : r.ServicedUsers()) std::cout << " " << i;
    std::cout << "\n";
  }

  Accounting acc = AccountAddOff(game, outcome);
  std::cout << "\ntotal value realized " << FormatDollars(acc.TotalValue())
            << ", cost " << FormatDollars(acc.total_cost)
            << ", total utility " << FormatDollars(acc.TotalUtility())
            << "\ncloud balance " << FormatDollars(acc.CloudBalance())
            << " (never negative: the mechanism is cost-recovering)\n";
  for (UserId i = 0; i < game.num_users(); ++i) {
    std::cout << "user " << i << ": pays "
              << FormatDollars(outcome.total_payment[static_cast<size_t>(i)])
              << ", utility " << FormatDollars(acc.UserUtility(i)) << "\n";
  }

  // Why lying does not pay: analyst B tries shading her index bid.
  std::cout << "\n== strategy check for analyst B (true values 30, 60) ==\n";
  const double truthful = AddOffUtilityUnderBid(game, 1, {30.0, 60.0});
  for (const std::vector<double>& dev :
       {std::vector<double>{10.0, 60.0}, {29.0, 60.0}, {100.0, 60.0},
        {30.0, 20.0}}) {
    const double u = AddOffUtilityUnderBid(game, 1, dev);
    std::cout << "bidding {" << dev[0] << ", " << dev[1] << "} -> utility "
              << FormatDollars(u)
              << (u < truthful - kMoneyEpsilon ? "  (worse than truth)"
                                               : "  (no gain)")
              << "\n";
  }
  std::cout << "truthful utility " << FormatDollars(truthful) << "\n";
  return 0;
}
