// Advisor-to-mechanism pipeline with tenant tiers: the cloud derives
// candidate optimizations from observed workloads (simdb advisor), prices
// them with the Shapley-based AddOff, and then re-prices with a *weighted*
// Moulin mechanism where enterprise tenants shoulder proportionally larger
// shares — still truthful, because weighted sharing is cross-monotonic.
//
//   cmake --build build && ./build/examples/advisor_tiers
#include <iostream>

#include "common/money.h"
#include "common/table.h"
#include "core/accounting.h"
#include "core/add_off.h"
#include "core/group_strategy.h"
#include "core/moulin.h"
#include "simdb/advisor.h"

int main() {
  using namespace optshare;
  using namespace optshare::simdb;

  // Shared telemetry dataset.
  Catalog catalog;
  TableDef events;
  events.name = "telemetry";
  events.columns = {
      {"device", ColumnType::kInt64, 5'000'000},
      {"metric", ColumnType::kInt64, 64},
      {"value", ColumnType::kDouble, 1'000'000},
  };
  events.row_count = 1'000'000'000;
  if (Status st = catalog.AddTable(events); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // Three tenants: two enterprise (heavy per-device lookups), one starter.
  auto lookup = [](double selectivity) {
    Query q;
    q.table = "telemetry";
    q.predicates = {{"device", selectivity}};
    q.aggregate = true;
    return q;
  };
  std::vector<SimUser> tenants(3);
  tenants[0].workload.entries = {{lookup(2e-7), 1.0}};
  tenants[0].end = 12;
  tenants[0].executions_per_slot = 3000;
  tenants[1].workload.entries = {{lookup(2e-7), 1.0}};
  tenants[1].end = 12;
  tenants[1].executions_per_slot = 2000;
  tenants[2].workload.entries = {{lookup(2e-7), 1.0}};
  tenants[2].end = 12;
  tenants[2].executions_per_slot = 150;

  CostModel model(&catalog);
  PricingModel pricing;
  auto proposals = ProposeOptimizations(catalog, model, pricing, tenants);
  if (!proposals.ok() || proposals->empty()) {
    std::cerr << "advisor found nothing: "
              << (proposals.ok() ? "no candidates" :
                  proposals.status().ToString())
              << "\n";
    return 1;
  }
  std::cout << "advisor proposals:\n";
  for (const auto& p : *proposals) {
    std::cout << "  " << p.spec.DisplayName() << "  cost "
              << FormatDollars(p.cost) << ", period savings "
              << FormatDollars(p.total_savings) << " (benefit "
              << FormatFixed(p.BenefitRatio(), 1) << "x)\n";
  }

  auto game = GameFromProposals(*proposals);
  if (!game.ok()) {
    std::cerr << game.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\n== egalitarian pricing (AddOff) ==\n";
  AddOffResult flat = RunAddOff(*game);
  for (UserId i = 0; i < game->num_users(); ++i) {
    std::cout << "  tenant " << i << " pays "
              << FormatDollars(flat.total_payment[static_cast<size_t>(i)])
              << "\n";
  }

  // Tiered pricing: weights reflect contracted tiers, not bids — they are
  // exogenous, so cross-monotonicity (and thus truthfulness) holds.
  std::cout << "\n== tiered pricing (weighted Moulin, weights 3:2:1) ==\n";
  const std::vector<double> weights = {3.0, 2.0, 1.0};
  for (OptId j = 0; j < game->num_opts(); ++j) {
    auto method = WeightedSharing::Make(
        game->costs[static_cast<size_t>(j)], weights);
    if (!method.ok()) {
      std::cerr << method.status().ToString() << "\n";
      return 1;
    }
    std::vector<double> bids;
    for (UserId i = 0; i < game->num_users(); ++i) {
      bids.push_back(
          game->bids[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
    ShapleyResult r = RunMoulin(*method, bids);
    std::cout << "  " << (*proposals)[static_cast<size_t>(j)].spec
                     .DisplayName()
              << ": " << (r.implemented ? "built" : "not built");
    if (r.implemented) {
      for (UserId i = 0; i < game->num_users(); ++i) {
        std::cout << "  t" << i << "="
                  << FormatDollars(r.payments[static_cast<size_t>(i)]);
      }
    }
    std::cout << "\n";
    // Audit the sharing method before deploying it.
    if (!IsCrossMonotonic(*method, game->num_users())) {
      std::cerr << "weighted method unexpectedly not cross-monotonic\n";
      return 1;
    }
  }
  std::cout << "\nweighted sharing audited cross-monotonic: tiered prices "
               "remain strategyproof\n";
  return 0;
}
