// A year in the life of the pricing service: four quarterly billing
// periods over a shared clickstream dataset, with tenant usage drifting
// quarter to quarter. Structures funded in one quarter carry over at a
// maintenance-only price the next; everything is priced by AddOn, so the
// provider's balance never goes negative.
//
// This example deliberately stays on the batch CloudService::RunPeriod
// API — now a thin adapter over the streaming PricingSession — to show
// that pre-redesign integrations keep working unchanged (and, per the
// parity suite, bit-identically). See online_marketplace.cpp for the
// streaming API itself.
//
//   cmake --build build && ./build/examples/service_year
#include <iostream>

#include "common/money.h"
#include "service/cloud_service.h"

int main() {
  using namespace optshare;
  using namespace optshare::service;

  auto scenario = simdb::ClickstreamScenario(6, 12);
  if (!scenario.ok()) {
    std::cerr << scenario.status().ToString() << "\n";
    return 1;
  }

  ServiceConfig config;
  config.maintenance_fraction = 0.25;
  CloudService service(std::move(scenario->catalog), config);

  std::vector<simdb::SimUser> tenants = std::move(scenario->tenants);
  const double drift[4] = {1.0, 1.6, 0.7, 1.2};  // Seasonal usage.

  for (int quarter = 0; quarter < 4; ++quarter) {
    std::vector<simdb::SimUser> current = tenants;
    for (auto& t : current) t.executions_per_slot *= drift[quarter];

    auto report = service.RunPeriod(current);
    if (!report.ok()) {
      std::cerr << report.status().ToString() << "\n";
      return 1;
    }
    std::cout << "Q" << report->period << ": "
              << report->ActiveStructures() << " structure(s) active\n";
    for (const auto& s : report->structures) {
      std::cout << "   " << s.name << "  "
                << (s.active ? (s.carried_over ? "renewed" : "built")
                             : "not funded")
                << "  price " << FormatDollars(s.cost);
      if (s.active) {
        std::cout << "  subscribers " << s.num_subscribers << "/"
                  << s.num_candidates;
      }
      std::cout << "\n";
    }
    std::cout << "   quarter utility "
              << FormatDollars(report->ledger.TotalUtility())
              << ", provider balance "
              << FormatDollars(report->ledger.CloudBalance()) << "\n";
  }

  std::cout << "\nyear total: utility "
            << FormatDollars(service.cumulative_utility())
            << ", provider balance "
            << FormatDollars(service.cumulative_balance())
            << " (cost recovery held every quarter)\n";
  return 0;
}
