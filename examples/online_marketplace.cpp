// Online data marketplace (paper §5): tenants of a shared-data service come
// and go over a 12-slot period; the provider uses a streaming
// PricingSession to decide when a shared secondary index becomes worth
// building and how to split its cost. Unlike the batch RunPeriod API, the
// session ingests tenants *as they show up*: a latecomer signs up after
// the period has already started — the scenario the batch API could not
// express — and the advisor folds her into the running game at the next
// slot boundary.
//
//   cmake --build build && ./build/examples/online_marketplace
#include <iostream>

#include "common/money.h"
#include "service/pricing_session.h"

int main() {
  using namespace optshare;
  using namespace optshare::service;

  // A shared clickstream table; the advisor will propose the index itself.
  simdb::Catalog catalog;
  simdb::TableDef events;
  events.name = "events";
  events.columns = {
      {"event_id", simdb::ColumnType::kInt64, 2'000'000'000},
      {"user_id", simdb::ColumnType::kInt64, 50'000'000},
      {"kind", simdb::ColumnType::kString, 200},
      {"payload", simdb::ColumnType::kString, 1'000'000'000},
  };
  events.row_count = 2'000'000'000;
  if (Status st = catalog.AddTable(events); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // Tenants run per-user lookups at their own rates over their own
  // subscription intervals.
  simdb::Query lookup;
  lookup.table = "events";
  lookup.predicates = {{"user_id", 1e-7}};
  lookup.aggregate = true;

  const auto make_tenant = [&](TimeSlot start, TimeSlot end,
                               double executions) {
    simdb::SimUser tenant;
    tenant.workload.entries = {{lookup, 1.0}};
    tenant.start = start;
    tenant.end = end;
    tenant.executions_per_slot = executions;
    return tenant;
  };

  ServiceConfig config;
  config.slots_per_period = 12;
  auto session = PricingSession::Open(&catalog, config);
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }

  // Five tenants are known when the period opens...
  for (const auto& t :
       {make_tenant(1, 12, 400), make_tenant(3, 8, 900),
        make_tenant(5, 12, 250), make_tenant(2, 4, 1200),
        make_tenant(6, 6, 2000)}) {
    if (auto id = session->Submit(t); !id.ok()) {
      std::cerr << id.status().ToString() << "\n";
      return 1;
    }
  }

  // ...and the period starts streaming.
  std::cout << "slots 1-8 with the opening roster of "
            << session->num_tenants() << " tenants\n";
  for (TimeSlot t = 1; t <= 8; ++t) {
    if (Status st = session->AdvanceSlot(); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  // Slot 8 has elapsed when a heavy latecomer signs up for slots 9-12.
  // Submit feeds her declaration into every structure's running game; she
  // is priced from slot 9 on, exactly as Mechanism 2 treats an arrival.
  auto late = session->Submit(make_tenant(9, 12, 800));
  if (!late.ok()) {
    std::cerr << late.status().ToString() << "\n";
    return 1;
  }
  std::cout << "slot 8 elapsed: tenant t" << *late
            << " arrives mid-period for slots 9-12\n\n";
  for (TimeSlot t = 9; t <= 12; ++t) {
    if (Status st = session->AdvanceSlot(); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  auto report = session->Close();
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }

  std::cout << "structures priced this period:\n";
  for (const auto& s : report->structures) {
    std::cout << "   " << s.name << "  "
              << (s.active ? "built" : "not funded") << "  price "
              << FormatDollars(s.cost);
    if (s.active) {
      std::cout << "  subscribers " << s.num_subscribers << "/"
                << s.num_candidates;
    }
    std::cout << "\n";
  }

  const Accounting& ledger = report->ledger;
  std::cout << "\nper-tenant ledger (latecomer last):\n";
  for (size_t i = 0; i < ledger.user_value.size(); ++i) {
    std::cout << "  tenant t" << i << ": savings "
              << FormatDollars(ledger.user_value[i]) << ", pays "
              << FormatDollars(ledger.user_payment[i]) << "\n";
  }
  std::cout << "cloud balance " << FormatDollars(ledger.CloudBalance())
            << "; total utility " << FormatDollars(ledger.TotalUtility())
            << (ledger.CostRecovered() ? " (cost recovered)" : "") << "\n";
  return 0;
}
