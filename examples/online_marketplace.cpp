// Online data marketplace (paper §5): tenants of a shared-data service come
// and go over a 12-slot period; the cloud uses AddOn to decide when a
// shared secondary index becomes worth building and how to split its cost.
// The index cost and tenant values are derived from the simdb cost model,
// not hand-picked.
//
//   cmake --build build && ./build/examples/online_marketplace
#include <iostream>

#include "common/money.h"
#include "core/accounting.h"
#include "core/add_on.h"
#include "simdb/pricing.h"

int main() {
  using namespace optshare;
  using namespace optshare::simdb;

  // A shared clickstream table and one candidate optimization: an index on
  // the user-id column.
  Catalog catalog;
  TableDef events;
  events.name = "events";
  events.columns = {
      {"event_id", ColumnType::kInt64, 2'000'000'000},
      {"user_id", ColumnType::kInt64, 50'000'000},
      {"kind", ColumnType::kString, 200},
      {"payload", ColumnType::kString, 1'000'000'000},
  };
  events.row_count = 2'000'000'000;
  if (Status st = catalog.AddTable(events); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  OptimizationSpec index;
  index.kind = OptKind::kSecondaryIndex;
  index.table = "events";
  index.column = "user_id";
  auto opt_id = catalog.AddOptimization(index);
  if (!opt_id.ok()) {
    std::cerr << opt_id.status().ToString() << "\n";
    return 1;
  }

  CostModel model(&catalog);
  PricingModel pricing;

  // Tenants run per-user lookups; each tenant subscribes for an interval
  // of the year and runs the query workload at her own rate.
  Query lookup;
  lookup.table = "events";
  lookup.predicates = {{"user_id", 1e-7}};
  lookup.aggregate = true;

  std::vector<SimUser> tenants;
  const struct {
    TimeSlot start, end;
    double executions;
  } plans[] = {{1, 12, 400},  {3, 8, 900},  {5, 12, 250},
               {2, 4, 1200},  {9, 12, 800}, {6, 6, 2000}};
  for (const auto& plan : plans) {
    SimUser tenant;
    tenant.workload.entries = {{lookup, 1.0}};
    tenant.start = plan.start;
    tenant.end = plan.end;
    tenant.executions_per_slot = plan.executions;
    tenants.push_back(tenant);
  }

  auto game_r = BuildAdditiveGame(catalog, model, pricing, tenants, 12);
  if (!game_r.ok()) {
    std::cerr << game_r.status().ToString() << "\n";
    return 1;
  }
  const MultiAdditiveOnlineGame& game = *game_r;

  const double base_sec = *model.QueryTime(lookup, {});
  const double fast_sec = *model.QueryTime(lookup, {*opt_id});
  const SparseOnlineColumn column = ProjectSparseColumn(game, 0);
  std::cout << "index " << catalog.optimizations()[0].DisplayName()
            << ": query " << base_sec << " s -> " << fast_sec
            << " s; build+storage cost "
            << FormatDollars(game.costs[0]) << "\n"
            << "tenants deriving value from it: " << column.users.size()
            << " of " << game.num_users() << "\n\n";

  AdditiveOnlineGame single = game.ProjectOpt(0);
  AddOnResult outcome = RunAddOn(single);
  if (!outcome.implemented) {
    std::cout << "the index never pays for itself; nothing is built\n";
    return 0;
  }
  std::cout << "AddOn builds the index at slot " << outcome.implemented_at
            << "; cost-share trajectory:\n";
  for (TimeSlot t = 1; t <= single.num_slots; ++t) {
    const double share = outcome.cost_share[static_cast<size_t>(t - 1)];
    std::cout << "  slot " << t << ": "
              << (share == kInfiniteBid ? std::string("-")
                                        : FormatDollars(share))
              << "  serviced:";
    for (UserId i : outcome.serviced[static_cast<size_t>(t - 1)]) {
      std::cout << " t" << i;
    }
    std::cout << "\n";
  }

  Accounting acc = AccountAddOn(single, outcome);
  std::cout << "\npayments (charged at departure):\n";
  for (UserId i = 0; i < single.num_users(); ++i) {
    std::cout << "  tenant t" << i << ": "
              << FormatDollars(outcome.payments[static_cast<size_t>(i)])
              << " for savings of "
              << FormatDollars(acc.user_value[static_cast<size_t>(i)]) << "\n";
  }
  std::cout << "cloud balance " << FormatDollars(acc.CloudBalance())
            << "; total utility " << FormatDollars(acc.TotalUtility()) << "\n";
  return 0;
}
