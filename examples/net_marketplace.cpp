// The marketplace over TCP, end to end in one process: a MarketplaceServer
// wrapped by the NetServer event loop on an ephemeral loopback port, and a
// handful of NetClient threads each pricing their own tenancy through full
// billing periods — the same wire bytes `optshare_cli serve --listen` and
// `optshare_cli connect` exchange across machines.
//
// Build: cmake --build build --target example_net_marketplace
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "service/marketplace_server.h"
#include "service/net_client.h"
#include "service/net_server.h"
#include "simdb/scenarios.h"

using namespace optshare;
using service::MarketplaceServer;
using service::NetClient;
using service::NetServer;
using service::protocol::Request;
using service::protocol::RequestOp;
using service::protocol::Response;

int main() {
  constexpr int kClients = 6;
  constexpr int kSlots = 12;
  constexpr int kPeriods = 2;

  auto scenario = simdb::TelemetryScenario(/*num_tenants=*/40, kSlots);
  if (!scenario.ok()) {
    std::cerr << scenario.status().ToString() << "\n";
    return 1;
  }

  service::ServerOptions options;
  options.num_workers = 4;
  MarketplaceServer server(options);
  NetServer net(&server, {});
  if (Status started = net.Start(); !started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  std::cout << "marketplace listening on 127.0.0.1:" << net.port() << "\n";

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<NetClient> client = NetClient::Connect("127.0.0.1", net.port());
      if (!client.ok()) {
        std::cerr << client.status().ToString() << "\n";
        return;
      }
      const std::string tenancy = "tenant-" + std::to_string(c);
      Rng rng(static_cast<uint64_t>(100 + c));
      const std::vector<simdb::SimUser> tenants =
          simdb::JitterTenants(scenario->tenants, kSlots, rng);
      for (int p = 0; p < kPeriods; ++p) {
        Request open;
        open.op = RequestOp::kOpenPeriod;
        open.tenancy = tenancy;
        if (p == 0) {
          service::protocol::CatalogSpec catalog;
          catalog.scenario = "telemetry";
          catalog.scenario_tenants = 40;
          catalog.scenario_slots = kSlots;
          open.catalog = catalog;
        }
        Request submit;
        submit.op = RequestOp::kSubmit;
        submit.tenancy = tenancy;
        submit.tenants = tenants;
        Request advance;
        advance.op = RequestOp::kAdvanceSlot;
        advance.tenancy = tenancy;
        advance.slots = kSlots;
        Request close;
        close.op = RequestOp::kClosePeriod;
        close.tenancy = tenancy;
        for (Request* request : {&open, &submit, &advance, &close}) {
          Result<Response> response = client->Call(*request);
          if (!response.ok() || !response->ok()) {
            std::cerr << tenancy << ": request failed\n";
            return;
          }
          if (request == &close) {
            const JsonValue* report = response->payload.Find("report");
            const JsonValue* ledger =
                report ? report->Find("ledger") : nullptr;
            std::cout << tenancy << " period " << p + 1 << ": "
                      << (ledger ? ledger->Dump().substr(0, 60) + "..."
                                 : std::string("(no ledger)"))
                      << "\n";
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // One client shuts the whole marketplace down over the wire.
  Result<NetClient> admin = NetClient::Connect("127.0.0.1", net.port());
  if (admin.ok()) {
    Request info;
    info.op = RequestOp::kServerInfo;
    info.version = 2;
    if (Result<Response> r = admin->Call(info); r.ok() && r->ok()) {
      const JsonValue* transport = r->payload.Find("transport");
      if (transport != nullptr) {
        std::cout << "transport counters: " << transport->Dump() << "\n";
      }
    }
    Request shutdown;
    shutdown.op = RequestOp::kShutdown;
    shutdown.version = 2;
    (void)admin->Call(shutdown);
  }
  net.Wait();
  if (Status st = server.Shutdown(); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "drained and shut down\n";
  return 0;
}
