// End-to-end astronomy collaboration (paper §2, §7.2): simulate a universe,
// find halos with friends-of-friends, measure the six astronomers' merger-
// tree workloads with and without per-snapshot materialized views, then let
// AddOn select and price the views — compared against the Regret baseline.
//
//   cmake --build build && ./build/examples/astronomy_collab
#include <iostream>

#include "astro/astro_workload.h"
#include "astro/statistics.h"
#include "baseline/regret.h"
#include "common/money.h"
#include "core/accounting.h"
#include "core/add_on.h"

int main() {
  using namespace optshare;

  // 1. Simulate the universe and cluster every snapshot.
  astro::UniverseParams params;
  params.num_snapshots = astro::kAstroSnapshots;
  params.num_halos = 14;
  params.particles_per_halo = 40;
  astro::UniverseSimulator sim(params);
  const std::vector<astro::Snapshot> snapshots = sim.Run();

  std::vector<astro::HaloCatalog> catalogs;
  for (const auto& snap : snapshots) {
    auto catalog = astro::FindHalos(snap, params.box_size);
    if (!catalog.ok()) {
      std::cerr << "halo finding failed: " << catalog.status().ToString()
                << "\n";
      return 1;
    }
    catalogs.push_back(std::move(*catalog));
  }
  std::cout << "simulated " << snapshots.size() << " snapshots of "
            << sim.num_particles() << " particles; final snapshot has "
            << catalogs.back().num_halos() << " halos\n";

  // The §2 flavor: different astronomers focus on different mass bands.
  if (auto mf = astro::ComputeMassFunction(catalogs.back(), 5); mf.ok()) {
    std::cout << "halo mass function (log-mass bins):";
    for (int c : mf->counts) std::cout << " " << c;
    std::cout << "\n";
  }
  int mergers = 0;
  for (size_t k = 1; k < catalogs.size(); ++k) {
    mergers += astro::ComputeMergerStats(catalogs[k - 1], catalogs[k])->merged;
  }
  std::cout << "halo mergers across the run: " << mergers << "\n";

  // 2. Measure the six users' workloads (γ1/γ2 x strides 1/2/4).
  astro::QueryCosts costs;
  auto model_r = astro::MeasureWorkloads(snapshots, catalogs, costs,
                                         /*instance_per_hour=*/0.50,
                                         /*view_cost_dollars=*/0.02);
  if (!model_r.ok()) {
    std::cerr << "measurement failed: " << model_r.status().ToString() << "\n";
    return 1;
  }
  const astro::AstroWorkloadModel& model = *model_r;
  std::cout << "\nper-execution workload runtimes (no views):\n";
  for (int u = 0; u < model.num_users(); ++u) {
    double total_savings = 0.0;
    for (double s : model.savings_dollars[static_cast<size_t>(u)]) {
      total_savings += s;
    }
    std::cout << "  user " << u << ": " << model.runtime_sec[static_cast<size_t>(u)]
              << " s  (all views would save "
              << FormatCents(total_savings) << "/execution)\n";
  }

  // 3. Build the pricing game: a year of 4 quarters, users subscribe to
  //    quarter intervals and run their workloads repeatedly.
  astro::AstroGameSpec spec;
  spec.num_slots = 4;
  spec.intervals = {{1, 4}, {1, 2}, {2, 3}, {1, 4}, {3, 4}, {2, 2}};
  spec.executions = 600.0;
  auto game_r = astro::BuildAstroGame(model, spec);
  if (!game_r.ok()) {
    std::cerr << "game build failed: " << game_r.status().ToString() << "\n";
    return 1;
  }
  const MultiAdditiveOnlineGame& game = *game_r;

  // 4. Mechanism vs baseline.
  const std::vector<AddOnResult> mech = RunAddOnAll(game);
  const Accounting acc = AccountAddOnAll(game, mech);
  int implemented = 0;
  for (const auto& r : mech) implemented += r.implemented ? 1 : 0;
  std::cout << "\nAddOn implements " << implemented << "/" << game.num_opts()
            << " views; total utility " << FormatDollars(acc.TotalUtility())
            << "; cloud balance " << FormatDollars(acc.CloudBalance()) << "\n";
  for (UserId i = 0; i < game.num_users(); ++i) {
    std::cout << "  user " << i << " pays "
              << FormatDollars(acc.user_payment[static_cast<size_t>(i)])
              << " for savings of "
              << FormatDollars(acc.user_value[static_cast<size_t>(i)]) << "\n";
  }

  const RegretLedger regret = SumLedgers(RunRegretAdditiveAll(game));
  std::cout << "\nRegret baseline: total utility "
            << FormatDollars(regret.TotalUtility()) << "; cloud balance "
            << FormatDollars(regret.CloudBalance())
            << (regret.CloudBalance() < -kMoneyEpsilon
                    ? "  (cloud loses money!)"
                    : "")
            << "\n";
  return 0;
}
